"""Plan-diagram gallery: visualizing the geometry behind the bouquet.

Renders, in plain ASCII:

* the 1D EQ example's PIC with its POSP plan regions (Figure 3's layout);
* the 2D_H_Q8a plan diagram with the isocost contour frontiers overlaid
  (Figure 6's geometry: hyperbolic-ish contours with different plans on
  disjoint segments);
* a 2D slice of a 3D error space.

Run:  python examples/plan_diagram_gallery.py
"""

from repro import Lab
from repro.core.contours import contour_costs
from repro.ess import render_1d_profile, render_2d_diagram, render_slice


def main():
    lab = Lab(resolutions={1: 64, 2: 24, 3: 10})

    eq = lab.build("EQ")
    print("=== EQ (1D): the PIC and its POSP plan regions ===")
    print(render_1d_profile(eq.diagram, width=64, height=12))
    print()

    q8a = lab.build("2D_H_Q8a")
    ics = contour_costs(q8a.diagram.cmin, q8a.diagram.cmax, 2.0)
    print("=== 2D_H_Q8a: plan regions + isocost contour frontiers ===")
    print(render_2d_diagram(q8a.diagram, contour_costs=ics))
    print()
    bouquet = q8a.bouquet
    print(
        f"the bouquet keeps {bouquet.cardinality} of "
        f"{len(q8a.diagram.posp_plan_ids)} POSP plans "
        f"(those on the * frontiers, after anorexic reduction)"
    )
    print()

    q96 = lab.build("3D_DS_Q96")
    print("=== 3D_DS_Q96: a 2D slice (third dimension pinned) ===")
    print(render_slice(q96.diagram, axes=(0, 1), fixed={2: q96.space.shape[2] // 2}))


if __name__ == "__main__":
    main()
