"""Canned-query service: compile once offline, serve forever.

The paper recommends bouquets for form-based ("canned") query interfaces
where the expensive compile-time phase is precomputed offline (§4.2).
This example plays both roles with the serving layer:

* **offline**: ``compile_bouquet`` with a disk-backed
  :class:`~repro.serve.BouquetArtifactStore` — the compiled artifact is
  persisted under its content-hash key (canonical query + statistics
  fingerprint + compile knobs);
* **online**: a :class:`~repro.serve.BouquetServer` over the same store
  answers repeated requests from cache (zero optimizer calls), then a
  (simulated) statistics refresh invalidates the artifact and the next
  request recompiles against the new world view;
* **scale-up**: the §8 incremental maintenance path refreshes the
  bouquet at a fraction of the optimizer calls a rebuild would need,
  dropping stale cache entries along the way.

Run:  python examples/canned_query_service.py
"""

import os
import tempfile

from repro import (
    BouquetArtifactStore,
    BouquetConfig,
    BouquetServer,
    Catalog,
    Database,
    MemorySink,
    Optimizer,
    Tracer,
    actual_selectivities,
    compile_bouquet,
    parse_query,
    refresh_bouquet,
    tpch_schema,
)
from repro.catalog import tpch_generator_spec
from repro.ess import SelectivitySpace

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1100 and o_totalprice < 250000"
)


def main():
    scale = 0.003
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=33)
    statistics = database.build_statistics(sample_size=1500)
    catalog = Catalog(schema, statistics=statistics, database=database)
    config = BouquetConfig()
    tracer = Tracer(MemorySink())
    store_dir = tempfile.mkdtemp(prefix="bouquet-store-")
    store = BouquetArtifactStore(root=store_dir, tracer=tracer)

    # ---- offline: compile into the content-addressed store ---------------
    compiled = compile_bouquet(SQL, catalog, config=config, cache=store)
    print("compiled bouquet:")
    print(f"  dims: {[d.name for d in compiled.space.dimensions]}")
    print(
        f"  |B|={compiled.bouquet.cardinality} "
        f"contours={len(compiled.bouquet.contours)} "
        f"guaranteed MSO <= {compiled.mso_bound:.1f}"
    )
    print(f"  stored under {store_dir} ({store.snapshot()['disk_entries']} artifact)")
    print()

    # ---- online: a server over the same store serves from cache ----------
    with BouquetServer(
        catalog, config=config, store=store, tracer=tracer
    ) as server:
        for invocation in range(3):
            served = server.serve(SQL)
            trace = ", ".join(
                f"IC{e.contour_index}:P{e.plan_id}"
                for e in served.result.executions
            )
            print(
                f"invocation {invocation + 1}: {served.rows} rows, "
                f"cost {served.total_cost:.0f}, cache={served.cache}, "
                f"trace [{trace}]"
            )
        print("(identical traces: the bouquet strategy is repeatable, §1)")
        print()

        # ---- statistics refresh: the cached artifact is invalidated -------
        new_stats = database.build_statistics(sample_size=3000)
        dropped = server.refresh_statistics(new_stats)
        print(
            f"statistics refreshed: {dropped} cached artifact(s) invalidated; "
            "next request recompiles against the new world view"
        )
        served = server.serve(SQL)
        print(
            f"post-refresh request: cache={served.cache}, status={served.status}"
        )
        counters = server.stats()["counters"]
        print(
            "serving counters: "
            f"hits={counters.get('serve.cache.hit_memory', 0):g} "
            f"misses={counters.get('serve.cache.miss', 0):g} "
            f"invalidated={counters.get('serve.cache.invalidated', 0):g}"
        )
        print()

    # ---- the warehouse grows: incremental maintenance (§8) ---------------
    big_schema = tpch_schema(scale * 4)
    big_db = Database.generate(big_schema, tpch_generator_spec(scale * 4), seed=33)
    big_stats = big_db.build_statistics(sample_size=1500)
    big_optimizer = Optimizer(big_schema, big_stats)
    big_query = parse_query(SQL, big_schema)
    new_space = SelectivitySpace(
        big_query,
        compiled.space.dimensions,
        list(compiled.space.shape),
        actual_selectivities(big_query, big_db),
    )
    refreshed = refresh_bouquet(
        compiled.bouquet, big_optimizer, new_space, artifact_store=store
    )
    print(
        f"after 4x scale-up: refreshed bouquet with "
        f"{refreshed.optimizer_calls} optimizer calls "
        f"(a from-scratch exhaustive rebuild would need {new_space.size}); "
        f"reused {refreshed.reused_plan_count} plans, "
        f"found {refreshed.new_plan_count} new ones; "
        f"new guarantee MSO <= {refreshed.bouquet.mso_bound:.1f}"
    )
    store.clear()
    os.rmdir(store_dir)


if __name__ == "__main__":
    main()
