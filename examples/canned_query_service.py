"""Canned-query service: compile once offline, execute forever.

The paper recommends bouquets for form-based ("canned") query interfaces
where the expensive compile-time phase is precomputed offline (§4.2).
This example plays both roles with the high-level session API:

* **offline**: parse the SQL, identify the error-prone dimensions with
  the §4.1 uncertainty rules, compile the bouquet, and persist it to a
  JSON artifact;
* **online**: load the artifact into a fresh session and serve repeated
  executions — including after a (simulated) database refresh, where the
  incremental maintenance of §8 refreshes the bouquet at a fraction of
  the optimizer calls a rebuild would need.

Run:  python examples/canned_query_service.py
"""

import os
import tempfile

from repro import (
    BouquetSession,
    CompiledQuery,
    Database,
    Optimizer,
    actual_selectivities,
    parse_query,
    refresh_bouquet,
    tpch_schema,
)
from repro.catalog import tpch_generator_spec
from repro.ess import SelectivitySpace

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1100 and o_totalprice < 250000"
)


def main():
    scale = 0.003
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=33)
    statistics = database.build_statistics(sample_size=1500)

    # ---- offline: compile and persist -----------------------------------
    offline = BouquetSession(schema, statistics=statistics, database=database)
    compiled = offline.compile(SQL)
    print("compiled bouquet:")
    print(f"  dims: {[d.name for d in compiled.space.dimensions]}")
    print(
        f"  |B|={compiled.bouquet.cardinality} "
        f"contours={len(compiled.bouquet.contours)} "
        f"guaranteed MSO <= {compiled.mso_bound:.1f}"
    )
    artifact = os.path.join(tempfile.gettempdir(), "canned_bouquet.json")
    compiled.save(artifact)
    print(f"  saved to {artifact}")
    print()

    # ---- online: load into a fresh session and serve --------------------
    online = BouquetSession(schema, statistics=statistics, database=database)
    served = CompiledQuery.load(artifact, online, parse_query(SQL, schema))
    for invocation in range(3):
        result = served.execute()
        trace = ", ".join(
            f"IC{e.contour_index}:P{e.plan_id}" for e in result.executions
        )
        print(
            f"invocation {invocation + 1}: {result.result_rows} rows, "
            f"cost {result.total_cost:.0f}, trace [{trace}]"
        )
    print("(identical traces: the bouquet strategy is repeatable, §1)")
    print()

    # ---- the warehouse grows: incremental maintenance (§8) --------------
    big_schema = tpch_schema(scale * 4)
    big_db = Database.generate(big_schema, tpch_generator_spec(scale * 4), seed=33)
    big_stats = big_db.build_statistics(sample_size=1500)
    big_optimizer = Optimizer(big_schema, big_stats)
    big_query = parse_query(SQL, big_schema)
    new_space = SelectivitySpace(
        big_query,
        served.space.dimensions,
        list(served.space.shape),
        actual_selectivities(big_query, big_db),
    )
    refreshed = refresh_bouquet(served.bouquet, big_optimizer, new_space)
    print(
        f"after 4x scale-up: refreshed bouquet with "
        f"{refreshed.optimizer_calls} optimizer calls "
        f"(a from-scratch exhaustive rebuild would need {new_space.size}); "
        f"reused {refreshed.reused_plan_count} plans, "
        f"found {refreshed.new_plan_count} new ones; "
        f"new guarantee MSO <= {refreshed.bouquet.mso_bound:.1f}"
    )
    os.unlink(artifact)


if __name__ == "__main__":
    main()
