"""Quickstart: build a plan bouquet for the paper's example query and
execute it — both in the cost-model world and for real.

Walks the full pipeline of the paper on the 1D example (Figures 1-4):

1. generate a TPC-H database and (sampled, imperfect) statistics;
2. sweep the error-prone selectivity to get the POSP and the PIC;
3. discretize the PIC with doubling isocost contours -> the plan bouquet;
4. run the bouquet at a chosen "actual" selectivity and compare its cost
   against the native optimizer's worst case.

Run:  python examples/quickstart.py
"""

from repro import (
    ExecutionEngine,
    Lab,
    RealExecutionService,
    simulate_at,
)
from repro.core import BouquetRunner


def main():
    # The Lab bundles database generation, statistics, and the optimizer.
    lab = Lab(tpch_scale=0.003)
    ql = lab.build("EQ")  # the running example: orders of cheap parts

    print(ql.workload.query.describe())
    print()
    print(ql.space.describe())
    print()

    # --- compile time ---------------------------------------------------
    print(f"POSP: {len(ql.diagram.posp_plan_ids)} plans across the range")
    print(ql.bouquet.describe())
    print()

    # --- run time (cost-model simulation) -------------------------------
    qa = (ql.space.shape[0] * 3 // 4,)  # an "actual" location the optimizer
    # never sees: the bouquet discovers it by partial executions.
    result = simulate_at(ql.bouquet, qa, mode="optimized")
    optimal = ql.diagram.cost_at(qa)
    print(
        f"simulated bouquet run at selectivity "
        f"{ql.space.selectivities_at(qa)[0]:.2%}:"
    )
    for record in result.executions:
        kind = "spilled" if record.spilled else "full"
        status = "completed" if record.completed else "budget-killed"
        print(
            f"  IC{record.contour_index}: plan P{record.plan_id} ({kind}) "
            f"spent {record.cost_spent:.1f} of {record.budget:.1f} — {status}"
        )
    print(
        f"  total {result.total_cost:.1f} vs optimal {optimal:.1f} "
        f"=> sub-optimality {result.total_cost / optimal:.2f} "
        f"(guaranteed bound: {ql.bouquet.mso_bound:.1f}, "
        f"native optimizer worst case: {ql.nat.mso():.1f})"
    )
    print()

    # --- run time (real execution) --------------------------------------
    engine = ExecutionEngine(lab.h_db)
    service = RealExecutionService(ql.bouquet, engine)
    runner = BouquetRunner(ql.bouquet, service, mode="optimized")
    real = runner.run()
    print(
        f"real execution: {real.result_rows} result rows in "
        f"{real.execution_count} (partial) executions, "
        f"total cost {real.total_cost:.1f} engine units"
    )


if __name__ == "__main__":
    main()
