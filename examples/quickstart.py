"""Quickstart: build a plan bouquet for the paper's example query and
execute it — both in the cost-model world and for real.

Walks the full pipeline of the paper on the 1D example (Figures 1-4)
through the public :mod:`repro.api` facade:

1. generate a TPC-H database and (sampled, imperfect) statistics;
2. ``compile_bouquet`` sweeps the error-prone selectivity to get the
   POSP, discretizes the PIC with doubling isocost contours, and
   anorexically reduces the result -> the plan bouquet;
3. ``simulate`` runs the bouquet at a chosen "actual" selectivity the
   optimizer never sees;
4. ``execute`` runs it for real against the generated data.

Run:  python examples/quickstart.py
"""

from repro import (
    BouquetConfig,
    Catalog,
    Database,
    compile_bouquet,
    execute,
    simulate,
    tpch_schema,
)
from repro.catalog import tpch_generator_spec

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


def main():
    # --- the world: schema, data, imperfect statistics -------------------
    scale = 0.003
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=42)
    statistics = database.build_statistics(sample_size=2000)
    catalog = Catalog(schema, statistics=statistics, database=database)

    # --- compile time -----------------------------------------------------
    config = BouquetConfig(resolution=64, lambda_=0.2, ratio=2.0)
    compiled = compile_bouquet(SQL, catalog, config=config)

    print(compiled.query.describe())
    print()
    print(compiled.space.describe())
    print()
    print(compiled.bouquet.describe())
    print()

    # --- run time (cost-model simulation) ---------------------------------
    # An "actual" selectivity the optimizer never sees: the bouquet
    # discovers it by budget-doubling partial executions.
    qa = [0.6]
    result = simulate(compiled, qa)
    location = compiled.space.nearest_location(qa)
    optimal = compiled.bouquet.diagram.cost_at(location)
    print(f"simulated bouquet run at selectivity {qa[0]:.0%}:")
    for record in result.executions:
        kind = "spilled" if record.spilled else "full"
        status = "completed" if record.completed else "budget-killed"
        print(
            f"  IC{record.contour_index}: plan P{record.plan_id} ({kind}) "
            f"spent {record.cost_spent:.1f} of {record.budget:.1f} — {status}"
        )
    print(
        f"  total {result.total_cost:.1f} vs optimal {optimal:.1f} "
        f"=> sub-optimality {result.total_cost / optimal:.2f} "
        f"(guaranteed bound: {compiled.mso_bound:.1f})"
    )
    print()

    # --- run time (real execution) -----------------------------------------
    real = execute(compiled, database)
    print(
        f"real execution: {real.result_rows} result rows in "
        f"{real.execution_count} (partial) executions, "
        f"total cost {real.total_cost:.1f} engine units"
    )


if __name__ == "__main__":
    main()
