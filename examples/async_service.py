"""Asyncio multi-tenant bouquet serving, end to end.

The paper's deployment scenario (§4.2) is canned queries served over
and over; this example runs the full serving stack for that workload —
a real :class:`~repro.serve.BouquetServer` behind a
:class:`~repro.serve.ServeGateway` (per-tenant token-bucket quotas,
bounded queues, the overload degrade ladder) behind the stdlib-asyncio
:class:`~repro.serve.BouquetFrontEnd` — and drives it over loopback
HTTP with :class:`~repro.serve.AsyncServeClient`:

* a *dashboards* tenant with a generous quota serves warm cache hits;
* a *batch* tenant with a deliberately tight quota gets shed
  (``429`` / ``shed-quota``) once its token bucket drains — without
  touching the dashboards tenant;
* every outcome arrives as a typed ``repro.serve.response.v1``
  envelope: status, stable ``error_code``, cache rung, and
  queue/service timings.

Run:  python examples/async_service.py
"""

import asyncio

from repro import (
    AsyncioRuntime,
    BouquetConfig,
    BouquetFrontEnd,
    BouquetServer,
    Catalog,
    Database,
    MemorySink,
    ServeGateway,
    ServeRequest,
    TenantQuota,
    Tracer,
    tpch_schema,
)
from repro.catalog import tpch_generator_spec

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


def build_catalog() -> Catalog:
    schema = tpch_schema(0.002)
    database = Database.generate(schema, tpch_generator_spec(0.002), seed=42)
    statistics = database.build_statistics(sample_size=500, seed=1)
    return Catalog(schema, statistics=statistics, database=database)


async def drive(front: BouquetFrontEnd) -> None:
    from repro.serve import AsyncServeClient

    async with AsyncServeClient(front.host, front.port) as client:
        assert await client.health()

        # Cold compile, then warm cache hits for the dashboards tenant.
        for i in range(3):
            response = await client.serve(
                ServeRequest(query=SQL, tenant="dashboards", request_id=f"d{i}")
            )
            print(
                f"  dashboards/{response.request_id}: {response.status:>4}  "
                f"cache={response.cache:<8} rows={response.rows}  "
                f"({response.latency_seconds * 1e3:.1f} ms)"
            )

        # The batch tenant burns its 2-token burst, then gets shed.
        for i in range(4):
            response = await client.serve(
                ServeRequest(query=SQL, tenant="batch", request_id=f"b{i}")
            )
            note = f"error_code={response.error_code}" if response.error_code else ""
            print(
                f"  batch/{response.request_id}:      {response.status:>4}  "
                f"cache={response.cache:<8} {note}"
            )

        stats = await client.stats()
        print("\nper-tenant admission state:")
        for tenant, state in stats["tenants"].items():
            print(
                f"  {tenant:<12} depth={state['depth']:.0f}/"
                f"{state['max_queue']:.0f}  tokens={state['tokens']:.1f}"
            )
        shed = stats["counters"].get("serve.front.shed.quota", 0)
        print(f"quota sheds: {shed} (all on the batch tenant)")


def main() -> None:
    catalog = build_catalog()
    tracer = Tracer(MemorySink())
    with AsyncioRuntime(max_workers=4) as runtime, BouquetServer(
        catalog, config=BouquetConfig(resolution=16), tracer=tracer
    ) as server:
        gateway = ServeGateway(
            server,
            runtime=runtime,
            quotas={
                "dashboards": TenantQuota(rate=100.0, burst=20.0, max_queue=32),
                "batch": TenantQuota(rate=0.5, burst=2.0, max_queue=4),
            },
        )

        async def serve_and_drive():
            async with BouquetFrontEnd(gateway, port=0) as front:
                print(f"front-end listening on {front.host}:{front.port}\n")
                await drive(front)

        asyncio.run(serve_and_drive())


if __name__ == "__main__":
    main()
