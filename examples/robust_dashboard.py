"""Robust OLAP reporting: a TPC-DS star query under data drift.

A reporting dashboard re-runs the same canned star-join query (TPC-DS
Q96 style) against a warehouse whose contents drift between loads, so
the actual join selectivities wander around the error space while the
compile-time estimate stays frozen.  This example:

* builds the bouquet once (the canned-query scenario of §4.2 where
  offline POSP precomputation is cheap to amortize);
* replays the query at several drifted "actual" locations;
* shows that the bouquet's execution trace is repeatable per location
  (the §1 repeatability property) and its sub-optimality stays within
  the guaranteed bound, while the native optimizer's worst case explodes.

Run:  python examples/robust_dashboard.py
"""

from repro import Lab, simulate_at
from repro.bench.reporting import format_table
from repro.robustness import bouquet_mso


def main():
    lab = Lab()
    ql = lab.build("3D_DS_Q96")
    bouquet = ql.bouquet
    print(ql.workload.query.describe())
    print()
    print(bouquet.describe())
    print()

    # Simulated data drift: the actual location moves through the ESS.
    space = ql.space
    drift_scenarios = {
        "fresh load (small)": space.origin,
        "normal week": tuple(s // 2 for s in space.shape),
        "holiday spike": tuple(s - 2 for s in space.shape),
        "full warehouse": space.corner,
    }

    rows = []
    for label, location in drift_scenarios.items():
        run_a = simulate_at(bouquet, location, mode="optimized")
        run_b = simulate_at(bouquet, location, mode="optimized")
        trace_a = [(e.contour_index, e.plan_id) for e in run_a.executions]
        trace_b = [(e.contour_index, e.plan_id) for e in run_b.executions]
        assert trace_a == trace_b, "bouquet execution must be repeatable"
        optimal = ql.diagram.cost_at(location)
        nat_worst = float(ql.nat.subopt_worst()[location])
        rows.append(
            (
                label,
                run_a.execution_count,
                f"{run_a.total_cost / optimal:.2f}",
                f"{nat_worst:.1f}",
            )
        )
    print(
        format_table(
            ["scenario", "bouquet execs", "bouquet sub-opt", "NAT worst-case sub-opt"],
            rows,
            title="Dashboard query under data drift",
        )
    )
    print()
    mso = bouquet_mso(ql.bouquet_cost_field, ql.pic)
    print(
        f"across the whole error space: bouquet MSO {mso:.2f} "
        f"(bound {bouquet.mso_bound:.1f}) vs native MSO {ql.nat.mso():.1f}"
    )


if __name__ == "__main__":
    main()
