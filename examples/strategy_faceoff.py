"""Strategy face-off: NAT vs SEER vs plan bouquets on one hard query.

Reproduces, end to end on a single 5D TPC-DS query, the comparison that
drives the paper's evaluation: the native optimizer (NAT), robust plan
selection (SEER), and the plan bouquet (BOU), scored on MSO, ASO,
MaxHarm, and plan cardinality — then digs into *where* each strategy
wins with the spatial enhancement distribution of Figure 16.

Run:  python examples/strategy_faceoff.py
"""

from repro import Lab
from repro.bench.reporting import format_table
from repro.robustness import (
    bouquet_aso,
    bouquet_mso,
    enhancement_histogram,
    harm_fraction,
    max_harm,
    robustness_enhancement,
)


def main():
    lab = Lab()
    ql = lab.build("5D_DS_Q19")
    print(ql.workload.query.describe())
    print(ql.space.describe())
    print()

    field = ql.bouquet_cost_field
    nat_worst = ql.nat.subopt_worst()
    rows = [
        ("NAT", ql.nat.mso(), ql.nat.aso(), "-", ql.nat.plan_cardinality),
        ("SEER", ql.seer.mso(), ql.seer.aso(), "<= 0.2", ql.seer.plan_cardinality),
        (
            "BOU",
            bouquet_mso(field, ql.pic),
            bouquet_aso(field, ql.pic),
            f"{max_harm(field, ql.pic, nat_worst):.2f}",
            ql.bouquet.cardinality,
        ),
    ]
    print(
        format_table(
            ["strategy", "MSO", "ASO", "MaxHarm", "plans"],
            rows,
            title="5D_DS_Q19 — strategy comparison",
        )
    )
    print(
        f"(bouquet guarantee: MSO <= {ql.bouquet.mso_bound:.1f}; "
        f"harmed locations: "
        f"{harm_fraction(field, ql.pic, nat_worst):.1%} of the space)"
    )
    print()

    enhancement = robustness_enhancement(field, ql.pic, nat_worst)
    hist = enhancement_histogram(enhancement)
    print(
        format_table(
            ["robustness improvement", "% of locations"],
            [(bucket, f"{pct:.1f}") for bucket, pct in hist.items()],
            title="Where the bouquet helps (Figure 16 style)",
        )
    )


if __name__ == "__main__":
    main()
