"""ETL scenario: query processing when statistics are simply unavailable.

The paper's introduction motivates bouquets with ETL workflows where the
optimizer has no statistics and falls back to "magic numbers" (1/10 for
equality, 1/3 for ranges — Selinger'79).  This example builds an
optimizer with NO statistics, shows how badly its magic-number plan can
behave at the true selectivities, and contrasts the bouquet's guaranteed
discovery, executed for real on the generated data.

Run:  python examples/etl_unknown_stats.py
"""

from repro import (
    Database,
    ErrorDimension,
    ExecutionEngine,
    Optimizer,
    PlanDiagram,
    RealExecutionService,
    SelectivitySpace,
    actual_selectivities,
    identify_bouquet,
    tpch_schema,
)
from repro.catalog import tpch_generator_spec
from repro.core import BouquetRunner
from repro.query import JoinPredicate, Query, SelectionPredicate


def main():
    scale = 0.003
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=21)

    # An optimizer flying blind: statistics=None -> magic numbers only.
    blind = Optimizer(schema, statistics=None)

    query = Query(
        "etl_load_check",
        schema,
        ["part", "lineitem", "orders"],
        selections=[
            SelectionPredicate("part", "p_retailprice", "<", 2000.0),
            SelectionPredicate("orders", "o_totalprice", "<", 400000.0),
        ],
        joins=[
            JoinPredicate("lineitem", "l_partkey", "part", "p_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )
    truth = actual_selectivities(query, database)
    magic = blind.estimated_assignment(query)
    print("predicate selectivities (magic estimate vs actual):")
    for pid in query.predicate_ids:
        print(f"  {pid}: {magic[pid]:.4g} vs {truth[pid]:.4g}")
    print()

    # NAT: one plan, chosen from magic numbers, executed at the truth.
    engine = ExecutionEngine(database)
    nat_plan = blind.optimize(query).plan
    nat_run = engine.execute(query, nat_plan)
    best_plan = blind.optimize(query, assignment=truth).plan
    best_run = engine.execute(query, best_plan)
    print(
        f"native (magic numbers): {nat_run.spent:.1f} cost units; "
        f"oracle plan: {best_run.spent:.1f} "
        f"=> sub-optimality {nat_run.spent / best_run.spent:.2f}"
    )

    # Bouquet: eschew the estimates entirely.  The error dims are the two
    # selection predicates; non-error join selectivities are clean PK-FK
    # joins the blind optimizer still gets right from schema constraints.
    dims = [
        ErrorDimension(query.selections[0].pid, 1e-4, 1.0, "p_retailprice"),
        ErrorDimension(query.selections[1].pid, 1e-4, 1.0, "o_totalprice"),
    ]
    base = dict(magic)
    for join in query.joins:
        base[join.pid] = truth[join.pid]  # PK-FK: derivable from schema
    space = SelectivitySpace(query, dims, 24, base)
    diagram = PlanDiagram.exhaustive(blind, space)
    bouquet = identify_bouquet(diagram)
    print(
        f"bouquet: {bouquet.cardinality} plans, {len(bouquet.contours)} "
        f"contours, guaranteed MSO <= {bouquet.mso_bound:.1f}"
    )

    service = RealExecutionService(bouquet, engine)
    run = BouquetRunner(bouquet, service, mode="optimized").run()
    print(
        f"bouquet execution: {run.result_rows} rows, "
        f"{run.execution_count} executions, {run.total_cost:.1f} cost units "
        f"=> sub-optimality {run.total_cost / best_run.spent:.2f}"
    )
    assert run.result_rows == nat_run.rows
    print()

    # The point of the bouquet is the *guarantee*: the magic-number plan
    # happened to be adequate at today's data, but across all the
    # selectivities tomorrow's loads could exhibit, its worst case is
    # unbounded while the bouquet's is not.
    from repro.core import basic_cost_field

    magic_plan_id = blind.optimize(query).plan_id
    cache = diagram.cache
    nat_worst = float((cache.cost_array(magic_plan_id) / diagram.costs).max())
    bou_worst = float((basic_cost_field(bouquet) / diagram.costs).max())
    print(
        "worst case over every possible actual selectivity:\n"
        f"  magic-number plan: {nat_worst:.1f}x optimal\n"
        f"  plan bouquet:      {bou_worst:.1f}x optimal "
        f"(guaranteed <= {bouquet.mso_bound:.1f})"
    )


if __name__ == "__main__":
    main()
