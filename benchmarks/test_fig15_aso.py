"""Figure 15 — average-case sub-optimality (ASO) of NAT, SEER, and BOU.

Paper shapes: BOU's worst-case robustness is *not* purchased with
average-case regression — BOU's ASO is comparable to or better than
NAT's, and typically below 4 in absolute terms; SEER again tracks NAT.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.query.workload import TABLE2_NAMES
from repro.robustness import bouquet_aso


def build_rows(lab):
    rows = []
    for name in TABLE2_NAMES:
        ql = lab.build(name)
        bou = bouquet_aso(ql.bouquet_cost_field, ql.pic)
        rows.append((name, ql.nat.aso(), ql.seer.aso(), bou))
    return rows


def test_fig15_aso(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        ["error space", "NAT", "SEER", "BOU"],
        rows,
        title="Figure 15 — ASO (average-case sub-optimality)",
    )
    record("fig15_aso", table)

    better_or_comparable = 0
    for name, nat, seer, bou in rows:
        # BOU ASO absolute value stays small (paper: typically < 4; we
        # allow a small margin for grid coarseness).
        assert bou < 5.5, name
        if bou <= nat * 1.25:
            better_or_comparable += 1
    # For the vast majority of spaces BOU's ASO is comparable or better.
    assert better_or_comparable >= len(rows) - 2
