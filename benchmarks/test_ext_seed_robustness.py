"""Extension experiment — robustness of the reproduction across data seeds.

The headline claims (BOU's MSO orders of magnitude under NAT's, within
the theoretical bound, with a small bouquet) must not be artifacts of one
synthetic database.  This experiment regenerates two error spaces under
three different data-generation seeds and re-checks the claims on each.
"""

from _bench_utils import run_once
from repro.bench.harness import Lab
from repro.bench.reporting import format_table
from repro.robustness import bouquet_mso

SEEDS = [42, 7, 2024]
QUERIES = ["EQ", "3D_DS_Q96"]


def build_rows():
    rows = []
    for seed in SEEDS:
        lab = Lab(seed=seed, resolutions={1: 64, 2: 24, 3: 10})
        for name in QUERIES:
            ql = lab.build(name)
            bou = bouquet_mso(ql.bouquet_cost_field, ql.pic)
            rows.append(
                (
                    name,
                    seed,
                    ql.nat.mso(),
                    bou,
                    ql.bouquet.mso_bound,
                    ql.bouquet.cardinality,
                )
            )
    return rows


def test_ext_seed_robustness(benchmark, record):
    rows = run_once(benchmark, build_rows)
    table = format_table(
        ["error space", "seed", "NAT MSO", "BOU MSO", "BOU bound", "|B|"],
        rows,
        title="Extension — headline claims across data-generation seeds",
    )
    record("ext_seed_robustness", table)

    for name, seed, nat, bou, bound, card in rows:
        assert bou <= bound * (1 + 1e-6), (name, seed)
        assert nat / bou > 5, (name, seed)
        assert card <= 10, (name, seed)
