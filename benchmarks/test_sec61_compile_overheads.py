"""§6.1 — compile-time overheads: contour-focused POSP generation.

The paper keeps compile time practical by optimizing only a narrow band
of locations around each isocost contour (recursive hypercube
subdivision, §4.2).  This benchmark regenerates that claim: optimizer
calls spent by the contour-focused strategy versus the exhaustive
one-call-per-location baseline, and the band's fidelity (its costs are
exact where it optimized).
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core.contours import contour_costs
from repro.ess import contour_focused_posp

QUERIES = ["EQ", "2D_H_Q8a", "3D_H_Q5", "3D_DS_Q96"]


def build_rows(lab):
    rows = []
    for name in QUERIES:
        ql = lab.build(name)
        steps = contour_costs(ql.diagram.cmin, ql.diagram.cmax, 2.0)
        band = contour_focused_posp(ql.diagram.cache.optimizer, ql.space, steps)
        rows.append(
            (
                name,
                ql.space.size,
                band.optimizer_calls,
                f"{band.optimizer_calls / ql.space.size:.0%}",
                band.pruned_boxes,
                len(band.posp_plan_ids),
                len(ql.diagram.posp_plan_ids),
            )
        )
    return rows


def test_sec61_contour_focused_overheads(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        [
            "error space",
            "grid size",
            "band optimizer calls",
            "fraction",
            "pruned boxes",
            "band POSP",
            "full POSP",
        ],
        rows,
        title="§6.1 — compile-time overheads: contour-focused vs exhaustive POSP",
    )
    record("sec61_compile_overheads", table)

    for name, size, calls, _, pruned, band_posp, full_posp in rows:
        # The band spends strictly fewer optimizer calls than exhaustive
        # enumeration, prunes real work, and still finds plans.  (The
        # "full POSP" column can be *smaller* than the band's in 3D+,
        # where the full diagram is itself a candidate approximation.)
        assert calls < size, name
        assert pruned > 0, name
        assert band_posp >= 1, name
