"""Extension experiment — ReOpt (mid-query re-optimization) vs BOU.

The paper's §7 excludes POP/Rio-style re-optimization from the
evaluation, arguing such heuristics carry no guarantee.  This extension
implements a charitable ReOpt (perfect checkpoint learning, subtree-only
waste accounting) and compares it with NAT and BOU over sampled
(qe, qa) pairs — quantifying the related-work argument on our substrate.
"""

import numpy as np

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import simulate_at
from repro.core.simulation import sample_locations
from repro.robustness.reopt import ReoptStrategy

QUERIES = ["EQ", "3D_DS_Q96", "3D_H_Q7"]
QA_SAMPLES = 8
QE_SAMPLES = 6


def build_rows(lab):
    rows = []
    for name in QUERIES:
        ql = lab.build(name)
        reopt = ReoptStrategy(ql.space, ql.diagram.cache.optimizer)
        qa_locations = sample_locations(ql.space, QA_SAMPLES, seed=5)
        qe_locations = sample_locations(ql.space, QE_SAMPLES, seed=11)
        reopt_subs, bou_subs = [], []
        for qa_loc in qa_locations:
            qa = list(ql.space.selectivities_at(qa_loc))
            optimal = ql.diagram.cost_at(qa_loc)
            bou = simulate_at(ql.bouquet, qa_loc, mode="basic")
            bou_subs.append(bou.total_cost / optimal)
            for qe_loc in qe_locations:
                qe = list(ql.space.selectivities_at(qe_loc))
                run = reopt.run(qe, qa)
                reopt_subs.append(run.total_cost / optimal)
        rows.append(
            (
                name,
                ql.nat.mso(),
                float(np.max(reopt_subs)),
                float(np.max(bou_subs)),
                float(np.mean(reopt_subs)),
                float(np.mean(bou_subs)),
                ql.bouquet.mso_bound,
            )
        )
    return rows


def test_ext_reopt_comparison(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        [
            "error space",
            "NAT MSO",
            "ReOpt worst",
            "BOU worst",
            "ReOpt avg",
            "BOU avg",
            "BOU bound",
        ],
        rows,
        title=(
            "Extension — mid-query re-optimization (ReOpt) vs the bouquet "
            f"({QA_SAMPLES}x{QE_SAMPLES} sampled (qa, qe) pairs)"
        ),
    )
    record("ext_reopt_comparison", table)

    for name, nat, reopt_worst, bou_worst, reopt_avg, bou_avg, bound in rows:
        # ReOpt's checkpoints rescue it from NAT's worst case...
        assert reopt_worst < nat, name
        # ...but only the bouquet carries a guarantee, and it holds.
        assert bou_worst <= bound * (1 + 1e-6), name
