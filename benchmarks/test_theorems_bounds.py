"""Theorems 1 & 2 — the r²/(r−1) bound and the optimality of doubling.

Regenerates the analytical content of §3.1: the bound as a function of
the geometric ratio r (minimized at r=2 with value 4), and the
adversarial lower-bound construction showing no deterministic budget
sequence achieves worst-case sub-optimality below 4.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core.bounds import (
    best_achievable_mso,
    geometric_budgets,
    mso_bound_1d,
    worst_case_suboptimality,
)

RATIOS = [1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 8.0]
SPAN = 2.0**24


def build():
    rows = []
    for r in RATIOS:
        budgets = geometric_budgets(1.0, SPAN, r)
        rows.append((r, mso_bound_1d(r), worst_case_suboptimality(budgets)))
    best_r, best_val = best_achievable_mso(num_steps=24, span=SPAN)
    return rows, best_r, best_val


def test_theorem1_and_2(benchmark, record):
    (rows, best_r, best_val) = run_once(benchmark, lambda: build())
    table = format_table(
        ["ratio r", "Theorem 1 bound r²/(r−1)", "adversarial worst case"],
        rows,
        title="Theorems 1-2 — geometric discretization bounds (1D)",
    )
    footer = (
        f"best ratio over the geometric family: r={best_r:.2f} with "
        f"worst case {best_val:.3f} (Theorem 2: no deterministic online "
        f"algorithm beats 4)"
    )
    record("theorems_bounds", table + "\n" + footer)

    for r, bound, adversarial in rows:
        # The adversary approaches but never exceeds the Theorem 1 bound.
        assert adversarial <= bound * (1 + 1e-9)
    bounds = {r: b for r, b, _ in rows}
    assert bounds[2.0] == min(bounds.values()) == 4.0
    # The searched family steps ratios by 1%, so the optimum can land a
    # whisker above the exact r=2 value of 4.
    assert 3.5 <= best_val <= 4.0 + 1e-3
    assert abs(best_r - 2.0) < 0.5
