"""Figure 19 — the bouquet on a commercial engine ("COM").

The paper validated engine-independence on a commercial DBMS whose API
only allows steering selectivities through query constants, hence the
selection-dimension variants 3D_H_Q5b and 4D_H_Q8b.  Here COM is a
second optimizer configuration (different cost constants, merge join
disabled) over the same data.

Paper shapes: NAT/SEER remain poor, BOU keeps MSO/ASO small with a small
bouquet, and no harm is incurred.
"""

from _bench_utils import run_once
from repro.bench.harness import Lab
from repro.bench.reporting import format_table
from repro.optimizer import COMMERCIAL_COST_MODEL
from repro.robustness import bouquet_aso, bouquet_mso, max_harm

COM_QUERIES = ["3D_H_Q5b", "4D_H_Q8b"]


def build(base_lab):
    com_lab = Lab(cost_model=COMMERCIAL_COST_MODEL)
    rows = []
    for name in COM_QUERIES:
        ql = com_lab.build(name)
        field = ql.bouquet_cost_field
        rows.append(
            (
                name,
                ql.nat.mso(),
                ql.seer.mso(),
                bouquet_mso(field, ql.pic),
                ql.nat.aso(),
                bouquet_aso(field, ql.pic),
                ql.bouquet.cardinality,
                max_harm(field, ql.pic, ql.nat.subopt_worst()),
            )
        )
    return rows


def test_fig19_commercial_engine(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build(lab))
    table = format_table(
        [
            "error space",
            "NAT MSO",
            "SEER MSO",
            "BOU MSO",
            "NAT ASO",
            "BOU ASO",
            "|B|",
            "BOU MaxHarm",
        ],
        rows,
        title="Figure 19 — commercial engine (COM cost model)",
    )
    record("fig19_commercial", table)

    for name, nat_mso, seer_mso, bou_mso, nat_aso, bou_aso, card, mh in rows:
        # The earlier observations are not artifacts of one engine: BOU
        # improves on NAT's MSO by orders of magnitude, SEER stays near
        # NAT, the bouquet stays small, and harm remains bounded.  These
        # selection-dimension spaces span the full [0.01%, 100%] range
        # (four decades per dim), so the bouquet is somewhat larger and
        # harm somewhat higher than on the Table 2 join spaces.
        assert bou_mso < nat_mso / 100, name
        assert seer_mso > nat_mso / 20, name
        assert card <= 20, name
        assert bou_aso < 8.0, name
        assert mh <= 4.0, name
