"""Performance microbenchmarks for the hot kernels.

Unlike the experiment benches (one-shot regenerations of paper tables),
these run multiple rounds and exist to catch performance regressions in
the four kernels everything else is built from: a single optimizer call,
abstract plan costing, the vectorized grid cost field, and engine
execution throughput.
"""

import pytest

from repro.core.simulation import basic_cost_field, simulate_at
from repro.executor import ExecutionEngine
from repro.optimizer import actual_selectivities, cost_plan


@pytest.fixture(scope="module")
def env(lab):
    ql = lab.build("3D_H_Q5")
    eq = lab.build("EQ")
    return lab, ql, eq


def test_perf_optimizer_call(benchmark, env):
    """One DP optimization of a 6-relation chain query."""
    lab, ql, _ = env
    query = ql.workload.query
    assignment = ql.space.assignment_at((8, 8, 8))
    optimizer = lab.h_optimizer

    result = benchmark(lambda: optimizer.optimize(query, assignment=assignment))
    assert result.cost > 0


def test_perf_abstract_plan_costing(benchmark, env):
    """Costing one plan at one selectivity point."""
    lab, ql, _ = env
    plan = ql.diagram.registry.plan(ql.diagram.posp_plan_ids[0])
    assignment = ql.space.assignment_at((4, 4, 4))

    est = benchmark(
        lambda: cost_plan(plan, lab.h_schema, lab.h_optimizer.cost_model, assignment)
    )
    assert est.cost > 0


def test_perf_vectorized_cost_field(benchmark, env):
    """One plan costed over the whole 16^3 ESS grid in a single pass."""
    lab, ql, _ = env
    cache = ql.diagram.cache
    plan_id = ql.diagram.posp_plan_ids[0]

    def kernel():
        cache.invalidate(plan_id)  # defeat the memo
        return cache.cost_array(plan_id)

    array = benchmark(kernel)
    assert array.shape == ql.space.shape


def test_perf_basic_field_sweep(benchmark, env):
    """The full basic-bouquet cost field over the 3D grid."""
    _, ql, _ = env
    field = benchmark(lambda: basic_cost_field(ql.bouquet))
    assert field.shape == ql.space.shape


def test_perf_optimized_simulation(benchmark, env):
    """One optimized-mode bouquet discovery (cost-model world)."""
    _, ql, _ = env
    location = tuple(s - 2 for s in ql.space.shape)
    result = benchmark(lambda: simulate_at(ql.bouquet, location, "optimized"))
    assert result.completed


def test_perf_engine_hash_join(benchmark, env):
    """Real execution of the EQ hash-join pipeline (~18k-row lineitem)."""
    lab, _, eq = env
    query = eq.workload.query
    truth = actual_selectivities(query, lab.h_db)
    plan = lab.h_optimizer.optimize(query, assignment=truth).plan
    engine = ExecutionEngine(lab.h_db)

    result = benchmark(lambda: engine.execute(query, plan))
    assert result.completed


def test_perf_sweep_engine_field(benchmark, env):
    """The full optimized cost field via the cohort sweep engine.

    Guards the vectorized sweep kernel: one cold sweep of the 3D grid
    (totals memo defeated each round so the cohort machinery, not the
    result cache, is measured)."""
    from repro.sweep import SweepEngine

    _, ql, _ = env
    engine = SweepEngine(ql.bouquet)

    def kernel():
        return engine.cost_field(refresh=True)

    field = benchmark(kernel)
    assert field.shape == ql.space.shape
    assert (field > 0).all()
