"""Shared fixtures for the benchmark harness.

One :class:`~repro.bench.harness.Lab` is shared across every benchmark in
the session, so databases, plan diagrams, and bouquets are built once.
Each benchmark prints the rows/series of the paper artifact it reproduces
and appends them to ``results/`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import Lab

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def lab():
    """The shared Lab; its telemetry summary lands next to the results."""
    lab = Lab()
    yield lab
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "_trace_summary.txt"), "w") as handle:
        handle.write(lab.trace_summary() + "\n")


@pytest.fixture(scope="session")
def record():
    """Write a rendered experiment report to results/<exp>.txt and stdout."""

    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _record(exp_id: str, text: str):
        path = os.path.join(RESULTS_DIR, f"{exp_id}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n")

    return _record
