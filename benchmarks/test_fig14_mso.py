"""Figure 14 — worst-case sub-optimality (MSO) of NAT, SEER, and BOU.

Paper shapes: NAT's MSO is huge (10³–10⁷); SEER provides no material
improvement; BOU is orders of magnitude better and stays near/below ~10
in absolute terms (our grids are coarser and data smaller, so the NAT
magnitudes are lower but the separation survives).
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.query.workload import TABLE2_NAMES
from repro.robustness import bouquet_mso


def build_rows(lab):
    rows = []
    for name in TABLE2_NAMES:
        ql = lab.build(name)
        bou = bouquet_mso(ql.bouquet_cost_field, ql.pic)
        rows.append((name, ql.nat.mso(), ql.seer.mso(), bou, ql.bouquet.mso_bound))
    return rows


def test_fig14_mso(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        ["error space", "NAT", "SEER", "BOU", "BOU bound"],
        rows,
        title="Figure 14 — MSO (worst-case sub-optimality), log-scale in the paper",
    )
    record("fig14_mso", table)

    import os

    from conftest import RESULTS_DIR
    from repro.bench.svg import grouped_log_bars

    svg = grouped_log_bars(
        [r[0] for r in rows],
        {
            "NAT": [r[1] for r in rows],
            "SEER": [r[2] for r in rows],
            "BOU": [r[3] for r in rows],
        },
        "Figure 14 — MSO (log scale)",
        "MSO",
    )
    svg.save(os.path.join(RESULTS_DIR, "fig14_mso.svg"))

    for name, nat, seer, bou, bound in rows:
        assert bou <= bound * (1 + 1e-6), name
        assert bou < nat, name
        # BOU's improvement is at least an order of magnitude on every
        # space (the paper reports 2-5 orders).
        assert nat / bou > 10, name
        # SEER does not materially improve on NAT: it stays within ~an
        # order of magnitude of NAT's MSO and nowhere near BOU's.
        assert seer > nat / 20, name
        assert seer > 10 * bou, name
        # BOU's absolute MSO stays small (paper: "less than ten across all
        # the queries"; we allow a little slack for coarse grids).
        assert bou < 15, name
