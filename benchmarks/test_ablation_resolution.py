"""Ablation E — ESS grid resolution sensitivity.

The paper's guarantees live on a *continuous* ESS; our reproduction (and
any implementation) discretizes it.  This ablation sweeps the grid
resolution on the 1D EQ space and a 2D space and shows the key outputs —
contour count, bouquet size, measured MSO — stabilize quickly, i.e. the
discretization choice is not doing the work.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import basic_cost_field, identify_bouquet
from repro.ess import PlanDiagram, SelectivitySpace
from repro.optimizer import actual_selectivities
from repro.robustness import bouquet_mso

RESOLUTIONS_1D = [16, 32, 64, 128]
RESOLUTIONS_2D = [8, 16, 24]


def sweep(lab, name, resolutions):
    workload = lab.workload[name]
    optimizer = lab.h_optimizer
    database = lab.h_db
    base = actual_selectivities(workload.query, database)
    rows = []
    for res in resolutions:
        space = SelectivitySpace(workload.query, workload.dimensions(), res, base)
        diagram = PlanDiagram.exhaustive(optimizer, space)
        bouquet = identify_bouquet(diagram)
        field = basic_cost_field(bouquet)
        rows.append(
            (
                name,
                res,
                len(diagram.posp_plan_ids),
                len(bouquet.contours),
                bouquet.cardinality,
                bouquet_mso(field, diagram.costs),
                bouquet.mso_bound,
            )
        )
    return rows


def test_ablation_resolution(benchmark, lab, record):
    rows = run_once(
        benchmark,
        lambda: sweep(lab, "EQ", RESOLUTIONS_1D) + sweep(lab, "2D_H_Q8a", RESOLUTIONS_2D),
    )
    table = format_table(
        ["space", "resolution", "POSP", "contours", "|B|", "measured MSO", "bound"],
        rows,
        title="Ablation — ESS grid resolution sensitivity",
    )
    record("ablation_resolution", table)

    by_space = {}
    for row in rows:
        by_space.setdefault(row[0], []).append(row)
    for name, entries in by_space.items():
        contours = [e[3] for e in entries]
        msos = [e[5] for e in entries]
        bounds = [e[6] for e in entries]
        # Contour count is resolution-independent (it depends only on
        # Cmin/Cmax, which the grid endpoints pin down).
        assert max(contours) - min(contours) <= 1, name
        # The guarantee holds at every resolution.
        for mso, bound in zip(msos, bounds):
            assert mso <= bound * (1 + 1e-6), name
        # Measured MSO stabilizes: the two finest grids agree within 25%.
        assert abs(msos[-1] - msos[-2]) <= 0.25 * msos[-2], name
