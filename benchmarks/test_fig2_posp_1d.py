"""Figure 2 — POSP plans and their optimality ranges on the 1D EQ query.

Regenerates the annotated plan list of Figure 2: each POSP plan with the
selectivity interval of the p_retailprice predicate over which it is the
optimizer's choice.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table


def collect_posp_ranges(lab):
    ql = lab.build("EQ")
    space, diagram = ql.space, ql.diagram
    rows = []
    current = None
    start = 0
    grid = space.grids[0]
    for i in range(space.shape[0]):
        plan = diagram.plan_at((i,))
        if plan != current:
            if current is not None:
                rows.append((current, grid[start], grid[i - 1]))
            current, start = plan, i
    rows.append((current, grid[start], grid[-1]))
    return ql, rows


def test_fig2_posp_plans_cover_dimension(benchmark, lab, record):
    ql, rows = run_once(benchmark, lambda: collect_posp_ranges(lab))
    table = format_table(
        ["plan", "from sel %", "to sel %", "signature"],
        [
            (
                f"P{plan}",
                f"{lo * 100:.4f}",
                f"{hi * 100:.4f}",
                ql.diagram.registry.plan(plan).signature()[:70],
            )
            for plan, lo, hi in rows
        ],
        title="Figure 2 — POSP plans on the p_retailprice dimension (EQ)",
    )
    record("fig2_posp_1d", table)

    # Paper shape: a handful of distinct POSP plans partition the range,
    # with different plans at the low and high ends.
    plans = [plan for plan, _, _ in rows]
    assert len(set(plans)) >= 3
    assert plans[0] != plans[-1]
