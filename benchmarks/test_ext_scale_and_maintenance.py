"""Extension experiments around §8's database scale-up discussion.

* **Scale sensitivity** — as the database grows, the native optimizer's
  worst case deteriorates (bigger cost gradients mean worse mistakes)
  while the bouquet's measured MSO stays pinned under its
  scale-independent bound.
* **Incremental maintenance** — refreshing an existing bouquet after a
  scale-up (reusing its plans, seeding a few fresh optimizations) costs a
  small fraction of a from-scratch rebuild's optimizer calls while
  producing a bouquet whose guarantee still holds.
"""

from _bench_utils import run_once
from repro.bench.harness import Lab
from repro.bench.reporting import format_table
from repro.core import basic_cost_field, refresh_bouquet
from repro.ess import SelectivitySpace
from repro.optimizer import actual_selectivities
from repro.robustness import bouquet_mso

SCALES = [0.002, 0.005, 0.01]
QUERY = "3D_H_Q7"


def scale_rows():
    rows = []
    for scale in SCALES:
        lab = Lab(tpch_scale=scale, tpcds_scale=0.002, resolutions={1: 64, 3: 12})
        ql = lab.build(QUERY)
        bou = bouquet_mso(ql.bouquet_cost_field, ql.pic)
        rows.append(
            (
                f"{scale:g}",
                f"{ql.diagram.cmax / ql.diagram.cmin:.0f}",
                ql.nat.mso(),
                bou,
                ql.bouquet.mso_bound,
            )
        )
    return rows


def maintenance_rows():
    rows = []
    base_lab = Lab(tpch_scale=0.003, resolutions={1: 64})
    old = base_lab.build("EQ")
    for factor in (2, 4):
        scale = 0.003 * factor
        new_lab = Lab(tpch_scale=scale, resolutions={1: 64})
        query = new_lab.workload["EQ"].query
        base = actual_selectivities(query, new_lab.h_db)
        new_space = SelectivitySpace(
            query, old.space.dimensions, old.space.shape[0], base
        )
        result = refresh_bouquet(old.bouquet, new_lab.h_optimizer, new_space)
        field = basic_cost_field(result.bouquet)
        measured = bouquet_mso(field, result.bouquet.diagram.costs)
        rows.append(
            (
                f"{factor}x",
                result.optimizer_calls,
                new_space.size,
                result.reused_plan_count,
                result.new_plan_count,
                measured,
                result.bouquet.mso_bound,
            )
        )
    return rows


def test_ext_scale_sensitivity(benchmark, record):
    rows = run_once(benchmark, scale_rows)
    table = format_table(
        ["TPC-H scale", "Cmax/Cmin", "NAT MSO", "BOU MSO", "BOU bound"],
        rows,
        title=f"Extension — database scale sensitivity ({QUERY})",
    )
    record("ext_scale_sensitivity", table)

    nats = [r[2] for r in rows]
    for _scale, _ratio, nat, bou, bound in rows:
        assert bou <= bound * (1 + 1e-6)
    # NAT's worst case deteriorates with scale; the bouquet's does not
    # grow beyond its (scale-independent) guarantee.
    assert nats[-1] > nats[0]


def test_ext_incremental_maintenance(benchmark, record):
    rows = run_once(benchmark, maintenance_rows)
    table = format_table(
        [
            "scale-up",
            "refresh optimizer calls",
            "rebuild calls (exhaustive)",
            "plans reused",
            "plans new",
            "measured MSO",
            "bound",
        ],
        rows,
        title="Extension — incremental bouquet maintenance after scale-up (§8)",
    )
    record("ext_maintenance", table)

    for factor, calls, rebuild, reused, new, measured, bound in rows:
        assert calls < rebuild / 5  # an order-of-magnitude class saving
        assert measured <= bound * (1 + 1e-6)
        assert reused >= 1
