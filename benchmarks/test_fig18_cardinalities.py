"""Figure 18 — plan cardinalities of NAT (POSP), SEER, and BOU.

Paper shapes: POSP runs to tens/hundreds of plans; SEER is much smaller;
BOU is smaller still — around ten or fewer even for 5D spaces — making
the bouquet size effectively independent of dimensionality.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.query.workload import TABLE2_NAMES


def build_rows(lab):
    rows = []
    for name in TABLE2_NAMES:
        ql = lab.build(name)
        rows.append(
            (
                name,
                ql.nat.plan_cardinality,
                ql.seer.plan_cardinality,
                ql.bouquet.cardinality,
            )
        )
    return rows


def test_fig18_plan_cardinalities(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        ["error space", "NAT (POSP)", "SEER", "BOU"],
        rows,
        title="Figure 18 — plan cardinalities (log-scale in the paper)",
    )
    record("fig18_cardinalities", table)

    for name, posp, seer, bou in rows:
        assert seer <= posp, name
        assert bou <= posp, name
        assert bou <= 10, name  # the anorexic promise

    # Bouquet size must not blow up with dimensionality: comparing the
    # largest 5D bouquet to the largest 3D bouquet shows no explosion.
    by_dims = {}
    for name, _, _, bou in rows:
        by_dims.setdefault(int(name[0]), []).append(bou)
    assert max(by_dims[5]) <= 3 * max(by_dims[3])
