"""Table 3 — real execution of the bouquet on 2D_H_Q8a.

This is the §6.7 run-time validation: the 2D_H_Q8a instance is executed
for real on the instrumented engine (not the cost-model simulator).  The
native optimizer is given an erroneous estimate ``qe`` (the paper's
instance mis-estimated (33.7%, 45.6%) as (3.8%, 0.02%) through AVI
assumptions; we inject a comparable multi-decade underestimate), while
the true location ``qa`` sits at the top of both join dimensions.

Reported exactly as in Table 3: per-contour execution counts and costs
for basic and optimized BOU, plus the NAT / basic / optimized / optimal
summary.  "Time" is engine cost units (the engine charges the same units
as the optimizer; wall-clock seconds are testbed-specific).
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import BouquetRunner
from repro.executor import ExecutionEngine, RealExecutionService


def run_experiment(lab):
    import time

    ql = lab.build("2D_H_Q8a")
    query = ql.workload.query
    engine = ExecutionEngine(lab.h_db)
    wall = {}

    # qa: the true location — the actual selectivities of the two error
    # predicates (≈ (33.7%, 45.6%) by construction).
    from repro.optimizer import actual_selectivities

    truth = actual_selectivities(query, lab.h_db)
    qa_values = [truth[pid] for pid in ql.workload.dim_pids]
    qa_location = ql.space.nearest_location(qa_values)
    optimal_plan = ql.diagram.registry.plan(ql.diagram.plan_at(qa_location))
    optimal = engine.execute(query, optimal_plan)

    # qe: the paper's AVI-style mis-estimate (3.8%, 0.02%).
    qe_location = ql.space.nearest_location([0.038, 0.0002])
    nat_plan = ql.diagram.registry.plan(ql.diagram.plan_at(qe_location))
    nat = engine.execute(query, nat_plan)

    runs = {}
    for mode in ("basic", "optimized"):
        service = RealExecutionService(ql.bouquet, ExecutionEngine(lab.h_db))
        start = time.perf_counter()
        runs[mode] = BouquetRunner(ql.bouquet, service, mode=mode).run()
        wall[mode] = time.perf_counter() - start
    return ql, optimal, nat, runs, wall


def contour_breakdown(result):
    by_contour = {}
    for record in result.executions:
        count, spent = by_contour.get(record.contour_index, (0, 0.0))
        by_contour[record.contour_index] = (count + 1, spent + record.cost_spent)
    return by_contour


def test_table3_bouquet_execution(benchmark, lab, record):
    ql, optimal, nat, runs, wall = run_once(benchmark, lambda: run_experiment(lab))
    basic, optimized = runs["basic"], runs["optimized"]

    basic_by = contour_breakdown(basic)
    opt_by = contour_breakdown(optimized)
    rows = []
    for contour in ql.bouquet.contours:
        b_count, b_cost = basic_by.get(contour.index, (0, 0.0))
        o_count, o_cost = opt_by.get(contour.index, (0, 0.0))
        rows.append((contour.index, contour.cost, b_count, b_cost, o_count, o_cost))
    table = format_table(
        ["contour", "IC cost", "# exec (basic)", "cost (basic)", "# exec (opt)", "cost (opt)"],
        rows,
        title="Table 3 — contour-wise bouquet execution for 2D_H_Q8a (real engine)",
    )
    summary = format_table(
        ["NAT", "Basic BOU", "Opt. BOU", "Optimal"],
        [(nat.spent, basic.total_cost, optimized.total_cost, optimal.spent)],
        title="Performance summary (engine cost units)",
    )
    timing = (
        f"wall clock (this machine): basic BOU {wall['basic']:.3f}s over "
        f"{basic.execution_count} executions, optimized BOU "
        f"{wall['optimized']:.3f}s over {optimized.execution_count} "
        f"(the paper reports seconds on its testbed; cost units are the "
        f"portable comparison)"
    )
    record("table3_execution", table + "\n\n" + summary + "\n" + timing)

    # The 2D plan diagram with contour frontiers (Figure 6's geometry).
    import os

    from conftest import RESULTS_DIR
    from repro.bench.svg import diagram_map
    from repro.core.contours import maximal_region_frontier

    contour_cells = set()
    for contour in ql.bouquet.contours:
        contour_cells.update(
            maximal_region_frontier(ql.diagram.costs, contour.cost)
        )
    svg = diagram_map(
        ql.diagram.plan_ids,
        "2D_H_Q8a — plan diagram with isocost contour frontiers",
        contour_cells=contour_cells,
    )
    svg.save(os.path.join(RESULTS_DIR, "table3_plan_diagram.svg"))

    # Both bouquet modes must return the correct result.
    assert basic.completed and optimized.completed
    assert basic.result_rows == optimal.rows
    assert optimized.result_rows == optimal.rows

    # Paper shapes: NAT's erroneous estimate is far costlier than optimal;
    # the bouquet lands in between, well under NAT; optimized BOU needs
    # fewer executions than basic BOU.
    assert nat.spent > 3 * optimal.spent
    assert basic.total_cost < nat.spent
    assert optimized.total_cost <= basic.total_cost * 1.05
    assert optimized.execution_count <= basic.execution_count
    # The bouquet's sub-optimality respects the theoretical bound.
    assert basic.total_cost <= ql.bouquet.mso_bound * optimal.spent * 1.2
