"""Figure 17 — MaxHarm: where the bouquet hurts relative to NAT's worst.

Paper shapes: BOU's harm is bounded (up to ~4x there, much smaller here),
harm occurs on a tiny fraction of locations (<1% in the paper), and
SEER's harm never exceeds λ.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.query.workload import TABLE2_NAMES
from repro.robustness import harm_fraction, max_harm


def build_rows(lab):
    rows = []
    for name in TABLE2_NAMES:
        ql = lab.build(name)
        nat_worst = ql.nat.subopt_worst()
        mh = max_harm(ql.bouquet_cost_field, ql.pic, nat_worst)
        frac = harm_fraction(ql.bouquet_cost_field, ql.pic, nat_worst)
        seer_mh = float((ql.seer.subopt_worst() / nat_worst).max() - 1.0)
        rows.append((name, mh, f"{frac * 100:.1f}", seer_mh))
    return rows


def test_fig17_maxharm(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        ["error space", "BOU MaxHarm", "BOU harmed locations %", "SEER MaxHarm"],
        rows,
        title="Figure 17 — MaxHarm (positive = harmful)",
    )
    record("fig17_maxharm", table)

    for name, mh, frac, seer_mh in rows:
        ql = lab.build(name)
        # Harm is bounded by MSO-1 (definitionally) and small in practice.
        assert mh <= ql.bouquet.mso_bound - 1
        assert mh <= 4.0, name  # paper: "upto a factor of 4 worse"
        # Harmful locations are rare.
        assert float(frac) <= 10.0, name
        # SEER's harm is capped at λ (= 0.2).
        assert seer_mh <= 0.2 + 1e-9, name
