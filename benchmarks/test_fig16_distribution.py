"""Figure 16 — spatial distribution of robustness enhancement (5D_DS_Q19).

Regenerates the histogram of per-location improvement factors
``SubOptWorst(qa) / SubOpt(*, qa)``.  Paper shape: the vast majority of
locations see large (multi-order) improvements; SEER's enhancement stays
below 10x everywhere.
"""

import numpy as np

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.robustness import enhancement_histogram, robustness_enhancement


def build(lab):
    ql = lab.build("5D_DS_Q19")
    nat_worst = ql.nat.subopt_worst()
    bou_enh = robustness_enhancement(ql.bouquet_cost_field, ql.pic, nat_worst)
    seer_enh = nat_worst / ql.seer.subopt_worst()
    return ql, bou_enh, seer_enh


def test_fig16_enhancement_distribution(benchmark, lab, record):
    ql, bou_enh, seer_enh = run_once(benchmark, lambda: build(lab))
    bou_hist = enhancement_histogram(bou_enh)
    seer_hist = enhancement_histogram(seer_enh)
    rows = [
        (bucket, f"{bou_hist[bucket]:.1f}", f"{seer_hist[bucket]:.1f}")
        for bucket in bou_hist
    ]
    table = format_table(
        ["improvement bucket", "BOU % of locations", "SEER % of locations"],
        rows,
        title="Figure 16 — distribution of robustness enhancement (5D_DS_Q19)",
    )
    record("fig16_distribution", table)

    # Paper shapes: BOU improves the majority of locations by >= 10x,
    # while SEER's enhancement essentially never reaches 10x (the paper:
    # "less than 10 at all locations"; we allow a sliver for grid effects).
    bou_ge_10 = float((bou_enh >= 10.0).mean())
    seer_ge_10 = float((seer_enh >= 10.0).mean())
    assert bou_ge_10 > 0.5
    assert seer_ge_10 < 0.05
    # And BOU improves the median location by an order of magnitude more
    # than SEER does.
    assert np.median(bou_enh) > 10 * np.median(seer_enh)
