"""Table 1 — MSO guarantees: POSP contours versus anorexic reduction.

For each multi-dimensional error space, compares ρ and the MSO bound
under (a) raw POSP plan assignment on the contours and (b) anorexic
reduction with λ=20%.  Paper shape: the anorexic bound is dramatically
smaller (e.g. 5D_DS_Q19 drops from 379 to 30.4).
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import identify_bouquet, mso_bound_multid
from repro.query.workload import TABLE2_NAMES


def build_rows(lab):
    rows = []
    for name in TABLE2_NAMES:
        ql = lab.build(name)
        raw = identify_bouquet(ql.diagram, lambda_=0.0)
        anorexic = ql.bouquet  # built with λ=20%
        rows.append(
            (
                name,
                raw.rho,
                mso_bound_multid(raw.rho, lambda_=0.0),
                anorexic.rho,
                mso_bound_multid(anorexic.rho, lambda_=anorexic.lambda_),
            )
        )
    return rows


def test_table1_posp_vs_anorexic_bounds(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        ["error space", "ρ POSP", "MSO bound", "ρ ANOREXIC", "MSO bound (λ=20%)"],
        rows,
        title="Table 1 — performance guarantees, POSP versus anorexic",
    )
    record("table1_anorexic_bounds", table)

    improvements = 0
    for name, rho_posp, bound_posp, rho_anx, bound_anx in rows:
        assert rho_anx <= rho_posp
        # Anorexic ρ stays small in absolute terms (paper: <= ~10).
        assert rho_anx <= 10
        if bound_anx < bound_posp:
            improvements += 1
    # The anorexic trade-off wins on most spaces (paper: on all).
    assert improvements >= len(rows) // 2
