"""Table 2 — query workload specifications.

Regenerates the workload summary: per error space, the join-graph
geometry with relation count and the Cmax/Cmin cost ratio of its ESS.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.query.workload import TABLE2_NAMES

#: Geometry column exactly as printed in the paper's Table 2.
PAPER_GEOMETRY = {
    "3D_H_Q5": "chain(6)",
    "3D_H_Q7": "chain(6)",
    "4D_H_Q8": "branch(8)",
    "5D_H_Q7": "chain(6)",
    "3D_DS_Q15": "chain(4)",
    "3D_DS_Q96": "star(4)",
    "4D_DS_Q7": "star(5)",
    "5D_DS_Q19": "branch(6)",
    "4D_DS_Q26": "star(5)",
    "4D_DS_Q91": "branch(7)",
}


def build_rows(lab):
    rows = []
    for name in TABLE2_NAMES:
        ql = lab.build(name)
        rows.append(
            (
                name,
                ql.workload.query.join_graph.describe(),
                ql.workload.dimensionality,
                f"{ql.diagram.cmax / ql.diagram.cmin:.0f}",
            )
        )
    return rows


def test_table2_workload_specifications(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        ["query", "join-graph (#relations)", "error dims", "Cmax/Cmin"],
        rows,
        title="Table 2 — query workload specifications",
    )
    record("table2_workload", table)

    for name, geometry, dims, ratio in rows:
        assert geometry == PAPER_GEOMETRY[name]
        assert dims == int(name[0])
        # Every space must have real cost gradient (non-degenerate ESS).
        assert float(ratio) > 2
