"""Assemble EXPERIMENTS.md from the recorded benchmark results.

Run the benchmark harness first (``pytest benchmarks/ --benchmark-only``),
then ``python benchmarks/assemble_experiments.py``.  Each experiment
section pairs the paper's reported result with the measured one from
``results/<exp>.txt`` and a one-paragraph comparison of the shapes.
"""

from __future__ import annotations

import os

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "..", "results")
TARGET = os.path.join(HERE, "..", "EXPERIMENTS.md")

#: (exp id, title, what the paper reports, how our measurement compares)
SECTIONS = [
    (
        "fig2_posp_1d",
        "Figure 2 — POSP plans on the 1D EQ example",
        "Five POSP plans (P1-P5) partition the p_retailprice selectivity "
        "range, with nested-loop/index plans at low selectivity giving way "
        "to hash/merge plans at high selectivity.",
        "Our optimizer produces the same structure: several POSP plans with "
        "index-driven access at the low end and scan/hash plans at the high "
        "end, each owning a contiguous selectivity interval.",
    ),
    (
        "fig3_pic_contours",
        "Figure 3 — PIC discretization and bouquet identification",
        "Doubling isocost steps IC1..IC7 projected on the PIC; the bouquet "
        "{P1, P2, P3, P5} is the subset of POSP plans at the intersections.",
        "Same construction: doubling steps anchored at Cmax, crossing "
        "selectivities increasing along the PIC, and a bouquet that is a "
        "strict subset of the POSP set.",
    ),
    (
        "fig4_bouquet_profile",
        "Figure 4 — bouquet vs native performance profile (1D EQ)",
        "Bouquet worst case 3.6 / average 2.4 (optimized: 3.1 / 1.7) versus "
        "a native worst case of ≈100.",
        "Measured: basic bouquet worst ≈3, average ≈2.4, native worst ≈170 — "
        "the same two-orders-of-magnitude separation, with the bouquet "
        "profile hugging the PIC.",
    ),
    (
        "table1_anorexic_bounds",
        "Table 1 — MSO guarantees, POSP versus anorexic",
        "Anorexic reduction (λ=20%) drops ρ from 6-159 to 3-9, crushing the "
        "MSO bound, e.g. 5D_DS_Q19 from 379 to 30.4.",
        "Same trade-off: raw contour ρ up to ~13 collapses to 1-5 after "
        "reduction, and the λ-adjusted bound improves on most spaces (our "
        "grids are coarser, so raw ρ starts lower than the paper's).",
    ),
    (
        "table2_workload",
        "Table 2 — query workload specifications",
        "Ten error spaces over TPC-H/TPC-DS with chain/star/branch join "
        "graphs of 4-8 relations, 3-5 error dims, Cmax/Cmin of 5-668.",
        "Identical geometries and dimensionalities by construction; "
        "Cmax/Cmin spans 8-500 at our data scale.",
    ),
    (
        "fig14_mso",
        "Figure 14 — MSO of NAT / SEER / BOU",
        "NAT's MSO is 10³-10⁷; SEER gives no material improvement; BOU "
        "delivers orders-of-magnitude gains with MSO < 10 on every query "
        "(5D_DS_Q19: 10⁶ → ≈10).",
        "Measured NAT 300-135000, SEER within one order of NAT, BOU 3.3-10.6 "
        "— always at least 10x (up to 17000x) better than NAT and inside the "
        "theoretical bound.",
    ),
    (
        "fig15_aso",
        "Figure 15 — ASO of NAT / SEER / BOU",
        "BOU's ASO is comparable to or better than NAT's and typically < 4 "
        "in absolute terms.",
        "Measured BOU ASO 2.5-4.1, better than NAT on every space (NAT "
        "4.8-133); the robustness is not purchased with average-case cost.",
    ),
    (
        "fig16_distribution",
        "Figure 16 — spatial distribution of enhancement (5D_DS_Q19)",
        "≈90% of locations improve by two or more orders of magnitude; "
        "SEER's enhancement is below 10x everywhere.",
        "Measured: 75% of locations improve ≥10x (31% by ≥100x) and SEER "
        "exceeds 10x on only 2% of locations — the same qualitative split, "
        "compressed by our smaller Cmax/Cmin ratios.",
    ),
    (
        "fig17_maxharm",
        "Figure 17 — MaxHarm",
        "BOU can be up to 4x worse than NAT's worst case, but harm occurs "
        "on <1% of locations; SEER's harm never exceeds λ=0.2.",
        "Measured MaxHarm -0.4 to 1.4 with 0-9% of locations harmed, and "
        "SEER capped at 0.2 as required by its safety condition.",
    ),
    (
        "fig18_cardinalities",
        "Figure 18 — plan cardinalities",
        "POSP runs to tens/hundreds; SEER is orders smaller; BOU is ≈10 or "
        "fewer even for 5D — effectively dimension-independent.",
        "Measured POSP 13-128, SEER 3-17, BOU 2-9 — the same ordering and "
        "the same dimension-independence of the bouquet size.",
    ),
    (
        "table3_execution",
        "Table 3 — real bouquet execution on 2D_H_Q8a",
        "NAT 579s vs optimal 16s (sub-opt ≈36); basic BOU 117s over 19 "
        "executions; optimized BOU 69s over 12 executions (sub-opt ≈4).",
        "Measured on the real engine (cost units): NAT 64x optimal, basic "
        "BOU 5.1x in 14 executions, optimized BOU 3.8x in 14 partial "
        "executions with contours crossed early via q_run learning — the "
        "same ranking with the intended doubling per contour.",
    ),
    (
        "fig19_commercial",
        "Figure 19 — commercial engine (COM)",
        "On a commercial DBMS, NAT/SEER again show large MSO/ASO while BOU "
        "keeps both small with a small bouquet — the results are not "
        "engine artifacts.",
        "With the COM cost model (different constants, merge join disabled), "
        "NAT's MSO is ≈10⁴ and SEER equals it, while BOU stays 100x+ better "
        "on MSO and keeps ASO below 7 with ≤18 plans over the full four-"
        "decade selection dims.",
    ),
    (
        "theorems_bounds",
        "Theorems 1-2 — bounds and lower bound",
        "MSO ≤ r²/(r−1), minimized at r=2 with value 4; no deterministic "
        "online algorithm can guarantee below 4.",
        "The adversarial witness approaches each ratio's bound from below, "
        "the sweep bottoms out at r≈2, and no budget sequence in the family "
        "beats 4.",
    ),
    (
        "sec61_compile_overheads",
        "§6.1 — compile-time overheads",
        "The contour-focused recursive-subdivision strategy optimizes only "
        "a band around each contour, generating the contour-POSP 'within a "
        "few hours even for 5D scenarios' versus intractable exhaustive "
        "enumeration.",
        "The band spends a strict subset of the exhaustive optimizer calls "
        "(30-92% depending on how much of the space the contours sweep) "
        "while pruning dozens of hypercubes and recovering the plans that "
        "matter; its costs are exact wherever it optimized.",
    ),
    (
        "ablation_lambda",
        "Ablation — anorexic threshold λ (§3.3)",
        "λ=20% is the paper's sweet spot: a (1+λ) budget inflation buys a "
        "much smaller ρ.",
        "ρ and |B| shrink monotonically with λ while measured MSO always "
        "respects the λ-adjusted bound.",
    ),
    (
        "ablation_ratio",
        "Ablation — contour ratio r (§3.1)",
        "r=2 minimizes the theoretical bound (Theorem 1).",
        "Fewer contours at larger r, measured MSO within each ratio's bound, "
        "and the smallest bound at r=2.",
    ),
    (
        "ablation_runtime_modes",
        "Ablation — basic vs optimized runtime (§5)",
        "The q_run/AxisPlans/spilling enhancements reduced Table 3's "
        "instance from 19 executions (117s) to 12 (69s); Figure 4's 1D "
        "averages improved from 2.4 to 1.7.",
        "Across sampled locations of four multi-D spaces, the optimized "
        "mode wins or ties the average on half or more, cuts executions on "
        "the dense-contour spaces, improves most worst cases, and never "
        "violates the bound — matching the paper's per-instance findings "
        "without claiming uniform dominance.",
    ),
    (
        "ext_reopt_comparison",
        "Extension — mid-query re-optimization (ReOpt) vs BOU",
        "§7 argues POP/Rio-style re-optimization 'could be arbitrarily poor' "
        "and excludes it from the evaluation.",
        "Even a charitable ReOpt (perfect checkpoint learning, subtree-only "
        "waste) shows unbounded tails: its worst case reaches 50-170x "
        "optimal on multi-D spaces where the budget-capped bouquet stays "
        "under its guarantee — while ReOpt's averages can beat BOU's when "
        "estimates happen to be good, exactly the §8 trade-off.",
    ),
    (
        "ablation_resolution",
        "Ablation — ESS grid resolution",
        "The paper's guarantees are stated over a continuous ESS; any "
        "implementation discretizes it.",
        "Contour count, bouquet size, and the bound are resolution-"
        "independent; measured MSO stabilizes by the second-finest grid — "
        "the discretization is not doing the work.",
    ),
    (
        "ext_seed_robustness",
        "Extension — robustness across data seeds",
        "(Not in the paper: a reproduction-quality check.)",
        "Under three independently generated databases, BOU's MSO stays "
        "within its bound, 5-200x under NAT's, with a bouquet of <= 3 plans "
        "— the headline claims are not artifacts of one synthetic dataset.",
    ),
    (
        "ext_scale_sensitivity",
        "Extension — database scale sensitivity (§8)",
        "§8 notes the bouquet is inherently robust to data-distribution "
        "changes but needs maintenance under scale-up.",
        "Growing the database steepens the cost gradient and NAT's MSO "
        "roughly triples, while BOU's measured MSO stays pinned under its "
        "scale-independent bound.",
    ),
    (
        "ext_maintenance",
        "Extension — incremental bouquet maintenance (§8)",
        "Recomputing from scratch is 'mostly redundant'; incremental "
        "maintenance is left as future work.",
        "Reusing the old bouquet's plans and seeding a handful of fresh "
        "optimizations refreshes the bouquet at >20x fewer optimizer calls "
        "than an exhaustive rebuild, with the guarantee intact.",
    ),
    (
        "ablation_delta",
        "Ablation — bounded cost-model error δ (§3.4)",
        "Bounded modeling error inflates the guarantee by at most (1+δ)²; "
        "δ≈0.4 matches PostgreSQL measurements (Wu et al., ICDE 2013).",
        "With deterministic per-node cost perturbations up to δ=0.4, real "
        "executions stay within the (1+δ)²-inflated bound.",
    ),
]

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (§6) plus its
analytical results (§3), regenerated by `pytest benchmarks/
--benchmark-only`.  Raw outputs live in `results/` (plus SVG renderings of
the key figures); this file pairs each with the paper's reported
numbers.

**Environment.** Synthetic TPC-H/TPC-DS at small scale (lineitem ≈ 18k
rows), sampled statistics, PostgreSQL-flavoured cost model, ESS grids of
100 (1D) / 30² / 16³ / 9⁴ / 7⁵ points, λ = 20%, r = 2.  Absolute values
therefore differ from the paper's 1GB/100GB testbed; the comparisons
below are about *shape*: who wins, by roughly what factor, and where the
guarantees bind.  All runs are deterministic (seeded data, stable
hashing).

**Headline reproduction.** The bouquet's measured MSO stays within the
`(1+λ)·ρ·r²/(r−1)` guarantee on every space and is 1-4 orders of
magnitude below the native optimizer's; SEER never materially improves
MSO; average-case cost is preserved; the bouquet stays ≈10 plans or
fewer regardless of dimensionality; and on the real engine the optimized
runtime beats the basic one exactly as in Table 3.

---
"""


def main():
    parts = [HEADER]
    for exp_id, title, paper, measured in SECTIONS:
        path = os.path.join(RESULTS, f"{exp_id}.txt")
        if os.path.exists(path):
            with open(path) as handle:
                body = handle.read().strip()
        else:
            body = f"(run `pytest benchmarks/ --benchmark-only` to generate {exp_id})"
        parts.append(
            f"## {title}\n\n"
            f"**Paper:** {paper}\n\n"
            f"**Measured:** {measured}\n\n"
            f"```\n{body}\n```\n"
        )
    with open(TARGET, "w") as handle:
        handle.write("\n".join(parts))
    print(f"wrote {os.path.normpath(TARGET)}")


if __name__ == "__main__":
    main()
