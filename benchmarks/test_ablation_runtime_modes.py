"""Ablation D — basic versus optimized run-time algorithm (§5).

The paper's enhancements (q_run tracking, AxisPlans, spilling, early
contour crossing) turn the basic Figure 7 loop into the optimized
Figure 13 one; Figure 4 and Table 3 report the improvement on single
instances.  This ablation sweeps sampled actual locations across several
multi-dimensional spaces and compares the two modes' average and worst
sub-optimality.
"""

import numpy as np

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import simulate_at
from repro.core.simulation import sample_locations

QUERIES = ["3D_H_Q7", "3D_DS_Q96", "4D_DS_Q26", "5D_DS_Q19"]
SAMPLES = 24


def build_rows(lab):
    rows = []
    for name in QUERIES:
        ql = lab.build(name)
        locations = sample_locations(ql.space, SAMPLES, seed=17)
        basic, optimized = [], []
        basic_execs, optimized_execs = 0, 0
        for location in locations:
            optimal = ql.diagram.cost_at(location)
            b = simulate_at(ql.bouquet, location, mode="basic")
            o = simulate_at(ql.bouquet, location, mode="optimized")
            basic.append(b.total_cost / optimal)
            optimized.append(o.total_cost / optimal)
            basic_execs += b.execution_count
            optimized_execs += o.execution_count
        rows.append(
            (
                name,
                float(np.mean(basic)),
                float(np.mean(optimized)),
                float(np.max(basic)),
                float(np.max(optimized)),
                basic_execs / len(locations),
                optimized_execs / len(locations),
            )
        )
    return rows


def test_ablation_runtime_modes(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build_rows(lab))
    table = format_table(
        [
            "error space",
            "basic avg",
            "opt avg",
            "basic worst",
            "opt worst",
            "basic execs",
            "opt execs",
        ],
        rows,
        title=f"Ablation — basic vs optimized runtime ({SAMPLES} sampled qa per space)",
    )
    record("ablation_runtime_modes", table)

    worst_wins = 0
    for name, basic_avg, opt_avg, basic_worst, opt_worst, be, oe in rows:
        ql = lab.build(name)
        # Both modes respect the guarantee — the optimizations never break
        # the bound.
        assert basic_worst <= ql.bouquet.mso_bound * (1 + 1e-6), name
        assert opt_worst <= ql.bouquet.mso_bound * (1 + 1e-6), name
        # The optimizations never regress catastrophically.
        assert opt_avg <= basic_avg * 1.6, name
        assert opt_worst <= basic_worst * 2.0, name
        if opt_worst <= basic_worst * 1.02:
            worst_wins += 1
    # The optimized mode's reliable payoff is on the worst case (the
    # metric the whole paper optimizes): it improves or ties the sampled
    # worst on at least half the spaces.  The paper likewise reports
    # improvements on its (dense-contour) instances without claiming
    # uniform per-location dominance.
    assert worst_wins >= len(rows) // 2
