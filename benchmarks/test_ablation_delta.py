"""Ablation C (§3.4) — bounded cost-modeling error δ.

The engine's charged costs are perturbed by a deterministic per-node
factor within [1/(1+δ), 1+δ].  §3.4 proves the MSO guarantee inflates by
at most (1+δ)²; this ablation executes the EQ bouquet for real under
increasing δ and verifies the inflated bound (δ=0.4 matches the average
modeling error measured for PostgreSQL by Wu et al., ICDE 2013).
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import BouquetRunner, mso_bound_with_model_error
from repro.executor import CostPerturbation, ExecutionEngine, RealExecutionService

DELTAS = [0.0, 0.2, 0.4]


def build(lab):
    ql = lab.build("EQ")
    query = ql.workload.query
    rows = []
    for delta in DELTAS:
        engine = ExecutionEngine(
            lab.h_db,
            perturbation=CostPerturbation(delta=delta, seed=11) if delta else None,
        )
        # The oracle pays the (perturbed) cost of the best plan.
        optimal_plan = ql.diagram.registry.plan(ql.diagram.plan_at(ql.space.corner))
        oracle = engine.execute(query, optimal_plan).spent
        service = RealExecutionService(ql.bouquet, engine)
        result = BouquetRunner(ql.bouquet, service, mode="basic").run()
        assert result.completed
        subopt = result.total_cost / oracle
        rows.append(
            (delta, result.total_cost, oracle, subopt, mso_bound_with_model_error(ql.bouquet.mso_bound, delta))
        )
    return rows


def test_ablation_model_error(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build(lab))
    table = format_table(
        ["δ", "BOU cost", "oracle cost", "sub-optimality", "(1+δ)² bound"],
        rows,
        title="Ablation — bounded cost-model error δ (EQ, real engine)",
    )
    record("ablation_delta", table)

    for delta, total, oracle, subopt, bound in rows:
        assert subopt <= bound * (1 + 1e-6)
    # The δ=0 run must satisfy the unperturbed bound as well.
    assert rows[0][3] <= rows[0][4] * (1 + 1e-6)
