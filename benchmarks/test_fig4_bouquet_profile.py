"""Figure 4 — bouquet vs native-optimizer performance profile on EQ (1D).

Regenerates the series of Figure 4: per actual selectivity, the PIC
(ideal), the native optimizer's worst-case profile, and the bouquet's
cost (basic and optimized).  Also reports the headline worst/average
sub-optimality numbers (paper: basic 3.6 worst / 2.4 average; optimized
3.1 / 1.7; native worst ≈ 100).
"""

import numpy as np

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import basic_cost_field, optimized_cost_field


def build_profiles(lab):
    ql = lab.build("EQ")
    basic = basic_cost_field(ql.bouquet)
    sample = [(i,) for i in range(0, ql.space.shape[0], 4)]
    optimized = optimized_cost_field(ql.bouquet, sample)
    nat_worst = ql.nat.subopt_worst() * ql.pic  # worst-case cost profile
    return ql, basic, optimized, nat_worst


def test_fig4_bouquet_profile(benchmark, lab, record):
    ql, basic, optimized, nat_worst = run_once(benchmark, lambda: build_profiles(lab))
    grid = ql.space.grids[0]
    rows = []
    for i in range(0, ql.space.shape[0], 4):
        rows.append(
            (
                f"{grid[i] * 100:.4f}",
                ql.pic[(i,)],
                nat_worst[(i,)],
                basic[(i,)],
                optimized[(i,)],
            )
        )
    basic_sub = basic / ql.pic
    opt_subs = {loc: cost / ql.pic[loc] for loc, cost in optimized.items()}
    summary = (
        f"worst-case sub-optimality: basic BOU {basic_sub.max():.2f}, "
        f"optimized BOU {max(opt_subs.values()):.2f}, NAT {ql.nat.mso():.1f}\n"
        f"average sub-optimality:    basic BOU {basic_sub.mean():.2f}, "
        f"optimized BOU {np.mean(list(opt_subs.values())):.2f}, NAT {ql.nat.aso():.2f}"
    )
    table = format_table(
        ["sel %", "PIC", "NAT worst", "BOU basic", "BOU optimized"],
        rows,
        title="Figure 4 — cost profiles over the EQ selectivity range",
    )
    record("fig4_bouquet_profile", table + "\n" + summary)

    import os

    from conftest import RESULTS_DIR
    from repro.bench.svg import loglog_chart

    xs = [float(g) for g in grid]
    sampled = sorted(optimized)
    svg = loglog_chart(
        {
            "PIC (ideal)": (xs, [float(v) for v in ql.pic]),
            "NAT worst case": (xs, [float(v) for v in nat_worst]),
            "BOU basic": (xs, [float(v) for v in basic]),
            "BOU optimized": (
                [float(grid[loc[0]]) for loc in sampled],
                [float(optimized[loc]) for loc in sampled],
            ),
        },
        "Figure 4 — bouquet vs native performance profile (EQ)",
        "selectivity",
        "cost",
    )
    svg.save(os.path.join(RESULTS_DIR, "fig4_bouquet_profile.svg"))

    # Paper shapes: the bouquet's worst case crushes NAT's; its bound
    # holds; optimized is at least as good as basic on average.
    assert basic_sub.max() <= ql.bouquet.mso_bound * (1 + 1e-6)
    assert basic_sub.max() < ql.nat.mso() / 5
    assert np.mean(list(opt_subs.values())) <= basic_sub.mean() * 1.05
    # Average-case remains moderate (paper: 2.4 for basic BOU).
    assert basic_sub.mean() < 4.0
