"""Ablation B (§3.1) — the isocost ratio r.

Sweeps the geometric ratio of the IC steps on the 1D EQ space.  Theorem 1
says the worst-case bound r²/(r−1) is minimized at r=2; the measured MSO
curve should respect each ratio's bound and bottom out around r=2.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import basic_cost_field, identify_bouquet, mso_bound_1d
from repro.robustness import bouquet_aso, bouquet_mso

RATIOS = [1.5, 2.0, 3.0, 4.0]


def build(lab):
    ql = lab.build("EQ")
    rows = []
    for ratio in RATIOS:
        bouquet = identify_bouquet(ql.diagram, lambda_=0.2, ratio=ratio)
        field = basic_cost_field(bouquet)
        rows.append(
            (
                ratio,
                len(bouquet.contours),
                bouquet.mso_bound,
                bouquet_mso(field, ql.pic),
                bouquet_aso(field, ql.pic),
            )
        )
    return rows


def test_ablation_ratio(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build(lab))
    table = format_table(
        ["ratio r", "contours", "MSO bound", "measured MSO", "measured ASO"],
        rows,
        title="Ablation — contour cost ratio r on EQ (1D)",
    )
    record("ablation_ratio", table)

    # More aggressive ratios need fewer contours.
    contours = [row[1] for row in rows]
    assert contours == sorted(contours, reverse=True)
    # Measured MSO respects each ratio's theoretical bound, and the bound
    # is exactly (1+λ)·ρ·r²/(r−1) with λ=20%.
    for ratio, _, bound, measured, _ in rows:
        assert measured <= bound * (1 + 1e-6)
        assert bound >= 1.2 * mso_bound_1d(ratio) - 1e-9
    # r=2's bound is the smallest of the sweep (Theorem 1).
    bounds = {row[0]: row[2] for row in rows}
    assert bounds[2.0] == min(bounds.values())
