"""Helpers shared by the benchmark modules."""


def run_once(benchmark, fn):
    """Run a heavyweight experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
