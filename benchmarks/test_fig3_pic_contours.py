"""Figure 3 — the PIC, its isocost discretization, and the plan bouquet.

Regenerates Figure 3's content: the geometric IC steps projected onto the
EQ query's PIC, each step's crossing selectivity, the assigned bouquet
plan, and the resulting bouquet set.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table


def build(lab):
    ql = lab.build("EQ")
    rows = []
    for contour, budget in zip(ql.bouquet.contours, ql.bouquet.budgets):
        location = contour.locations[0]
        selectivity = ql.space.selectivities_at(location)[0]
        rows.append(
            (
                f"IC{contour.index}",
                contour.cost,
                budget,
                f"{selectivity * 100:.4f}",
                ", ".join(f"P{p}" for p in contour.plan_ids),
            )
        )
    return ql, rows


def test_fig3_isocost_steps_and_bouquet(benchmark, lab, record):
    ql, rows = run_once(benchmark, lambda: build(lab))
    bouquet = ql.bouquet
    lines = [
        format_table(
            ["step", "cost", "budget(1+λ)", "crossing sel %", "plan"],
            rows,
            title="Figure 3 — isocost steps on the PIC (EQ, r=2, λ=20%)",
        ),
        f"PIC range: Cmin={ql.diagram.cmin:.4g}  Cmax={ql.diagram.cmax:.4g} "
        f"(ratio {ql.diagram.cmax / ql.diagram.cmin:.1f})",
        f"plan bouquet: {{{', '.join(f'P{p}' for p in bouquet.plan_ids)}}} "
        f"(|B|={bouquet.cardinality} of {len(ql.diagram.posp_plan_ids)} POSP plans)",
    ]
    record("fig3_pic_contours", "\n".join(lines))

    # Figure 3 as an actual figure: the PIC with its isocost steps.
    import os

    from conftest import RESULTS_DIR
    from repro.bench.svg import loglog_chart

    grid = ql.space.grids[0]
    svg = loglog_chart(
        {"PIC (optimal cost)": (list(grid), list(ql.pic))},
        "Figure 3 — PIC with doubling isocost steps (EQ)",
        "selectivity",
        "cost",
        hlines=[c.cost for c in bouquet.contours],
    )
    svg.save(os.path.join(RESULTS_DIR, "fig3_pic_contours.svg"))

    # Paper shapes: doubling steps, final step at Cmax, bouquet a strict
    # subset of POSP.
    costs = [c.cost for c in bouquet.contours]
    for a, b in zip(costs, costs[1:]):
        assert b == 2 * a or abs(b / a - 2) < 1e-9
    assert costs[-1] == ql.diagram.cmax
    assert bouquet.cardinality <= len(ql.diagram.posp_plan_ids)
    # Crossing selectivities increase monotonically along the PIC.
    crossings = [float(r[3]) for r in rows]
    assert crossings == sorted(crossings)
