"""Ablation A (§3.3) — the anorexic threshold λ.

Sweeps λ on a 3D space: larger λ shrinks ρ (and usually the bound) at
the price of the (1+λ) budget inflation.  λ=20% is the paper's sweet
spot; this ablation regenerates the trade-off curve behind that choice.
"""

from _bench_utils import run_once
from repro.bench.reporting import format_table
from repro.core import basic_cost_field, identify_bouquet
from repro.robustness import bouquet_aso, bouquet_mso

LAMBDAS = [0.0, 0.1, 0.2, 0.5]
QUERY = "3D_H_Q7"


def build(lab):
    ql = lab.build(QUERY)
    rows = []
    for lambda_ in LAMBDAS:
        bouquet = identify_bouquet(ql.diagram, lambda_=lambda_)
        field = basic_cost_field(bouquet)
        rows.append(
            (
                f"{lambda_:.0%}",
                bouquet.rho,
                bouquet.cardinality,
                bouquet.mso_bound,
                bouquet_mso(field, ql.pic),
                bouquet_aso(field, ql.pic),
            )
        )
    return rows


def test_ablation_lambda(benchmark, lab, record):
    rows = run_once(benchmark, lambda: build(lab))
    table = format_table(
        ["λ", "ρ", "|B|", "MSO bound", "measured MSO", "measured ASO"],
        rows,
        title=f"Ablation — anorexic threshold λ on {QUERY}",
    )
    record("ablation_lambda", table)

    rhos = [r[1] for r in rows]
    cards = [r[2] for r in rows]
    # ρ and |B| shrink (weakly) as λ grows.
    assert rhos == sorted(rhos, reverse=True)
    assert cards == sorted(cards, reverse=True)
    # Measured MSO always respects the λ-adjusted bound.
    for row in rows:
        assert row[4] <= row[3] * (1 + 1e-6)
