"""Unit tests for Query validation and accessors."""

import pytest

from repro.exceptions import QueryError
from repro.query import JoinPredicate, Query, SelectionPredicate


class TestValidation:
    def test_valid_query(self, eq_query):
        assert eq_query.join_graph.describe() == "chain(3)"
        assert len(eq_query.predicate_ids) == 3

    def test_rejects_duplicate_tables(self, schema):
        with pytest.raises(QueryError):
            Query("q", schema, ["part", "part"])

    def test_rejects_disconnected_join_graph(self, schema):
        with pytest.raises(QueryError):
            Query(
                "q",
                schema,
                ["part", "lineitem", "orders"],
                joins=[JoinPredicate("part", "p_partkey", "lineitem", "l_partkey")],
            )

    def test_rejects_unknown_column(self, schema):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):  # CatalogError from column lookup
            Query(
                "q",
                schema,
                ["part"],
                selections=[SelectionPredicate("part", "nope", "<", 1.0)],
            )

    def test_rejects_predicate_on_foreign_table(self, schema):
        with pytest.raises(QueryError):
            Query(
                "q",
                schema,
                ["part"],
                selections=[SelectionPredicate("orders", "o_totalprice", "<", 1.0)],
            )


class TestAccessors:
    def test_predicate_lookup(self, eq_query):
        pid = eq_query.selections[0].pid
        assert eq_query.predicate(pid) is eq_query.selections[0]
        with pytest.raises(QueryError):
            eq_query.predicate("sel:ghost")

    def test_selections_and_joins_on(self, eq_query):
        assert len(eq_query.selections_on("part")) == 1
        assert len(eq_query.selections_on("orders")) == 0
        assert len(eq_query.joins_on("lineitem")) == 2
        assert len(eq_query.joins_on("part")) == 1

    def test_pk_fk_detection(self, eq_query):
        for join in eq_query.joins:
            assert eq_query.is_pk_fk_join(join)

    def test_describe_mentions_parts(self, eq_query):
        text = eq_query.describe()
        assert "EQ" in text and "chain(3)" in text and "p_retailprice" in text
