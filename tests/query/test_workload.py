"""Tests that the benchmark workload matches Table 2's specification."""

import pytest

from repro.catalog import tpcds_schema, tpch_schema
from repro.query.workload import (
    TABLE2_NAMES,
    example_query,
    full_workload,
    tpcds_workload,
    tpch_workload,
)

#: (name, geometry, relation count, error dimensions) straight from Table 2.
TABLE2_SPEC = {
    "3D_H_Q5": ("chain", 6, 3),
    "3D_H_Q7": ("chain", 6, 3),
    "4D_H_Q8": ("branch", 8, 4),
    "5D_H_Q7": ("chain", 6, 5),
    "3D_DS_Q15": ("chain", 4, 3),
    "3D_DS_Q96": ("star", 4, 3),
    "4D_DS_Q7": ("star", 5, 4),
    "5D_DS_Q19": ("branch", 6, 5),
    "4D_DS_Q26": ("star", 5, 4),
    "4D_DS_Q91": ("branch", 7, 4),
}


@pytest.fixture(scope="module")
def workload():
    return full_workload(tpch_schema(0.003), tpcds_schema(0.003))


class TestTable2Conformance:
    def test_all_names_present(self, workload):
        for name in TABLE2_NAMES:
            assert name in workload

    @pytest.mark.parametrize("name", sorted(TABLE2_SPEC))
    def test_geometry_and_dimensions(self, workload, name):
        geometry, relations, dims = TABLE2_SPEC[name]
        entry = workload[name]
        assert entry.query.join_graph.geometry() == geometry
        assert len(entry.query.tables) == relations
        assert entry.dimensionality == dims

    @pytest.mark.parametrize("name", sorted(TABLE2_SPEC))
    def test_dimension_ranges_legal(self, workload, name):
        for dim in workload[name].dimensions():
            assert 0 < dim.lo < dim.hi <= 1.0

    @pytest.mark.parametrize("name", sorted(TABLE2_SPEC))
    def test_join_dims_capped_by_pk_cardinality(self, workload, name):
        """PK-FK join dims must top out at 1/|PK relation| (§4.1)."""
        entry = workload[name]
        schema = entry.query.schema
        for dim in entry.dimensions():
            pred = entry.query.predicate(dim.pid)
            if not hasattr(pred, "tables"):
                continue
            fk = schema.foreign_key_between(
                pred.left_table, pred.left_column, pred.right_table, pred.right_column
            )
            if fk is not None:
                expected = 1.0 / schema.table(fk.parent_table).row_count
                assert dim.hi == pytest.approx(expected)


class TestSpecialInstances:
    def test_eq_is_one_dimensional(self):
        entry = example_query(tpch_schema(0.003))
        assert entry.dimensionality == 1
        assert entry.dimensions()[0].lo == pytest.approx(1e-4)

    def test_q8a_two_selection_dims(self, workload):
        entry = workload["2D_H_Q8a"]
        assert entry.dimensionality == 2
        assert all(pid.startswith("sel:") for pid in entry.dim_pids)

    def test_com_variants_use_selection_dims(self, workload):
        for name in ("3D_H_Q5b", "4D_H_Q8b"):
            entry = workload[name]
            assert all(pid.startswith("sel:") for pid in entry.dim_pids)
            for dim in entry.dimensions():
                assert dim.hi == 1.0  # selection dims span to 100%

    def test_tpch_and_tpcds_workloads_disjoint_names(self):
        h = tpch_workload(tpch_schema(0.003))
        ds = tpcds_workload(tpcds_schema(0.003))
        assert not (set(h) & set(ds))
