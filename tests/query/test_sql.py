"""Tests for the SQL front-end."""

import pytest

from repro.exceptions import QueryError
from repro.query.sql import parse_query


class TestParsing:
    def test_eq_query_parses_verbatim(self, schema):
        """The paper's Figure 1 query parses as written."""
        sql = (
            "select * from lineitem, orders, part "
            "where p_partkey = l_partkey and l_orderkey = o_orderkey "
            "and p_retailprice < 1000"
        )
        query = parse_query(sql, schema)
        assert set(query.tables) == {"lineitem", "orders", "part"}
        assert len(query.joins) == 2
        assert len(query.selections) == 1
        assert query.selections[0].op == "<"
        assert query.selections[0].value == 1000.0
        assert query.join_graph.describe() == "chain(3)"

    def test_count_star_and_semicolon(self, schema):
        query = parse_query("SELECT COUNT(*) FROM part;", schema)
        assert query.tables == ("part",)

    def test_case_insensitive_keywords(self, schema):
        query = parse_query(
            "SeLeCt * FrOm part WhErE p_size >= 10", schema
        )
        assert query.selections[0].op == ">="

    def test_qualified_references(self, schema):
        query = parse_query(
            "select * from part, lineitem where part.p_partkey = lineitem.l_partkey",
            schema,
        )
        assert len(query.joins) == 1

    def test_all_comparison_operators(self, schema):
        for op in ("=", "<", "<=", ">", ">="):
            query = parse_query(f"select * from part where p_size {op} 10", schema)
            assert query.selections[0].op == op

    def test_custom_name(self, schema):
        query = parse_query("select * from part", schema, name="my_q")
        assert query.name == "my_q"


class TestErrors:
    def test_not_select(self, schema):
        with pytest.raises(QueryError):
            parse_query("delete from part", schema)

    def test_unknown_table(self, schema):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            parse_query("select * from ghosts", schema)

    def test_unknown_column(self, schema):
        with pytest.raises(QueryError):
            parse_query("select * from part where nothing < 3", schema)

    def test_ambiguous_column(self, schema):
        # p_partkey lives only on part, but a deliberately duplicated name
        # cannot exist in TPC-H; use an unqualified ref not in FROM tables.
        with pytest.raises(QueryError):
            parse_query(
                "select * from part, orders where o_totalprice < p_retailprice_x",
                schema,
            )

    def test_non_equi_join_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_query(
                "select * from part, lineitem where p_partkey < l_partkey", schema
            )

    def test_no_operator_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_query("select * from part where p_size", schema)

    def test_disconnected_join_graph_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_query("select * from part, orders", schema)

    def test_table_outside_from_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_query(
                "select * from part where orders.o_totalprice < 10", schema
            )
