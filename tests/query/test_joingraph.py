"""Unit tests for join-graph geometry classification."""

import pytest

from repro.exceptions import QueryError
from repro.query import JoinPredicate
from repro.query.joingraph import JoinGraph


def jp(a, b):
    return JoinPredicate(a, f"{a}_k", b, f"{b}_k")


def chain(names):
    return JoinGraph(names, [jp(x, y) for x, y in zip(names, names[1:])])


class TestConnectivity:
    def test_chain_is_connected(self):
        graph = chain(["a", "b", "c", "d"])
        assert graph.is_connected()
        assert graph.is_connected({"b", "c"})
        assert not graph.is_connected({"a", "c"})  # b missing

    def test_disconnected(self):
        graph = JoinGraph(["a", "b", "c"], [jp("a", "b")])
        assert not graph.is_connected()

    def test_joins_connecting(self):
        graph = chain(["a", "b", "c"])
        joining = graph.joins_connecting({"a"}, {"b", "c"})
        assert len(joining) == 1 and set(joining[0].tables) == {"a", "b"}


class TestGeometry:
    def test_single(self):
        assert JoinGraph(["a"], []).geometry() == "single"

    def test_chain(self):
        assert chain(["a", "b", "c", "d", "e", "f"]).describe() == "chain(6)"
        assert chain(["a", "b"]).geometry() == "chain"

    def test_star(self):
        graph = JoinGraph(
            ["hub", "a", "b", "c"], [jp("hub", x) for x in ("a", "b", "c")]
        )
        assert graph.describe() == "star(4)"

    def test_branch(self):
        # Two internal nodes of degree >= 2: a tree that is neither a
        # chain nor a star.
        edges = [jp("a", "b"), jp("b", "c"), jp("b", "d"), jp("d", "e"), jp("d", "f")]
        graph = JoinGraph(["a", "b", "c", "d", "e", "f"], edges)
        assert graph.describe() == "branch(6)"

    def test_cycle(self):
        edges = [jp("a", "b"), jp("b", "c"), jp("a", "c")]
        graph = JoinGraph(["a", "b", "c"], edges)
        assert graph.geometry() == "cycle"
        assert graph.has_cycle()

    def test_disconnected_geometry_rejected(self):
        graph = JoinGraph(["a", "b", "c"], [jp("a", "b")])
        with pytest.raises(QueryError):
            graph.geometry()

    def test_join_outside_tables_rejected(self):
        with pytest.raises(QueryError):
            JoinGraph(["a", "b"], [jp("a", "z")])


class TestDegreesAndEdges:
    def test_degrees(self):
        graph = chain(["a", "b", "c"])
        assert graph.degree("a") == 1
        assert graph.degree("b") == 2
        assert graph.neighbors("b") == {"a", "c"}

    def test_multi_edges_between_pair(self):
        edges = [
            JoinPredicate("a", "x1", "b", "y1"),
            JoinPredicate("a", "x2", "b", "y2"),
        ]
        graph = JoinGraph(["a", "b"], edges)
        assert len(graph.edges_between("a", "b")) == 2
        # Parallel edges do not make a simple-graph cycle.
        assert not graph.has_cycle()
