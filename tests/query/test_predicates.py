"""Unit tests for predicates."""

import pytest

from repro.exceptions import QueryError
from repro.query import JoinPredicate, SelectionPredicate


class TestSelectionPredicate:
    def test_pid_is_stable_and_descriptive(self):
        pred = SelectionPredicate("part", "p_size", "<", 10.0)
        assert pred.pid == "sel:part.p_size<10"
        assert pred.is_range

    def test_equality_not_range(self):
        assert not SelectionPredicate("t", "c", "=", 1.0).is_range

    def test_rejects_unknown_operator(self):
        with pytest.raises(QueryError):
            SelectionPredicate("t", "c", "~", 1.0)

    def test_str(self):
        assert str(SelectionPredicate("t", "c", ">=", 2.0)) == "t.c >= 2"


class TestJoinPredicate:
    def test_canonical_order(self):
        a = JoinPredicate("part", "p_partkey", "lineitem", "l_partkey")
        b = JoinPredicate("lineitem", "l_partkey", "part", "p_partkey")
        assert a == b
        assert a.pid == b.pid
        assert a.left_table == "lineitem"  # sorted order

    def test_hashable_and_deduplicable(self):
        a = JoinPredicate("a", "x", "b", "y")
        b = JoinPredicate("b", "y", "a", "x")
        assert len({a, b}) == 1

    def test_column_for_and_other(self):
        join = JoinPredicate("part", "p_partkey", "lineitem", "l_partkey")
        assert join.column_for("part") == "p_partkey"
        assert join.column_for("lineitem") == "l_partkey"
        assert join.other("part") == "lineitem"
        with pytest.raises(QueryError):
            join.column_for("orders")
        with pytest.raises(QueryError):
            join.other("orders")

    def test_rejects_self_join(self):
        with pytest.raises(QueryError):
            JoinPredicate("t", "a", "t", "b")
