"""Tests for IN-list predicate support across the stack."""

import numpy as np
import pytest

from repro.executor import ExecutionEngine
from repro.executor.reference import reference_row_count
from repro.exceptions import QueryError
from repro.optimizer import Optimizer, SeqScan, actual_selectivities
from repro.optimizer.selectivity import estimate_selection
from repro.query import SelectionPredicate
from repro.query.sql import parse_query as parse


class TestPredicate:
    def test_values_normalized_sorted(self):
        a = SelectionPredicate("part", "p_size", "in", (3.0, 1.0, 2.0))
        b = SelectionPredicate("part", "p_size", "in", (2.0, 3.0, 1.0))
        assert a.pid == b.pid
        assert a.value == (1.0, 2.0, 3.0)
        assert not a.is_range and not a.indexable

    def test_empty_list_rejected(self):
        with pytest.raises(QueryError):
            SelectionPredicate("part", "p_size", "in", ())

    def test_str(self):
        pred = SelectionPredicate("part", "p_size", "in", (2.0, 1.0))
        assert str(pred) == "part.p_size in (1, 2)"


class TestEstimation:
    def test_in_selectivity_sums_equalities(self, statistics):
        single = SelectionPredicate("part", "p_size", "=", 7.0)
        triple = SelectionPredicate("part", "p_size", "in", (7.0, 8.0, 9.0))
        s1 = estimate_selection(single, statistics)
        s3 = estimate_selection(triple, statistics)
        assert s3 > s1
        assert s3 <= 1.0

    def test_magic_number_scales_with_list(self):
        pred = SelectionPredicate("part", "p_size", "in", (1.0, 2.0))
        assert estimate_selection(pred, None) == pytest.approx(0.2)

    def test_actual_selectivity(self, database):
        arr = database.column("part", "p_size")
        expected = float(np.mean(np.isin(arr, [1, 2, 3])))
        got = database.actual_selection_selectivity(
            "part", "p_size", "in", (1.0, 2.0, 3.0)
        )
        assert got == pytest.approx(expected)


class TestSqlAndExecution:
    def test_parses_in_list(self, schema):
        query = parse("select * from part where p_size in (1, 2, 3)", schema)
        assert query.selections[0].op == "in"
        assert query.selections[0].value == (1.0, 2.0, 3.0)

    def test_in_never_gets_an_index_scan(self, schema):
        from repro.optimizer.joinorder import access_paths

        query = parse("select * from part where p_size in (1, 2)", schema)
        paths = access_paths(query, "part")
        assert len(paths) == 1  # SeqScan only

    def test_execution_matches_numpy(self, database, schema):
        query = parse("select * from part where p_size in (1, 2, 3)", schema)
        engine = ExecutionEngine(database)
        result = engine.execute(query, SeqScan("part", (query.selections[0].pid,)))
        expected = int(np.isin(database.column("part", "p_size"), [1, 2, 3]).sum())
        assert result.rows == expected

    def test_join_query_with_in_filter_end_to_end(self, database, schema):
        sql = (
            "select * from lineitem, part "
            "where p_partkey = l_partkey and p_size in (5, 10, 15)"
        )
        query = parse(sql, schema)
        optimizer = Optimizer(schema)
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        engine = ExecutionEngine(database)
        assert engine.execute(query, plan).rows == reference_row_count(
            database, query
        )

    def test_bouquet_over_in_dimension(self, database, statistics, schema):
        """An IN predicate can itself be the error dimension."""
        from repro.api import BouquetConfig, Catalog, compile_bouquet, execute

        catalog = Catalog(schema, statistics=statistics, database=database)
        compiled = compile_bouquet(
            "select * from lineitem, part "
            "where p_partkey = l_partkey and p_size in (5, 10, 15, 20)",
            catalog,
            config=BouquetConfig(resolution=16),
        )
        result = execute(compiled, database)
        assert result.completed
