"""render_sql: the parser's lossless inverse (satellite of repro.wlgen)."""

import pytest

from repro.query import JoinPredicate, Query, SelectionPredicate, parse_query, render_sql
from repro.wlgen import QueryGenerator


class TestRoundTrip:
    def test_hundred_seeded_queries_round_trip(self, schema, database):
        """render -> parse -> render is the identity on 100 generated
        queries, and the re-parsed query is structurally identical."""
        generator = QueryGenerator(schema, database)
        for generated in generator.generate_many(2024, 100):
            sql = generated.sql
            reparsed = parse_query(sql, schema)
            query = generated.query
            assert reparsed.tables == query.tables
            assert reparsed.predicate_ids == query.predicate_ids
            assert sorted(reparsed.group_by) == sorted(query.group_by)
            assert reparsed.aggregate == query.aggregate
            assert render_sql(reparsed) == sql

    def test_constants_survive_at_full_precision(self, schema):
        """repr-precision literals: exact float identity, not ~1e-6 fuzz."""
        awkward = [0.1 + 0.2, 1e-7, 123456789.123456789, 2.0**-40, 1e21]
        for value in awkward:
            query = Query(
                "precision", schema, ["lineitem"],
                selections=[
                    SelectionPredicate("lineitem", "l_quantity", "<", value)
                ],
            )
            reparsed = parse_query(render_sql(query), schema)
            assert reparsed.selections[0].value == float(value)

    def test_in_list_round_trips(self, schema):
        query = Query(
            "inlist", schema, ["lineitem"],
            selections=[
                SelectionPredicate(
                    "lineitem", "l_shipdate", "in", (7.0, 3.0, 1913.0)
                )
            ],
        )
        reparsed = parse_query(render_sql(query), schema)
        assert reparsed.selections[0].value == query.selections[0].value


class TestCanonicalOrdering:
    def test_predicate_order_is_stable(self, schema):
        """Structurally identical queries render identically regardless of
        the order predicates were supplied in."""
        joins = [
            JoinPredicate("part", "p_partkey", "lineitem", "l_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ]
        sels = [
            SelectionPredicate("part", "p_retailprice", "<", 1000.0),
            SelectionPredicate("orders", "o_totalprice", ">", 5.5),
        ]
        a = Query("a", schema, ["lineitem", "orders", "part"],
                  selections=sels, joins=joins)
        b = Query("b", schema, ["lineitem", "orders", "part"],
                  selections=list(reversed(sels)), joins=list(reversed(joins)))
        assert render_sql(a) == render_sql(b)

    def test_joins_render_before_selections(self, schema):
        query = Query(
            "order", schema, ["lineitem", "part"],
            selections=[SelectionPredicate("part", "p_retailprice", "<", 10.0)],
            joins=[JoinPredicate("part", "p_partkey", "lineitem", "l_partkey")],
        )
        sql = render_sql(query)
        assert sql.index("p_partkey") < sql.index("p_retailprice")

    def test_eq_query_shape(self, eq_query):
        sql = render_sql(eq_query)
        assert sql.startswith("SELECT * FROM lineitem, orders, part WHERE ")
        assert "part.p_retailprice < 1000.0" in sql

    def test_aggregate_and_group_by(self, schema):
        query = Query(
            "agg", schema, ["lineitem"],
            selections=[SelectionPredicate("lineitem", "l_quantity", "<", 10.0)],
            group_by=[("lineitem", "l_shipmode")],
            aggregate=True,
        )
        sql = render_sql(query)
        assert sql.startswith("SELECT COUNT(*) FROM")
        assert sql.endswith("GROUP BY lineitem.l_shipmode")
        reparsed = parse_query(sql, schema)
        assert reparsed.aggregate
        assert list(reparsed.group_by) == [("lineitem", "l_shipmode")]
