"""Serving-layer fixtures: a catalog over the shared session world and
a small compile config that keeps each test-compile to a handful of
optimizer calls."""

from __future__ import annotations

import pytest

from repro.api import BouquetConfig, Catalog


@pytest.fixture
def catalog(schema, statistics, database):
    """Function-scoped so tests may mutate `catalog.statistics` freely."""
    return Catalog(schema, statistics=statistics, database=database)


@pytest.fixture
def small_config():
    return BouquetConfig(resolution=16)
