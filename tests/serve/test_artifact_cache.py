"""BouquetArtifactStore: LRU memory tier over the durable disk tier."""

from __future__ import annotations

import json
import os

import pytest

from repro.api import BouquetConfig, Catalog, compile_bouquet
from repro.exceptions import BouquetError
from repro.obs import MemorySink, Tracer
from repro.serve import BouquetArtifactStore, STORE_FORMAT, artifact_key

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture(scope="module")
def world(schema, statistics, database):
    """Two compiled artifacts under distinct keys (different resolutions)."""
    catalog = Catalog(schema, statistics=statistics, database=database)
    cfg_a = BouquetConfig(resolution=16)
    cfg_b = BouquetConfig(resolution=12)
    compiled_a = compile_bouquet(SQL, catalog, config=cfg_a)
    compiled_b = compile_bouquet(SQL, catalog, config=cfg_b)
    key_a = artifact_key(compiled_a.query, statistics, cfg_a)
    key_b = artifact_key(compiled_b.query, statistics, cfg_b)
    assert key_a.digest != key_b.digest
    return catalog, (key_a, compiled_a), (key_b, compiled_b)


def _counters(tracer):
    return tracer.snapshot()["counters"]


def test_capacity_must_be_positive():
    with pytest.raises(BouquetError):
        BouquetArtifactStore(capacity=0)


def test_memory_tier_hit_and_counters(world):
    catalog, (key, compiled), _ = world
    tracer = Tracer(MemorySink())
    store = BouquetArtifactStore(tracer=tracer)

    assert store.lookup(key, catalog) == (None, None)
    assert _counters(tracer)["serve.cache.miss"] == 1

    store.put(key, compiled)
    hit, tier = store.lookup(key, catalog)
    assert hit is compiled
    assert tier == "memory"
    assert _counters(tracer)["serve.cache.hit_memory"] == 1
    assert _counters(tracer)["serve.cache.store"] == 1
    assert len(store) == 1
    assert store.cached_digests() == [key.digest]


def test_memory_only_store_forgets_on_eviction(world):
    catalog, (key_a, compiled_a), (key_b, compiled_b) = world
    store = BouquetArtifactStore(capacity=1)
    store.put(key_a, compiled_a)
    store.put(key_b, compiled_b)
    assert len(store) == 1
    assert store.get(key_a, catalog) is None
    assert store.get(key_b, catalog) is compiled_b


def test_eviction_spills_to_disk_not_to_recompile(world, tmp_path):
    catalog, (key_a, compiled_a), (key_b, compiled_b) = world
    tracer = Tracer(MemorySink())
    store = BouquetArtifactStore(root=str(tmp_path), capacity=1, tracer=tracer)
    store.put(key_a, compiled_a)
    store.put(key_b, compiled_b)  # evicts A from memory; disk copy remains
    assert _counters(tracer)["serve.cache.evict"] == 1
    assert store.snapshot() == {"memory_entries": 1, "disk_entries": 2}

    hit, tier = store.lookup(key_a, catalog)
    assert tier == "disk"
    assert _counters(tracer)["serve.cache.hit_disk"] == 1
    # The rehydrated artifact is semantically the one we stored.
    assert hit.mso_bound == pytest.approx(compiled_a.mso_bound)
    assert hit.bouquet.cardinality == compiled_a.bouquet.cardinality
    assert [c.cost for c in hit.bouquet.contours] == pytest.approx(
        [c.cost for c in compiled_a.bouquet.contours]
    )
    # Reloading promoted it back into the (full) memory tier, evicting B.
    assert store.get(key_a, catalog) is hit


def test_disk_tier_survives_process_restart(world, tmp_path):
    catalog, (key, compiled), _ = world
    writer = BouquetArtifactStore(root=str(tmp_path))
    writer.put(key, compiled)

    reader = BouquetArtifactStore(root=str(tmp_path))
    assert reader.snapshot()["disk_entries"] == 1
    hit, tier = reader.lookup(key, catalog)
    assert tier == "disk"
    assert hit.mso_bound == pytest.approx(compiled.mso_bound)

    envelope = json.load(open(os.path.join(str(tmp_path), f"{key.digest}.json")))
    assert envelope["format"] == STORE_FORMAT
    assert envelope["key"]["statistics_digest"] == key.statistics_digest


def test_corrupt_disk_entry_is_a_miss(world, tmp_path):
    catalog, (key, compiled), _ = world
    store = BouquetArtifactStore(root=str(tmp_path))
    store.put(key, compiled)
    path = os.path.join(str(tmp_path), f"{key.digest}.json")
    with open(path, "w") as handle:
        handle.write("{not json")
    fresh = BouquetArtifactStore(root=str(tmp_path))
    assert fresh.lookup(key, catalog) == (None, None)


def test_invalidate_statistics_drops_stale_entries(world, tmp_path):
    catalog, (key_a, compiled_a), (key_b, compiled_b) = world
    tracer = Tracer(MemorySink())
    store = BouquetArtifactStore(root=str(tmp_path), tracer=tracer)
    store.put(key_a, compiled_a)
    store.put(key_b, compiled_b)

    # Same fingerprint: nothing to do.
    assert store.invalidate_statistics(key_a.statistics_digest) == 0
    assert store.snapshot() == {"memory_entries": 2, "disk_entries": 2}

    # New world view: both entries (same stats digest) go, counted once
    # each even though they live in both tiers.
    removed = store.invalidate_statistics("somebody-else")
    assert removed == 2
    assert _counters(tracer)["serve.cache.invalidated"] == 2
    assert store.snapshot() == {"memory_entries": 0, "disk_entries": 0}
    assert store.lookup(key_a, catalog) == (None, None)


def test_clear_empties_both_tiers(world, tmp_path):
    catalog, (key, compiled), _ = world
    store = BouquetArtifactStore(root=str(tmp_path))
    store.put(key, compiled)
    store.clear()
    assert store.snapshot() == {"memory_entries": 0, "disk_entries": 0}
    assert store.cached_digests() == []
