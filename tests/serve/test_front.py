"""ServeGateway: admission + the overload ladder + accounting over a
fake backend, all on a virtual clock."""

from __future__ import annotations

import pytest

from repro.exceptions import BouquetError
from repro.obs import MemorySink, Tracer
from repro.runtime import SimulatedRuntime
from repro.serve import ServeGateway, ServeRequest, ServeResponse, TenantQuota

SQL = "select * from part where p_retailprice < 1000"


class FakeBackend:
    """Records every request; replies with a scripted response."""

    def __init__(self, runtime=None, service_seconds=0.0):
        self.requests = []
        self.runtime = runtime
        self.service_seconds = service_seconds
        self.reply = lambda request: ServeResponse(
            status="ok", cache="memory", query_name=request.sql or "", rows=7
        )

    def serve_request(self, request):
        self.requests.append(request)
        if self.runtime is not None and self.service_seconds:
            self.runtime.advance(self.service_seconds)
        return self.reply(request)


@pytest.fixture
def runtime():
    return SimulatedRuntime()


@pytest.fixture
def backend(runtime):
    return FakeBackend(runtime)


def gateway(backend, runtime, **kwargs):
    return ServeGateway(backend, runtime=runtime, **kwargs)


class TestSurface:
    def test_backend_must_speak_the_protocol(self):
        with pytest.raises(BouquetError, match="serve_request"):
            ServeGateway(object())

    def test_handle_stamps_identity(self, backend, runtime):
        gw = gateway(backend, runtime)
        response = gw.handle(
            ServeRequest(query=SQL, tenant="alpha", request_id="r42")
        )
        assert response.ok
        assert response.tenant == "alpha"
        assert response.request_id == "r42"
        assert backend.requests[0].tenant == "alpha"

    def test_bare_sql_is_coerced_to_an_envelope(self, backend, runtime):
        response = gateway(backend, runtime).handle(SQL)
        assert response.ok and response.tenant == "default"

    def test_invalid_request_never_reaches_the_backend(self, backend, runtime):
        gw = gateway(backend, runtime)
        response = gw.handle(ServeRequest(query=SQL, mode="turbo"))
        assert response.failed
        assert response.error_code == "invalid-request"
        assert backend.requests == []
        # The failed-fast path held no queue slot.
        assert gw.admission.depth("default") == 0

    def test_backend_errors_become_typed_failures(self, backend, runtime):
        def explode(request):
            raise BouquetError("synthetic backend fault")

        backend.reply = explode
        response = gateway(backend, runtime).handle(ServeRequest(query=SQL))
        assert response.failed
        assert "synthetic backend fault" in response.error

    def test_slot_released_after_every_outcome(self, backend, runtime):
        gw = gateway(backend, runtime)
        gw.handle(ServeRequest(query=SQL))
        backend.reply = lambda request: ServeResponse(
            status="failed", error="x", error_code="execute-failed"
        )
        gw.handle(ServeRequest(query=SQL))
        assert gw.admission.depth("default") == 0


class TestShedding:
    def test_quota_shed_is_a_typed_response(self, backend, runtime):
        gw = gateway(
            backend,
            runtime,
            default_quota=TenantQuota(rate=1.0, burst=1.0, max_queue=4),
        )
        assert gw.handle(ServeRequest(query=SQL)).ok
        shed = gw.handle(ServeRequest(query=SQL, request_id="r2"))
        assert shed.shed
        assert shed.error_code == "shed-quota"
        assert shed.request_id == "r2"
        assert len(backend.requests) == 1  # the shed request cost no work


class TestOverloadLadder:
    def test_degraded_admission_strips_the_request(self, backend, runtime):
        gw = gateway(
            backend,
            runtime,
            default_quota=TenantQuota(rate=1e6, burst=1e6, max_queue=4),
            degrade_at=0.5,
            degraded_budget=50.0,
        )
        # Hold two slots: occupancy 2/4 = 50% puts the next admit on
        # the ladder.
        t1, _ = gw.admit(ServeRequest(query=SQL))
        t2, _ = gw.admit(ServeRequest(query=SQL))
        ticket, _ = gw.admit(ServeRequest(query=SQL, budget=900.0))
        assert not t1.decision.degraded
        assert ticket.decision.degraded
        effective = gw.effective_request(ticket)
        assert effective.cached_only
        assert effective.budget == 50.0  # min(900, degraded_budget)
        # The caller's envelope is untouched.
        assert not ticket.request.cached_only

    def test_degraded_budget_keeps_the_tighter_cap(self, backend, runtime):
        gw = gateway(
            backend,
            runtime,
            default_quota=TenantQuota(rate=1e6, burst=1e6, max_queue=2),
            degrade_at=0.5,
            degraded_budget=50.0,
        )
        gw.admit(ServeRequest(query=SQL))
        ticket, _ = gw.admit(ServeRequest(query=SQL, budget=10.0))
        assert gw.effective_request(ticket).budget == 10.0

    def test_overload_degradation_is_attributed(self, backend, runtime):
        """A degraded outcome under ladder admission reports
        overload-degraded, not the backend's own code."""
        backend.reply = lambda request: ServeResponse(
            status="degraded",
            error="cached-only miss",
            error_code="cached-only-miss",
            rows=7,
        )
        gw = gateway(
            backend,
            runtime,
            default_quota=TenantQuota(rate=1e6, burst=1e6, max_queue=2),
            degrade_at=0.5,
        )
        gw.admit(ServeRequest(query=SQL))  # hold a slot: 50% occupancy
        ticket, _ = gw.admit(ServeRequest(query=SQL))
        response = gw.process(ticket)
        assert response.degraded
        assert response.error_code == "overload-degraded"

    def test_clean_admission_keeps_backend_error_codes(self, backend, runtime):
        backend.reply = lambda request: ServeResponse(
            status="degraded",
            error="compile deadline",
            error_code="compile-timeout",
            rows=7,
        )
        response = gateway(backend, runtime).handle(ServeRequest(query=SQL))
        assert response.error_code == "compile-timeout"


class TestAccounting:
    def test_queue_and_service_timings_from_the_runtime_clock(self, runtime):
        backend = FakeBackend(runtime, service_seconds=0.5)
        gw = gateway(backend, runtime)
        ticket, _ = gw.admit(ServeRequest(query=SQL))
        runtime.advance(0.25)  # waited a quarter second for a slot
        response = gw.process(ticket)
        assert response.queue_seconds == pytest.approx(0.25)
        assert response.service_seconds == pytest.approx(0.5)
        assert response.latency_seconds == pytest.approx(0.75)

    def test_stats_expose_counters_and_tenants(self, backend, runtime):
        tracer = Tracer(MemorySink())
        gw = gateway(backend, runtime, tracer=tracer)
        gw.handle(ServeRequest(query=SQL, tenant="alpha"))
        stats = gw.stats()
        assert stats["runtime"] == "simulated"
        assert stats["counters"]["serve.front.requests"] == 1
        assert stats["counters"]["serve.front.completed.ok"] == 1
        assert stats["tenants"]["alpha"]["depth"] == 0

    def test_tracer_defaults_to_the_backends(self, runtime):
        backend = FakeBackend(runtime)
        backend.tracer = Tracer(MemorySink())
        gw = ServeGateway(backend, runtime=runtime)
        gw.handle(ServeRequest(query=SQL))
        assert (
            backend.tracer.snapshot()["counters"]["serve.front.admitted"] == 1
        )
