"""The asyncio HTTP/JSON front-end: wire round trips, the HTTP status
mapping, shedding at loop speed, and keep-alive connections."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.runtime import AsyncioRuntime
from repro.serve import (
    AsyncServeClient,
    BouquetFrontEnd,
    ServeGateway,
    ServeRequest,
    ServeResponse,
    TenantQuota,
)
from repro.serve.http import http_status_for

SQL = "select * from part where p_retailprice < 1000"


class FakeBackend:
    def __init__(self):
        self.requests = []

    def serve_request(self, request):
        self.requests.append(request)
        if request.sql and "broken" in request.sql:
            return ServeResponse(
                status="failed", error="boom", error_code="execute-failed"
            )
        return ServeResponse(
            status="ok", cache="memory", query_name=request.sql or "", rows=7
        )


def run_with_front(coro_fn, **gateway_kwargs):
    """Spin up runtime + gateway + front-end, run the coroutine, tear
    everything down."""
    backend = FakeBackend()

    async def main():
        with AsyncioRuntime(max_workers=4) as runtime:
            gateway = ServeGateway(backend, runtime=runtime, **gateway_kwargs)
            async with BouquetFrontEnd(gateway, port=0) as front:
                return await coro_fn(front, backend)

    return asyncio.run(main())


class TestStatusMapping:
    @pytest.mark.parametrize(
        "response,expected",
        [
            (ServeResponse(status="ok"), 200),
            (ServeResponse(status="degraded", error_code="cached-only-miss"), 200),
            (
                ServeResponse(
                    status="budget-exhausted", error_code="budget-exhausted"
                ),
                200,
            ),
            (ServeResponse(status="shed", error_code="shed-quota"), 429),
            (ServeResponse(status="failed", error_code="invalid-request"), 400),
            (ServeResponse(status="failed", error_code="parse-error"), 400),
            (ServeResponse(status="failed", error_code="execute-failed"), 500),
        ],
    )
    def test_taxonomy_maps_onto_http(self, response, expected):
        assert http_status_for(response) == expected


class TestRoundTrips:
    def test_serve_ok(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                return await client.serve(
                    ServeRequest(query=SQL, tenant="alpha", request_id="r1")
                )

        response = run_with_front(scenario)
        assert response.ok
        assert response.rows == 7
        assert response.tenant == "alpha"
        assert response.request_id == "r1"

    def test_failed_is_500_but_still_an_envelope(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                payload = ServeRequest(query="select broken").to_dict()
                return await client._round_trip("POST", "/v1/serve", payload)

        status, payload = run_with_front(scenario)
        assert status == 500
        assert payload["status"] == "failed"
        assert payload["error_code"] == "execute-failed"

    def test_bad_payload_is_400(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                return await client._round_trip(
                    "POST", "/v1/serve", {"query": SQL, "bogus": 1}
                )

        status, payload = run_with_front(scenario)
        assert status == 400
        assert payload["status"] == "failed"
        assert payload["error_code"] == "invalid-request"
        assert "bogus" in payload["error"]

    def test_garbage_bytes_are_400_not_a_crash(self):
        async def scenario(front, backend):
            reader, writer = await asyncio.open_connection(
                front.host, front.port
            )
            body = b"not json {"
            writer.write(
                b"POST /v1/serve HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return int(status_line.split()[1])

        assert run_with_front(scenario) == 400

    def test_shed_is_429(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                first = await client.serve(ServeRequest(query=SQL))
                payload = ServeRequest(query=SQL).to_dict()
                status, body = await client._round_trip(
                    "POST", "/v1/serve", payload
                )
                return first, status, body

        first, status, body = run_with_front(
            scenario,
            # One token, glacial refill: the second request must shed.
            default_quota=TenantQuota(rate=1e-6, burst=1.0, max_queue=4),
        )
        assert first.ok
        assert status == 429
        assert body["status"] == "shed"
        assert body["error_code"] == "shed-quota"

    def test_unknown_route_is_404(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                return await client._round_trip("GET", "/v2/nope")

        status, payload = run_with_front(scenario)
        assert status == 404
        assert "no route" in payload["error"]

    def test_health_and_stats(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                await client.serve(ServeRequest(query=SQL, tenant="alpha"))
                return await client.health(), await client.stats()

        healthy, stats = run_with_front(scenario)
        assert healthy
        assert stats["runtime"] == "asyncio"
        assert stats["tenants"]["alpha"]["depth"] == 0

    def test_keep_alive_reuses_one_connection(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                writer_before = client._writer
                for i in range(3):
                    response = await client.serve(
                        ServeRequest(query=SQL, request_id=f"r{i}")
                    )
                    assert response.ok
                return writer_before is client._writer

        assert run_with_front(scenario)

    def test_concurrent_clients_interleave(self):
        async def scenario(front, backend):
            async def one(i):
                async with AsyncServeClient(front.host, front.port) as client:
                    return await client.serve(
                        ServeRequest(query=SQL, request_id=f"c{i}")
                    )

            responses = await asyncio.gather(*(one(i) for i in range(12)))
            return responses, backend

        responses, backend = run_with_front(scenario)
        assert len(responses) == 12
        assert all(r.ok for r in responses)
        assert sorted(r.request_id for r in responses) == sorted(
            f"c{i}" for i in range(12)
        )
        assert len(backend.requests) == 12

    def test_wire_payload_is_the_versioned_envelope(self):
        async def scenario(front, backend):
            async with AsyncServeClient(front.host, front.port) as client:
                payload = ServeRequest(query=SQL).to_dict()
                return await client._round_trip("POST", "/v1/serve", payload)

        _, payload = run_with_front(scenario)
        assert payload["format"] == "repro.serve.response.v1"
        # The wire shape is pure JSON scalars — re-encodable as-is.
        json.dumps(payload)
