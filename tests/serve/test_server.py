"""BouquetServer: single-flight compiles, the degradation ladder, and
statistics-refresh invalidation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Catalog, execute as api_execute
from repro.exceptions import BouquetError
from repro.obs import MemorySink, Tracer
from repro.serve import BouquetArtifactStore, BouquetServer, ServeRequest

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)
SQL2 = (
    "select * from lineitem, orders "
    "where l_orderkey = o_orderkey and o_totalprice < 150000"
)


@pytest.fixture
def tracer():
    return Tracer(MemorySink())


@pytest.fixture
def server(catalog, small_config, tracer):
    with BouquetServer(catalog, config=small_config, tracer=tracer) as srv:
        yield srv


def _counters(tracer):
    return tracer.snapshot()["counters"]


def test_cold_then_warm_serves_without_optimizer(server, tracer):
    cold = server.serve(SQL)
    assert cold.status == "ok"
    assert cold.cache == "compiled"
    assert cold.rows is not None and cold.rows > 0
    assert cold.mso_bound is not None

    before = _counters(tracer).get("optimizer.calls", 0)
    warm = server.serve(SQL)
    assert warm.status == "ok"
    assert warm.cache == "memory"
    assert warm.rows == cold.rows
    assert warm.total_cost == pytest.approx(cold.total_cost)
    # The warm request never touched the optimizer.
    assert _counters(tracer).get("optimizer.calls", 0) == before

    stats = server.stats()
    assert stats["counters"]["serve.requests"] == 2
    assert stats["counters"]["serve.served_ok"] == 2
    assert stats["store"]["memory_entries"] == 1
    assert stats["inflight"] == 0


def test_serve_matches_direct_api_execution(server, catalog, small_config):
    served = server.serve(SQL2)
    compiled, _ = server.compile(SQL2)
    direct = api_execute(compiled, catalog.database)
    assert served.rows == direct.result_rows
    assert served.total_cost == pytest.approx(direct.total_cost)
    trace = [(e.contour_index, e.plan_id, e.spilled) for e in served.result.executions]
    assert trace == [
        (e.contour_index, e.plan_id, e.spilled) for e in direct.executions
    ]


def test_singleflight_coalesces_concurrent_misses(server, tracer):
    n = 6
    barrier = threading.Barrier(n)
    results, errors = [], []

    def request():
        barrier.wait()
        try:
            results.append(server.compile(SQL))
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=request) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert len(results) == n
    sources = [source for _, source in results]
    # Exactly one request ran the compile; everyone else coalesced onto
    # its future (or, if they raced in late, hit the freshly stored entry).
    assert sources.count("compiled") == 1
    assert all(s in ("compiled", "coalesced", "memory") for s in sources)
    counters = _counters(tracer)
    assert counters["serve.cache.store"] == 1
    assert counters.get("serve.singleflight.coalesced", 0) == sources.count("coalesced")
    # Every thread got the same artifact.
    bounds = {compiled.mso_bound for compiled, _ in results}
    assert len(bounds) == 1


def test_mixed_hit_miss_workload(server, tracer):
    statuses = [server.serve(q).cache for q in (SQL, SQL2, SQL, SQL2, SQL)]
    assert statuses == ["compiled", "compiled", "memory", "memory", "memory"]
    counters = _counters(tracer)
    assert counters["serve.cache.store"] == 2
    assert counters["serve.cache.hit_memory"] == 3


def test_budget_exhaustion_is_reported_not_raised(server):
    served = server.serve(ServeRequest(query=SQL, budget=1e-3))
    assert served.status == "budget-exhausted"
    assert served.error_code == "budget-exhausted"
    assert served.result is None
    assert "budget" in served.error
    assert server.stats()["counters"]["serve.budget_exhausted"] == 1


def test_legacy_kwargs_pass_through_the_deprecation_adapter(server):
    """The pre-envelope signature still works, loudly."""
    with pytest.warns(DeprecationWarning, match="ServeRequest"):
        served = server.serve(SQL, budget=1e-3)
    assert served.status == "budget-exhausted"

    with pytest.warns(DeprecationWarning):
        fast = server.serve(SQL, crossing="concurrent")
    assert fast.status == "ok"
    assert fast.result.crossing == "concurrent"


def test_envelope_and_kwargs_together_is_an_error(server):
    with pytest.raises(BouquetError, match="inside the ServeRequest"):
        server.serve(ServeRequest(query=SQL), budget=1e9)


def test_compile_timeout_degrades_to_native_path(catalog, small_config, tracer):
    with BouquetServer(
        catalog, config=small_config, compile_timeout=0.05, tracer=tracer
    ) as server:
        inner = server._compile_and_store

        def slow_compile(key, query, sql, config=None):
            time.sleep(0.4)
            return inner(key, query, sql, config)

        server._compile_and_store = slow_compile
        served = server.serve(SQL)
        assert served.status == "degraded"
        assert served.cache == "none"
        assert served.mso_bound is None  # no guarantee on the NAT path
        assert served.rows is not None and served.rows > 0
        assert "deadline" in served.error
        counters = _counters(tracer)
        assert counters["serve.compile_timeouts"] == 1
        assert counters["serve.degraded"] == 1

        # The compile kept running in the background and still published
        # the artifact; the next request is a plain cache hit.
        deadline = time.time() + 10.0
        while server.stats()["store"]["memory_entries"] == 0:
            assert time.time() < deadline, "background compile never landed"
            time.sleep(0.02)
        again = server.serve(SQL)
        assert again.status == "ok"
        assert again.cache == "memory"
        assert again.rows == served.rows


def test_compile_failure_degrades_to_native_path(catalog, small_config, tracer):
    with BouquetServer(catalog, config=small_config, tracer=tracer) as server:
        def broken_compile(key, query, sql, config=None):
            raise BouquetError("synthetic compile failure")

        server._compile_and_store = broken_compile
        served = server.serve(SQL)
        assert served.status == "degraded"
        assert "synthetic compile failure" in served.error
        counters = _counters(tracer)
        assert counters["serve.compile_failures"] == 1
        assert counters["serve.degraded"] == 1


def test_refresh_statistics_patches_cached_artifacts(server, catalog, database):
    assert server.serve(SQL).cache == "compiled"
    assert server.serve(SQL).cache == "memory"

    new_stats = database.build_statistics(sample_size=800, seed=5)
    dropped = server.refresh_statistics(new_stats)
    assert catalog.statistics is new_stats

    # The delta patch carried the artifact across the fingerprint change:
    # the next request is a cache hit, not a recompile.
    refreshed = server.serve(SQL)
    assert refreshed.status == "ok"
    assert refreshed.cache == "memory"
    counters = server.stats()["counters"]
    assert counters["serve.statistics_refreshes"] == 1
    assert counters["serve.cache.patched"] == 1
    # The stale-fingerprint original was still swept out.
    assert dropped == 1
    assert counters["serve.cache.invalidated"] == 1


def test_refresh_statistics_without_patching_recompiles(
    server, catalog, database
):
    assert server.serve(SQL).cache == "compiled"

    new_stats = database.build_statistics(sample_size=800, seed=5)
    dropped = server.refresh_statistics(new_stats, patch=False)
    assert dropped == 1
    assert catalog.statistics is new_stats

    refreshed = server.serve(SQL)
    assert refreshed.status == "ok"
    assert refreshed.cache == "compiled"
    counters = server.stats()["counters"]
    assert counters["serve.statistics_refreshes"] == 1
    assert counters["serve.cache.invalidated"] == 1
    assert counters.get("serve.cache.patched", 0) == 0


def test_serving_requires_a_database(schema, statistics, small_config):
    server = BouquetServer(
        Catalog(schema, statistics=statistics), config=small_config
    )
    with pytest.raises(BouquetError):
        server.serve(SQL)
    server.close()


def test_closed_server_refuses_new_compiles(catalog, small_config):
    server = BouquetServer(catalog, config=small_config)
    server.close()
    with pytest.raises(BouquetError):
        server.compile(SQL)


def test_server_over_disk_store(catalog, small_config, tmp_path):
    store = BouquetArtifactStore(root=str(tmp_path))
    with BouquetServer(catalog, config=small_config, store=store) as server:
        first = server.serve(SQL)
        assert first.cache == "compiled"
    # A brand-new server over the same directory starts warm.
    with BouquetServer(
        catalog, config=small_config, store=BouquetArtifactStore(root=str(tmp_path))
    ) as server:
        warm = server.serve(SQL)
        assert warm.cache == "disk"
        assert warm.rows == first.rows


def test_per_request_crossing_override(server):
    """The crossing knob is per-request and cache-neutral: both requests
    share one compiled artifact, the second runs concurrently."""
    plain = server.serve(SQL)
    assert plain.status == "ok" and plain.cache == "compiled"
    assert plain.result.crossing == "sequential"

    fast = server.serve(ServeRequest(query=SQL, crossing="concurrent"))
    assert fast.status == "ok"
    assert fast.cache == "memory"  # same artifact, runtime knob only
    assert fast.result.crossing == "concurrent"
    assert fast.rows == plain.rows
    assert fast.result.elapsed_cost <= fast.result.total_cost * (1 + 1e-9)


def test_warm_compile_precompiles_through_the_cache(server, tracer):
    """warm_compile pushes every query through the batch compile path
    once; serving afterwards is pure cache hits, and re-warming does not
    recompile."""
    results = server.warm_compile([SQL, SQL2])
    assert [source for _, source in results] == ["compiled", "compiled"]
    assert all(compiled is not None for compiled, _ in results)

    served = server.serve(SQL)
    assert served.status == "ok"
    assert served.cache == "memory"

    again = server.warm_compile([SQL, SQL2])
    assert [source for _, source in again] == ["memory", "memory"]
    counters = _counters(tracer)
    assert counters.get("serve.warm_compiles", 0) == 4
    # Exactly two real compiles happened across both warm passes.
    assert counters.get("serve.cache.miss", 0) == 2
