"""The serving load harness: determinism, the zero-silent-drop gate,
and the multi-tenant concurrency behaviour it exists to measure."""

from __future__ import annotations

import pytest

from repro.bench.serve_load import (
    LoadSpec,
    SimulatedBouquetBackend,
    _percentile,
    run_simulated_load,
)
from repro.exceptions import ReproError
from repro.serve import ServeRequest, TenantQuota

#: Small enough to run in well under a second, big enough to exercise
#: queueing: 300 sessions arriving inside 0.25s against 24 slots.
SPEC = LoadSpec(sessions=300, requests_per_session=3, workers=24, seed=11)

# burst < max_queue for both, and max_queue sits above the worst-case
# in-flight depth the bucket can admit, so the bucket is always the
# first line of defence.
QUOTAS = {
    "alpha": TenantQuota(rate=2000.0, burst=400.0, max_queue=900),
    "beta": TenantQuota(rate=60.0, burst=25.0, max_queue=80),
}


@pytest.fixture(scope="module")
def report():
    return run_simulated_load(SPEC, quotas=QUOTAS, min_concurrent=250)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            LoadSpec(sessions=0)
        with pytest.raises(ReproError):
            LoadSpec(tenants={})

    def test_templates_are_distinct_queries(self):
        spec = LoadSpec()
        texts = {spec.template_sql(i) for i in range(20)}
        assert len(texts) == 20


class TestBackendModel:
    def test_ladder_shape(self):
        backend = SimulatedBouquetBackend(fail_every=0)
        sql = "select * from lineitem"
        cold_seconds, cold = backend.simulate(ServeRequest(query=sql))
        warm_seconds, warm = backend.simulate(ServeRequest(query=sql))
        assert cold.ok and warm.ok
        assert cold_seconds > warm_seconds  # compile vs cache hit
        assert warm.cache == "memory"

    def test_cached_only_miss_degrades(self):
        backend = SimulatedBouquetBackend()
        _, response = backend.simulate(
            ServeRequest(query="select 1", cached_only=True)
        )
        assert response.degraded
        assert response.error_code == "cached-only-miss"

    def test_tight_budget_exhausts(self):
        backend = SimulatedBouquetBackend(budget_floor=40.0)
        _, response = backend.simulate(
            ServeRequest(query="select 1", budget=30.0)
        )
        assert response.status == "budget-exhausted"

    def test_fault_injection_is_periodic(self):
        backend = SimulatedBouquetBackend(fail_every=3)
        statuses = [
            backend.simulate(ServeRequest(query=f"q{i}"))[1].status
            for i in range(6)
        ]
        assert statuses.count("failed") == 2


class TestGates:
    def test_zero_silent_drops(self, report):
        """The hard gate: every issued request got exactly one typed
        response — shed included."""
        assert report.requests == SPEC.sessions * SPEC.requests_per_session
        assert report.silent_drops == 0
        assert report.responses == report.requests

    def test_every_non_ok_response_is_typed(self, report):
        assert report.untyped == 0
        assert sum(report.error_codes.values()) == sum(
            count for status, count in report.statuses.items() if status != "ok"
        )

    def test_concurrency_floor_and_verdict(self, report):
        assert report.peak_sessions >= 250
        assert report.ok
        assert report.answered > 0

    def test_virtual_time_is_fast_wall_time(self, report):
        # Minutes of simulated serving replay in well under real time.
        assert report.virtual_seconds > 1.0
        assert report.wall_seconds < report.virtual_seconds

    def test_report_dict_shape(self, report):
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["silent_drops"] == 0
        assert set(payload["statuses"]) <= {
            "ok",
            "degraded",
            "budget-exhausted",
            "shed",
            "failed",
        }
        assert report.describe()


class TestDeterminism:
    def test_same_seed_replays_bit_identically(self, report):
        again = run_simulated_load(SPEC, quotas=QUOTAS, min_concurrent=250)
        a, b = report.to_dict(), again.to_dict()
        # Wall time is the only non-deterministic field.
        a.pop("wall_seconds"), b.pop("wall_seconds")
        assert a == b

    def test_different_seed_changes_the_workload(self, report):
        other = run_simulated_load(
            LoadSpec(
                sessions=300, requests_per_session=3, workers=24, seed=12
            ),
            quotas=QUOTAS,
        )
        assert other.to_dict()["statuses"] != {}
        assert other.latency_p50 != report.latency_p50 or (
            other.statuses != report.statuses
        )


class TestMultiTenantConcurrency:
    """Satellite: two tenants with asymmetric quotas under burst."""

    def test_tight_tenant_sheds_generous_tenant_sails(self, report):
        """beta's quota is ~10x under its offered load; alpha is
        provisioned.  Shedding must land on beta alone."""
        assert report.counters["serve.front.shed.quota"] > 0
        assert report.shed > 0
        # alpha was provisioned for the load: its sheds are zero, so
        # total sheds == beta's sheds. Re-run with beta removed to
        # prove alpha alone is shed-free under identical pressure.
        solo = run_simulated_load(
            LoadSpec(
                sessions=300,
                requests_per_session=3,
                workers=24,
                seed=11,
                tenants={"alpha": 1.0},
            ),
            quotas=QUOTAS,
        )
        assert solo.shed == 0

    def test_shed_quota_fires_before_queue_overflow(self, report):
        """burst < max_queue for both tenants, so the token bucket is
        always the first line of defence: no queue-full sheds."""
        assert report.error_codes.get("shed-quota", 0) > 0
        assert report.error_codes.get("shed-queue-full", 0) == 0
        assert report.counters.get("serve.front.shed.queue", 0) == 0

    def test_degrade_ladder_fires_before_shedding_the_provisioned_tenant(self):
        """Push alpha's queue past degrade_at without exhausting its
        bucket: budgets degrade (cached-only NAT answers) while nothing
        is rejected."""
        spec = LoadSpec(
            sessions=200,
            requests_per_session=2,
            workers=4,  # starve the service slots so queues fill
            tenants={"alpha": 1.0},
            seed=3,
        )
        quotas = {
            "alpha": TenantQuota(rate=5000.0, burst=450.0, max_queue=500)
        }
        report = run_simulated_load(
            spec, quotas=quotas, degrade_at=0.3, degraded_budget=50.0
        )
        assert report.silent_drops == 0
        assert report.shed == 0  # nothing rejected...
        assert report.statuses.get("degraded", 0) > 0  # ...but degraded
        assert report.error_codes.get("overload-degraded", 0) > 0
        assert report.counters["serve.front.degraded_overload"] > 0

    def test_all_five_statuses_under_the_default_workload(self):
        """The default CI smoke shape produces the full taxonomy."""
        report = run_simulated_load(
            LoadSpec(sessions=600, requests_per_session=3, workers=24, seed=42),
            quotas={
                "alpha": TenantQuota(rate=2000.0, burst=500.0, max_queue=400),
                "beta": TenantQuota(rate=40.0, burst=15.0, max_queue=30),
            },
        )
        assert set(report.statuses) == {
            "ok",
            "degraded",
            "budget-exhausted",
            "shed",
            "failed",
        }


def test_percentile_edges():
    assert _percentile([], 99) == 0.0
    assert _percentile([5.0], 50) == 5.0
    values = [float(i) for i in range(1, 101)]
    assert _percentile(values, 50) == 50.0
    assert _percentile(values, 99) == 99.0
