"""The versioned serve wire schema: envelope validation, the outcome
taxonomy, and JSON round trips."""

from __future__ import annotations

import pytest

from repro.exceptions import BouquetError
from repro.serve import (
    ERROR_CODES,
    REQUEST_FORMAT,
    RESPONSE_FORMAT,
    STATUSES,
    ServeRequest,
    ServeResponse,
)

SQL = "select * from part where p_retailprice < 1000"


class TestRequestValidation:
    def test_defaults_are_valid(self):
        request = ServeRequest(query=SQL).validate()
        assert request.tenant == "default"
        assert request.budget is None and not request.cached_only

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"query": ""},
            {"query": 42},
            {"tenant": ""},
            {"tenant": "   "},
            {"budget": 0.0},
            {"budget": -1.0},
            {"deadline": -0.1},
            {"mode": "turbo"},
            {"crossing": "diagonal"},
            {"compile_engine": "quantum"},
            {"cached_only": "yes"},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        fields = {"query": SQL, **kwargs}
        with pytest.raises(BouquetError):
            ServeRequest(**fields).validate()

    def test_zero_deadline_is_legal(self):
        # 0 means "degrade immediately on a compile miss", not "invalid".
        ServeRequest(query=SQL, deadline=0.0).validate()

    def test_with_returns_modified_copy(self):
        request = ServeRequest(query=SQL, tenant="a")
        stripped = request.with_(cached_only=True, budget=50.0)
        assert stripped.cached_only and stripped.budget == 50.0
        assert not request.cached_only and request.budget is None

    def test_sql_property(self, eq_query):
        assert ServeRequest(query=SQL).sql == SQL
        assert ServeRequest(query=eq_query).sql is None


class TestRequestWire:
    def test_dict_roundtrip(self):
        request = ServeRequest(
            query=SQL,
            tenant="alpha",
            request_id="r1",
            budget=500.0,
            deadline=2.0,
            mode="basic",
            crossing="concurrent",
            cached_only=True,
        )
        payload = request.to_dict()
        assert payload["format"] == REQUEST_FORMAT
        assert ServeRequest.from_dict(payload) == request

    def test_null_fields_get_defaults(self):
        request = ServeRequest.from_dict(
            {"query": SQL, "tenant": None, "cached_only": None}
        )
        assert request.tenant == "default"
        assert request.cached_only is False

    def test_unknown_fields_rejected(self):
        with pytest.raises(BouquetError, match="unknown fields"):
            ServeRequest.from_dict({"query": SQL, "priority": "high"})

    def test_unknown_format_rejected(self):
        with pytest.raises(BouquetError, match="unknown format"):
            ServeRequest.from_dict({"format": "repro.serve.request.v99", "query": SQL})

    def test_missing_query_rejected(self):
        with pytest.raises(BouquetError, match="query"):
            ServeRequest.from_dict({"tenant": "alpha"})

    def test_non_object_payload_rejected(self):
        with pytest.raises(BouquetError):
            ServeRequest.from_dict([SQL])

    def test_query_objects_cannot_cross_the_wire(self, eq_query):
        with pytest.raises(BouquetError, match="wire"):
            ServeRequest(query=eq_query).to_dict()


class _StubResult:
    result_rows = 123
    total_cost = 4.5


class TestResponseTaxonomy:
    def test_status_universe_is_closed(self):
        assert STATUSES == ("ok", "degraded", "budget-exhausted", "shed", "failed")
        with pytest.raises(BouquetError, match="unknown status"):
            ServeResponse(status="maybe")

    def test_error_codes_are_a_closed_set(self):
        with pytest.raises(BouquetError, match="unknown error code"):
            ServeResponse(status="failed", error_code="oops")
        for code in ERROR_CODES:
            ServeResponse(status="failed", error_code=code)

    @pytest.mark.parametrize("status", ["degraded", "budget-exhausted", "shed", "failed"])
    def test_non_ok_requires_an_error_code(self, status):
        with pytest.raises(BouquetError, match="requires an error_code"):
            ServeResponse(status=status)

    def test_result_fills_scalars(self):
        response = ServeResponse(status="ok", result=_StubResult())
        assert response.rows == 123
        assert response.total_cost == 4.5

    def test_outcome_predicates(self):
        ok = ServeResponse(status="ok")
        shed = ServeResponse(status="shed", error_code="shed-quota")
        degraded = ServeResponse(status="degraded", error_code="cached-only-miss")
        failed = ServeResponse(status="failed", error_code="parse-error")
        assert ok.ok and ok.answered and not ok.shed
        assert shed.shed and not shed.failed and not shed.answered
        assert degraded.degraded and degraded.answered and not degraded.ok
        assert failed.failed and not failed.shed

    def test_latency_sums_queue_and_service(self):
        response = ServeResponse(
            status="ok", queue_seconds=0.25, service_seconds=0.5
        )
        assert response.latency_seconds == pytest.approx(0.75)


class TestResponseWire:
    def test_dict_roundtrip(self):
        response = ServeResponse(
            status="degraded",
            cache="none",
            query_name="q",
            tenant="beta",
            request_id="r9",
            rows=10,
            total_cost=2.0,
            mso_bound=None,
            error="overload",
            error_code="overload-degraded",
            queue_seconds=0.1,
            service_seconds=0.2,
        )
        payload = response.to_dict()
        assert payload["format"] == RESPONSE_FORMAT
        assert ServeResponse.from_dict(payload) == response

    def test_artifact_key_flattens_to_digest(self):
        class Key:
            digest = "abc123"

        assert ServeResponse(status="ok", key=Key()).to_dict()["key"] == "abc123"

    def test_unknown_fields_rejected(self):
        with pytest.raises(BouquetError, match="unknown fields"):
            ServeResponse.from_dict({"status": "ok", "extra": 1})

    def test_unknown_format_rejected(self):
        with pytest.raises(BouquetError, match="unknown format"):
            ServeResponse.from_dict({"format": "nope", "status": "ok"})

    def test_missing_status_rejected(self):
        with pytest.raises(BouquetError, match="status"):
            ServeResponse.from_dict({})
