"""Per-tenant admission control on a virtual clock: token buckets,
bounded queues, the degrade ladder, and tenant isolation."""

from __future__ import annotations

import pytest

from repro.exceptions import BouquetError
from repro.obs import MemorySink, Tracer
from repro.runtime import SimulatedRuntime
from repro.serve import AdmissionController, TenantQuota
from repro.serve.admission import TokenBucket


class TestTenantQuota:
    @pytest.mark.parametrize(
        "kwargs",
        [{"rate": 0.0}, {"rate": -1.0}, {"burst": 0.5}, {"max_queue": 0}],
    )
    def test_invalid_quotas_rejected(self, kwargs):
        with pytest.raises(BouquetError):
            TenantQuota(**kwargs)


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=4.0, now=0.0)
        for _ in range(4):
            assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        # 0.5 virtual seconds at 2 tokens/s buys exactly one admission.
        assert bucket.try_acquire(0.5)
        assert not bucket.try_acquire(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        assert bucket.level(1000.0) == 2.0


@pytest.fixture
def runtime():
    return SimulatedRuntime()


def controller(runtime, **kwargs):
    return AdmissionController(runtime, **kwargs)


class TestAdmission:
    def test_quota_shed_with_a_frozen_clock(self, runtime):
        ctl = controller(
            runtime, default_quota=TenantQuota(rate=1.0, burst=2.0, max_queue=8)
        )
        assert ctl.admit("t").admitted
        assert ctl.admit("t").admitted
        shed = ctl.admit("t")
        assert not shed.admitted
        assert shed.error_code == "shed-quota"
        assert "quota" in shed.reason

    def test_quota_recovers_as_the_clock_advances(self, runtime):
        ctl = controller(
            runtime, default_quota=TenantQuota(rate=10.0, burst=1.0, max_queue=8)
        )
        assert ctl.admit("t").admitted
        assert not ctl.admit("t").admitted
        runtime.advance(0.1)  # one token at 10/s
        assert ctl.admit("t").admitted

    def test_queue_shed_when_slots_are_held(self, runtime):
        ctl = controller(
            runtime,
            default_quota=TenantQuota(rate=1000.0, burst=1000.0, max_queue=3),
            degrade_at=1.0,
        )
        for _ in range(3):
            assert ctl.admit("t").admitted
        shed = ctl.admit("t")
        assert not shed.admitted
        assert shed.error_code == "shed-queue-full"
        ctl.release("t")
        assert ctl.admit("t").admitted

    def test_quota_sheds_before_the_queue_can_overflow(self, runtime):
        """The paper-shaped invariant: with burst < max_queue, a flood
        trips the token bucket while the queue still has headroom."""
        quota = TenantQuota(rate=1.0, burst=10.0, max_queue=50)
        ctl = controller(runtime, default_quota=quota)
        outcomes = [ctl.admit("t") for _ in range(40)]
        sheds = [d for d in outcomes if not d.admitted]
        assert len(sheds) == 30
        assert {d.error_code for d in sheds} == {"shed-quota"}
        assert ctl.depth("t") == 10  # never came close to max_queue

    def test_degrade_ladder_engages_at_occupancy(self, runtime):
        ctl = controller(
            runtime,
            default_quota=TenantQuota(rate=1e6, burst=1e6, max_queue=10),
            degrade_at=0.75,
        )
        decisions = [ctl.admit("t") for _ in range(10)]
        assert all(d.admitted for d in decisions)
        # Slots 1..7 are clean; 8, 9, 10 cross the 75% occupancy line.
        assert [d.degraded for d in decisions] == [False] * 7 + [True] * 3
        assert "ladder" in decisions[-1].reason

    def test_release_underflow_is_a_bug(self, runtime):
        ctl = controller(runtime)
        with pytest.raises(BouquetError, match="release without admit"):
            ctl.release("t")

    def test_degrade_at_validated(self, runtime):
        with pytest.raises(BouquetError):
            controller(runtime, degrade_at=0.0)
        with pytest.raises(BouquetError):
            controller(runtime, degrade_at=1.5)


class TestTenantIsolation:
    def test_one_tenants_flood_never_touches_another(self, runtime):
        ctl = controller(
            runtime,
            quotas={"noisy": TenantQuota(rate=1.0, burst=5.0, max_queue=8)},
            default_quota=TenantQuota(rate=1.0, burst=3.0, max_queue=8),
        )
        flood = [ctl.admit("noisy") for _ in range(100)]
        assert sum(d.admitted for d in flood) == 5  # burst, then shed
        # The quiet tenant's bucket and queue are untouched.
        for _ in range(3):
            assert ctl.admit("quiet").admitted
        assert ctl.depth("quiet") == 3
        assert ctl.pressure("noisy") == pytest.approx(5 / 8)

    def test_snapshot_reports_per_tenant_state(self, runtime):
        ctl = controller(
            runtime,
            quotas={"a": TenantQuota(rate=10.0, burst=4.0, max_queue=16)},
        )
        ctl.admit("a")
        snap = ctl.snapshot()
        assert snap["a"]["depth"] == 1
        assert snap["a"]["max_queue"] == 16
        assert snap["a"]["tokens"] == pytest.approx(3.0)
        assert snap["a"]["burst"] == 4.0


def test_shed_counters_flow_to_the_tracer(runtime):
    tracer = Tracer(MemorySink())
    ctl = AdmissionController(
        runtime,
        default_quota=TenantQuota(rate=1.0, burst=1.0, max_queue=4),
        tracer=tracer,
    )
    ctl.admit("t")
    ctl.admit("t")  # quota shed
    assert tracer.snapshot()["counters"]["serve.front.shed.quota"] == 1
