"""Serialization round-trip for compiled-bouquet artifacts on a seeded
2D ESS: the restored artifact must be observationally identical."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import BouquetConfig, Catalog, CompiledBouquet, compile_bouquet, simulate
from repro.ess import ErrorDimension
from repro.exceptions import BouquetError

SQL_2D = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000 and o_totalprice < 150000"
)
RES = 8


@pytest.fixture(scope="module")
def roundtrip(schema, statistics, database):
    catalog = Catalog(schema, statistics=statistics, database=database)
    config = BouquetConfig(resolution=RES)
    from repro.query import parse_query

    query = parse_query(SQL_2D, schema)
    dims = [
        ErrorDimension(pred.pid, 1e-4, 1.0, f"{pred.table}.{pred.column}")
        for pred in query.selections
    ]
    assert len(dims) == 2
    original = compile_bouquet(SQL_2D, catalog, config=config, dimensions=dims)
    assert original.space.dimensionality == 2
    restored = CompiledBouquet.from_dict(original.to_dict(), catalog)
    return catalog, original, restored


def test_envelope_and_config_survive(roundtrip):
    _, original, restored = roundtrip
    assert restored.sql == SQL_2D
    assert restored.config == original.config
    assert restored.mso_bound == pytest.approx(original.mso_bound)
    assert restored.bouquet.cardinality == original.bouquet.cardinality
    assert sorted(restored.bouquet.plan_ids) == sorted(original.bouquet.plan_ids)


def test_contour_structure_survives(roundtrip):
    _, original, restored = roundtrip
    assert len(restored.bouquet.contours) == len(original.bouquet.contours)
    for before, after in zip(original.bouquet.contours, restored.bouquet.contours):
        assert after.index == before.index
        assert after.cost == pytest.approx(before.cost)
        assert after.plan_at == before.plan_at


@given(i=st.integers(0, RES - 1), j=st.integers(0, RES - 1))
@settings(max_examples=30, deadline=None)
def test_diagram_identical_everywhere(roundtrip, i, j):
    _, original, restored = roundtrip
    location = (i, j)
    assert restored.bouquet.diagram.plan_at(location) == (
        original.bouquet.diagram.plan_at(location)
    )
    assert restored.bouquet.diagram.cost_at(location) == pytest.approx(
        original.bouquet.diagram.cost_at(location)
    )


@given(
    qa=st.tuples(
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=1e-3, max_value=1.0),
    )
)
@settings(max_examples=15, deadline=None)
def test_simulated_runs_identical(roundtrip, qa):
    _, original, restored = roundtrip
    before = simulate(original, list(qa))
    after = simulate(restored, list(qa))
    assert after.total_cost == pytest.approx(before.total_cost)
    assert [
        (e.contour_index, e.plan_id, e.spilled) for e in after.executions
    ] == [(e.contour_index, e.plan_id, e.spilled) for e in before.executions]


def test_save_load_roundtrip(roundtrip, tmp_path):
    catalog, original, _ = roundtrip
    path = str(tmp_path / "artifact.json")
    original.save(path)
    loaded = CompiledBouquet.load(path, catalog)
    assert loaded.mso_bound == pytest.approx(original.mso_bound)
    assert loaded.sql == SQL_2D


def test_unknown_format_rejected(roundtrip):
    catalog, original, _ = roundtrip
    payload = original.to_dict()
    payload["format"] = "repro.bouquet.artifact.v999"
    with pytest.raises(BouquetError):
        CompiledBouquet.from_dict(payload, catalog)
