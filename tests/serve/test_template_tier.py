"""The serving layer's template tier: two-tier lookup, counters,
statistics invalidation, fallback, and the config kill switch."""

from __future__ import annotations

import pytest

from repro.api import BouquetConfig, compile_bouquet
from repro.bench.template import TEMPLATED_WORKLOAD_CONFIG
from repro.drift import bouquets_equal, perturb_statistics
from repro.exceptions import TemplateError
from repro.obs.tracer import MemorySink, Tracer
from repro.serve.cache import BouquetArtifactStore
from repro.serve.server import BouquetServer
from repro.template import TemplateStore
from repro.wlgen import QueryGenerator


@pytest.fixture
def templated_generator(schema, database):
    return QueryGenerator(schema, database, TEMPLATED_WORKLOAD_CONFIG)


@pytest.fixture
def instances(templated_generator):
    """Three bindings of one template (exemplar first)."""
    items = templated_generator.generate_template(7, 0, 3)
    queries = [item.query for item in items]
    assert len(queries[0].selections) >= 1
    return queries


@pytest.fixture
def server(catalog):
    tracer = Tracer(MemorySink())
    server = BouquetServer(
        catalog,
        config=BouquetConfig(resolution=8, template=True),
        store=BouquetArtifactStore(tracer=tracer),
        tracer=tracer,
    )
    yield server
    server.close()


class TestTemplateTierFlow:
    def test_second_instance_is_served_from_the_template(
        self, server, instances
    ):
        _, first = server.compile(instances[0])
        _, second = server.compile(instances[1])
        _, third = server.compile(instances[2])
        assert first == "compiled"
        assert second == "template"
        assert third == "template"
        counters = server.tracer.counters
        assert counters["serve.template.misses"] == 1
        assert counters["serve.template.hits"] == 2
        assert counters["serve.template.rebinds"] == 2
        assert counters.get("serve.template.fallbacks", 0) == 0
        assert counters["serve.template.stores"] >= 1

    def test_template_served_bouquet_is_bit_identical(
        self, server, catalog, instances
    ):
        server.compile(instances[0])
        compiled, source = server.compile(instances[1])
        assert source == "template"
        reference = compile_bouquet(
            instances[1], catalog, config=BouquetConfig(resolution=8)
        )
        assert bouquets_equal(compiled.bouquet, reference.bouquet) == []

    def test_rebound_artifact_lands_in_the_exact_store(
        self, server, instances
    ):
        server.compile(instances[0])
        server.compile(instances[1])
        # Asking again is now an exact-key memory hit, not a new rebind.
        _, source = server.compile(instances[1])
        assert source == "memory"
        assert server.tracer.counters["serve.template.rebinds"] == 1

    def test_stats_reports_the_template_tier(self, server, instances):
        server.compile(instances[0])
        server.compile(instances[1])
        snapshot = server.stats()["templates"]
        assert snapshot["template_entries"] == 1
        assert snapshot["template_hits"] == 1


class TestTemplateFallback:
    def test_rebind_failure_falls_back_to_a_full_compile(
        self, server, instances, monkeypatch
    ):
        server.compile(instances[0])

        def _boom(*args, **kwargs):
            raise TemplateError("forced", reason="forced")

        monkeypatch.setattr("repro.serve.server.rebind_compiled", _boom)
        compiled, source = server.compile(instances[1])
        assert source == "compiled"  # served correctly despite the tier
        counters = server.tracer.counters
        assert counters["serve.template.fallbacks"] == 1
        assert counters["serve.template.hits"] == 1
        assert counters.get("serve.template.rebinds", 0) == 0


class TestTemplateInvalidation:
    def test_statistics_refresh_drops_stale_template_entries(
        self, server, catalog, instances
    ):
        server.compile(instances[0])
        assert len(server.templates) == 1
        drifted = perturb_statistics(
            catalog.statistics, "part", "p_retailprice", scale=1.05
        )
        server.refresh_statistics(drifted)
        # The patch path re-registers carried artifacts under the new
        # statistics digest, so the tier keeps serving rebinds.
        assert server.tracer.counters.get("serve.template.invalidated", 0) >= 0
        _, source = server.compile(instances[1])
        assert source in ("template", "compiled")
        if source == "template":
            assert server.tracer.counters["serve.template.rebinds"] == 1


class TestTemplateKillSwitch:
    def test_template_false_disables_the_tier(self, catalog, instances):
        tracer = Tracer(MemorySink())
        with BouquetServer(
            catalog,
            config=BouquetConfig(resolution=8, template=False),
            store=BouquetArtifactStore(tracer=tracer),
            tracer=tracer,
        ) as server:
            assert server.templates is None
            _, first = server.compile(instances[0])
            _, second = server.compile(instances[1])
            assert first == "compiled"
            assert second == "compiled"
            assert "serve.template.hits" not in tracer.counters
            assert "serve.template.misses" not in tracer.counters

    def test_template_knob_is_not_part_of_the_cache_key(self, catalog):
        on = BouquetConfig(resolution=8, template=True)
        off = BouquetConfig(resolution=8, template=False)
        assert on.compile_knobs() == off.compile_knobs()


class TestTemplateStoreUnit:
    def test_lru_eviction_and_first_writer_wins(self, schema, statistics):
        from repro.query import Query, SelectionPredicate
        from repro.template import template_signature

        store = TemplateStore(capacity=2)

        def sig(value):
            return template_signature(
                Query(
                    f"q{value}",
                    schema,
                    ["part"],
                    selections=[
                        SelectionPredicate("part", "p_retailprice", "<", value)
                    ],
                )
            )

        s = sig(100.0)
        first = store.put(s, "artifact-a", "stats", "cfg")
        second = store.put(sig(200.0), "artifact-b", "stats", "cfg")
        assert second is first  # same template: first writer wins
        assert store.lookup(s, "stats", "cfg").compiled == "artifact-a"
        # Distinct statistics digests are distinct entries; capacity 2
        # evicts the least recently used.
        store.put(s, "artifact-c", "stats2", "cfg")
        store.put(s, "artifact-d", "stats3", "cfg")
        assert len(store) == 2
        assert store.lookup(s, "stats3", "cfg") is not None
        dropped = store.invalidate_statistics("stats3")
        assert dropped == 1
        assert len(store) == 1
