"""Content-hash cache keys: canonicalization, knob participation, and
statistics fingerprint memoization."""

from __future__ import annotations

from dataclasses import replace

from repro.api import BouquetConfig
from repro.query import JoinPredicate, Query, SelectionPredicate, parse_query
from repro.serve.fingerprint import (
    NO_STATISTICS,
    artifact_key,
    canonical_query_text,
    config_fingerprint,
    statistics_fingerprint,
)

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)
SQL2 = (
    "select * from lineitem, orders "
    "where l_orderkey = o_orderkey and o_totalprice < 150000"
)


def _query(schema, name):
    return Query(
        name,
        schema,
        ["lineitem", "orders", "part"],
        selections=[SelectionPredicate("part", "p_retailprice", "<", 1000.0)],
        joins=[
            JoinPredicate("part", "p_partkey", "lineitem", "l_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )


class TestCanonicalQueryText:
    def test_name_independent(self, schema):
        a = _query(schema, "alpha")
        b = _query(schema, "a completely different name")
        assert canonical_query_text(a) == canonical_query_text(b)

    def test_formatting_independent(self, schema):
        a = parse_query(SQL, schema)
        reformatted = SQL.replace("select *", "SELECT  *").replace(" and ", "  and  ")
        b = parse_query(reformatted, schema)
        assert canonical_query_text(a) == canonical_query_text(b)

    def test_different_structure_differs(self, schema):
        a = parse_query(SQL, schema)
        b = parse_query(SQL2, schema)
        assert canonical_query_text(a) != canonical_query_text(b)

    def test_predicate_order_independent(self, schema):
        """Regression: the canonical text must sort predicates itself
        rather than lean on ``Query.predicate_ids`` happening to return
        them sorted — reordered WHERE clauses share one artifact key."""
        forward = _query(schema, "fwd")
        reversed_ = Query(
            "rev",
            schema,
            ["part", "orders", "lineitem"],
            selections=list(reversed(forward.selections)),
            joins=list(reversed(forward.joins)),
        )
        assert canonical_query_text(forward) == canonical_query_text(reversed_)

    def test_reordered_where_clauses_share_an_artifact_key(
        self, schema, statistics, small_config
    ):
        a = parse_query(SQL, schema)
        reordered = parse_query(
            "select * from part, orders, lineitem "
            "where p_retailprice < 1000 and l_orderkey = o_orderkey "
            "and p_partkey = l_partkey",
            schema,
        )
        assert (
            artifact_key(a, statistics, small_config).digest
            == artifact_key(reordered, statistics, small_config).digest
        )


class TestArtifactKey:
    def test_deterministic(self, schema, statistics, small_config):
        q = parse_query(SQL, schema)
        k1 = artifact_key(q, statistics, small_config)
        k2 = artifact_key(q, statistics, small_config)
        assert k1 == k2
        assert k1.digest == k2.digest

    def test_runtime_knobs_do_not_participate(self, schema, statistics, small_config):
        q = parse_query(SQL, schema)
        base = artifact_key(q, statistics, small_config)
        runtime_variant = small_config.with_(
            mode="basic", equivalence_threshold=0.5, model_error_delta=0.1
        )
        assert artifact_key(q, statistics, runtime_variant).digest == base.digest

    def test_compile_knobs_participate(self, schema, statistics, small_config):
        q = parse_query(SQL, schema)
        base = artifact_key(q, statistics, small_config)
        for variant in (
            small_config.with_(ratio=3.0),
            small_config.with_(lambda_=0.0),
            small_config.with_(resolution=24),
            small_config.with_(cost_model="commercial"),
        ):
            assert artifact_key(q, statistics, variant).digest != base.digest

    def test_statistics_participate(self, schema, statistics, database, small_config):
        q = parse_query(SQL, schema)
        other = database.build_statistics(sample_size=300, seed=99)
        k1 = artifact_key(q, statistics, small_config)
        k2 = artifact_key(q, other, small_config)
        assert k1.statistics_digest != k2.statistics_digest
        assert k1.digest != k2.digest
        # Same query + config: only the statistics component moved.
        assert k1.query_digest == k2.query_digest
        assert k1.config_digest == k2.config_digest

    def test_no_statistics_is_a_stable_world_view(self, schema, small_config):
        q = parse_query(SQL, schema)
        k = artifact_key(q, None, small_config)
        assert k.statistics_digest == NO_STATISTICS
        assert k.digest == artifact_key(q, None, small_config).digest

    def test_describe_mentions_components(self, schema, statistics, small_config):
        k = artifact_key(parse_query(SQL, schema), statistics, small_config)
        text = k.describe()
        assert k.digest in text
        assert "stats=" in text


class TestStatisticsFingerprint:
    def test_memoized_against_version_token(self, database):
        stats = database.build_statistics(sample_size=300, seed=11)
        fp1 = statistics_fingerprint(stats)
        assert stats._fingerprint_cache == (stats.version_token(), fp1)
        assert statistics_fingerprint(stats) == fp1

    def test_set_column_changes_fingerprint(self, database):
        stats = database.build_statistics(sample_size=300, seed=11)
        fp1 = statistics_fingerprint(stats)
        table = stats.table("part")
        col = table.column("p_retailprice")
        table.set_column("p_retailprice", replace(col, max_value=col.max_value * 2))
        fp2 = statistics_fingerprint(stats)
        assert fp2 != fp1

    def test_set_table_with_same_content_keeps_fingerprint(self, database):
        # Re-registering a table bumps the version token (forcing a
        # recompute) but the *content* hash must stay identical.
        stats = database.build_statistics(sample_size=300, seed=11)
        fp1 = statistics_fingerprint(stats)
        token1 = stats.version_token()
        stats.set_table(stats.table("part"))
        assert stats.version_token() != token1
        assert statistics_fingerprint(stats) == fp1


def test_config_fingerprint_covers_exactly_the_compile_knobs():
    config = BouquetConfig()
    assert set(config.compile_knobs()) == {"ratio", "lambda", "resolution", "cost_model"}
    assert config_fingerprint(config) == config_fingerprint(config.with_(mode="basic"))
    assert config_fingerprint(config) != config_fingerprint(config.with_(ratio=2.5))
