"""The gated serve-smoke bench: cold pass compiles, warm pass must be
all cache hits with zero optimizer calls and a real speedup."""

from __future__ import annotations

from repro.bench.serving import CANNED_WORKLOAD, ServeSmokeReport, run_serve_smoke


def test_canned_workload_shapes():
    assert len(CANNED_WORKLOAD) >= 3
    assert len(set(CANNED_WORKLOAD)) == len(CANNED_WORKLOAD)


def test_smoke_run_amortizes(tmp_path):
    report = run_serve_smoke(
        scale=0.002,
        seed=7,
        stats_sample=600,
        resolution=16,
        store_root=str(tmp_path),
        min_speedup=2.0,  # CI-safe floor; the CLI gate keeps the 5x bar
    )
    assert report.queries == len(CANNED_WORKLOAD)
    assert report.all_warm_hits
    assert report.warm_optimizer_calls == 0
    assert report.cold_optimizer_calls > 0
    assert report.speedup >= 2.0
    assert report.ok
    text = report.describe()
    assert "speedup" in text
    assert "warm optimizer calls" in text


def _report(**overrides):
    base = dict(
        queries=2,
        cold_seconds=1.0,
        warm_seconds=0.1,
        cold_optimizer_calls=64,
        warm_optimizer_calls=0,
        warm_sources=["memory", "disk"],
        refresh_optimizer_calls=0,
        refresh_sources=["memory", "memory"],
        patched_artifacts=2,
        taxonomy={
            "ok": ["ok", None],
            "shed": ["shed", "shed-quota"],
            "degraded": ["degraded", "cached-only-miss"],
            "failed": ["failed", "parse-error"],
        },
    )
    base.update(overrides)
    return ServeSmokeReport(**base)


def test_report_verdict_logic():
    good = _report()
    assert good.speedup == 10.0
    assert good.ok

    # optimizer ran on the warm pass
    assert not _report(
        warm_optimizer_calls=2, warm_sources=["memory", "memory"]
    ).ok
    # only 2x speedup
    assert not _report(warm_seconds=0.5).ok
    # a warm miss
    assert not _report(warm_sources=["memory", "compiled"]).ok
    # the statistics refresh failed to patch every artifact across
    assert not _report(patched_artifacts=1).ok
    # a post-refresh request fell through to a recompile
    assert not _report(refresh_sources=["memory", "compiled"]).ok
    # the optimizer ran after the refresh
    assert not _report(refresh_optimizer_calls=32).ok
    # the taxonomy pass never ran, or two arms collapsed into one status
    assert not _report(taxonomy={}).ok
    bad_arm = _report()
    assert not _report(
        taxonomy={**bad_arm.taxonomy, "shed": ["failed", "shed-quota"]}
    ).ok
