"""BouquetServer.warm_sweep: pre-sweeping optimized cost fields onto
cached compile artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import MemorySink, Tracer
from repro.serve import BouquetServer

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture
def tracer():
    return Tracer(MemorySink())


@pytest.fixture
def server(catalog, small_config, tracer):
    with BouquetServer(catalog, config=small_config, tracer=tracer) as srv:
        yield srv


def test_warm_sweep_returns_field_and_counts(server, tracer):
    field = server.warm_sweep(SQL)
    compiled, source = server.compile(SQL)
    assert source == "memory"
    assert field.shape == compiled.bouquet.space.shape
    assert (field > 0).all()
    stats = server.stats()
    assert stats["counters"]["serve.warm_sweeps"] == 1
    assert any(
        s["name"] == "serve.warm_sweep" for s in tracer.sink.spans()
    )


def test_warm_sweep_memoizes_on_the_artifact(server):
    first = server.warm_sweep(SQL)
    compiled, _ = server.compile(SQL)
    cache = compiled.bouquet._sweep_cache
    costings = cache.coster.batched_costings
    second = server.warm_sweep(SQL)
    assert np.array_equal(first, second)
    # Second warm-up is answered from the totals memo: no new costings.
    assert cache.coster.batched_costings == costings


def test_warm_sweep_matches_reference(server):
    from repro.core.simulation import optimized_cost_field

    field = server.warm_sweep(SQL)
    compiled, _ = server.compile(SQL)
    ref = optimized_cost_field(compiled.bouquet, engine="reference")
    for loc, total in ref.items():
        assert field[loc] == pytest.approx(total, rel=1e-9)
