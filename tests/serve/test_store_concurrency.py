"""Artifact-store durability under contention and corruption: the
atomic-rename put, stored-key validation, and self-healing purges."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.api import BouquetConfig, Catalog, compile_bouquet
from repro.obs import MemorySink, Tracer
from repro.serve import (
    BouquetArtifactStore,
    LEGACY_STORE_FORMATS,
    STORE_FORMAT,
    artifact_key,
)

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture(scope="module")
def artifact(schema, statistics, database):
    """One compiled artifact plus its content-hash key."""
    catalog = Catalog(schema, statistics=statistics, database=database)
    config = BouquetConfig(resolution=16)
    compiled = compile_bouquet(SQL, catalog, config=config)
    key = artifact_key(compiled.query, statistics, config)
    return catalog, key, compiled


def _counters(tracer):
    return tracer.snapshot()["counters"]


def _envelope_path(root, key):
    return os.path.join(str(root), f"{key.digest}.json")


def _run_threads(workers):
    barrier = threading.Barrier(len(workers))
    errors = []

    def wrap(fn):
        def run():
            barrier.wait()
            try:
                fn()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


def test_concurrent_puts_leave_one_complete_envelope(artifact, tmp_path):
    """Hammer the same digest from many threads: every write goes through
    a private temp file and an atomic rename, so the surviving envelope
    is complete and no temp droppings remain."""
    catalog, key, compiled = artifact
    store = BouquetArtifactStore(root=str(tmp_path))

    errors = _run_threads([lambda: store.put(key, compiled)] * 16)
    assert not errors

    names = os.listdir(str(tmp_path))
    assert names == [f"{key.digest}.json"]
    assert not any(name.endswith(".tmp") for name in names)

    envelope = json.load(open(_envelope_path(tmp_path, key)))
    assert envelope["format"] == STORE_FORMAT
    assert envelope["key"]["query_digest"] == key.query_digest
    assert envelope["key"]["statistics_digest"] == key.statistics_digest
    assert envelope["key"]["config_digest"] == key.config_digest

    # A cold store over the same root rehydrates it cleanly.
    fresh = BouquetArtifactStore(root=str(tmp_path))
    hit, tier = fresh.lookup(key, catalog)
    assert tier == "disk"
    assert hit.mso_bound == pytest.approx(compiled.mso_bound)


def test_concurrent_put_lookup_invalidate_on_one_root(artifact, tmp_path):
    """Writers, readers, and an invalidation sweep race on one disk root
    without errors; afterwards the store is either empty or serving the
    artifact, never wedged in between."""
    catalog, key, compiled = artifact
    store = BouquetArtifactStore(root=str(tmp_path))
    store.put(key, compiled)

    def reader():
        for _ in range(20):
            hit, tier = store.lookup(key, catalog)
            assert (hit is None) == (tier is None)

    def writer():
        for _ in range(10):
            store.put(key, compiled)

    def invalidator():
        for _ in range(5):
            store.invalidate_statistics("somebody-else")

    errors = _run_threads([reader, reader, writer, writer, invalidator])
    assert not errors
    assert not any(
        name.endswith(".tmp") for name in os.listdir(str(tmp_path))
    )

    # Settle: one more put, then the entry must be fully servable.
    store.put(key, compiled)
    hit, tier = store.lookup(key, catalog)
    assert tier == "memory"
    assert hit is compiled


def test_corrupt_envelope_is_missed_and_purged(artifact, tmp_path):
    catalog, key, compiled = artifact
    BouquetArtifactStore(root=str(tmp_path)).put(key, compiled)
    path = _envelope_path(tmp_path, key)
    with open(path, "w") as handle:
        handle.write("{truncated garbage")

    tracer = Tracer(MemorySink())
    store = BouquetArtifactStore(root=str(tmp_path), tracer=tracer)
    assert store.lookup(key, catalog) == (None, None)
    # The corrupt file was removed, not left to fail on every request.
    assert not os.path.exists(path)
    counters = _counters(tracer)
    assert counters["serve.cache.purged"] == 1
    assert counters["serve.cache.miss"] == 1

    # The store heals: a re-put followed by a cold read works again.
    store.put(key, compiled)
    fresh = BouquetArtifactStore(root=str(tmp_path))
    _, tier = fresh.lookup(key, catalog)
    assert tier == "disk"


def test_key_mismatch_envelope_is_purged(artifact, tmp_path):
    """An envelope whose stored key disagrees with its filename digest
    (e.g. a file copied between cache roots) must not be served."""
    catalog, key, compiled = artifact
    BouquetArtifactStore(root=str(tmp_path)).put(key, compiled)
    path = _envelope_path(tmp_path, key)
    envelope = json.load(open(path))
    envelope["key"]["statistics_digest"] = "forged"
    with open(path, "w") as handle:
        json.dump(envelope, handle)

    tracer = Tracer(MemorySink())
    store = BouquetArtifactStore(root=str(tmp_path), tracer=tracer)
    assert store.lookup(key, catalog) == (None, None)
    assert not os.path.exists(path)
    assert _counters(tracer)["serve.cache.purged"] == 1


def test_unknown_format_envelope_is_purged(artifact, tmp_path):
    catalog, key, compiled = artifact
    BouquetArtifactStore(root=str(tmp_path)).put(key, compiled)
    path = _envelope_path(tmp_path, key)
    envelope = json.load(open(path))
    envelope["format"] = "repro.serve.artifact.v99"
    with open(path, "w") as handle:
        json.dump(envelope, handle)

    store = BouquetArtifactStore(root=str(tmp_path))
    assert store.lookup(key, catalog) == (None, None)
    assert not os.path.exists(path)


def test_bad_artifact_payload_is_purged(artifact, tmp_path):
    """Valid envelope, undeserializable artifact body: purged, not raised."""
    catalog, key, compiled = artifact
    BouquetArtifactStore(root=str(tmp_path)).put(key, compiled)
    path = _envelope_path(tmp_path, key)
    envelope = json.load(open(path))
    envelope["artifact"] = {"not": "an artifact"}
    with open(path, "w") as handle:
        json.dump(envelope, handle)

    tracer = Tracer(MemorySink())
    store = BouquetArtifactStore(root=str(tmp_path), tracer=tracer)
    assert store.lookup(key, catalog) == (None, None)
    assert not os.path.exists(path)
    assert _counters(tracer)["serve.cache.purged"] == 1


def test_legacy_v1_envelope_still_readable(artifact, tmp_path):
    catalog, key, compiled = artifact
    BouquetArtifactStore(root=str(tmp_path)).put(key, compiled)
    path = _envelope_path(tmp_path, key)
    envelope = json.load(open(path))
    envelope["format"] = LEGACY_STORE_FORMATS[0]
    with open(path, "w") as handle:
        json.dump(envelope, handle)

    store = BouquetArtifactStore(root=str(tmp_path))
    hit, tier = store.lookup(key, catalog)
    assert tier == "disk"
    assert hit.mso_bound == pytest.approx(compiled.mso_bound)
    assert os.path.exists(path)  # readable formats are never purged
