"""Tests for the ESS-wide simulation fields."""

import pytest

from repro.core import basic_cost_field, optimized_cost_field, simulate_at
from repro.core.simulation import sample_locations, suboptimality_field


class TestBasicCostField:
    def test_matches_per_location_simulation(self, eq_bouquet):
        field = basic_cost_field(eq_bouquet)
        for loc in [(0,), (17,), (42,), (63,)]:
            result = simulate_at(eq_bouquet, loc, mode="basic")
            assert field[loc] == pytest.approx(result.total_cost)

    def test_everywhere_positive_and_bounded(self, eq_bouquet, eq_diagram):
        field = basic_cost_field(eq_bouquet)
        assert (field > 0).all()
        subopt = suboptimality_field(field, eq_diagram.costs)
        assert (subopt >= 1.0 - 1e-9).all()
        assert subopt.max() <= eq_bouquet.mso_bound * (1 + 1e-6)

    def test_3d_field(self, lab):
        ql = lab.build("3D_DS_Q96")
        field = basic_cost_field(ql.bouquet)
        assert field.shape == ql.space.shape
        subopt = suboptimality_field(field, ql.diagram.costs)
        assert subopt.max() <= ql.bouquet.mso_bound * (1 + 1e-6)


class TestOptimizedCostField:
    def test_subset_of_locations(self, eq_bouquet):
        locations = [(0,), (30,), (63,)]
        field = optimized_cost_field(eq_bouquet, locations)
        assert set(field) == set(locations)
        for loc, cost in field.items():
            assert cost == pytest.approx(
                simulate_at(eq_bouquet, loc, mode="optimized").total_cost
            )


class TestSampling:
    def test_sample_deterministic(self, eq_space):
        a = sample_locations(eq_space, 10, seed=1)
        b = sample_locations(eq_space, 10, seed=1)
        assert a == b
        assert len(set(a)) == 10

    def test_sample_larger_than_grid_returns_all(self, eq_space):
        sample = sample_locations(eq_space, 10_000)
        assert len(sample) == eq_space.size
