"""Tests for §5.2's selectivity-monitoring discipline.

Two properties from the paper:

* learning happens only at nodes whose inputs are completely known — the
  first error node in execution order has an error-free subtree, so its
  tuple count divided by its (exactly knowable) input cardinalities is a
  safe lower bound;
* a selectivity evaluated only *above* other error-prone nodes is learnt
  **deferred**: not until the upstream error selectivities have been
  learnt exactly does its node become the "first unlearned error node".
"""

import pytest

from repro.core import BouquetRunner, identify_bouquet
from repro.core.runtime import AbstractExecutionService
from repro.ess import ErrorDimension, PlanDiagram, SelectivitySpace
from repro.optimizer import actual_selectivities, first_error_node
from repro.query import parse_query


@pytest.fixture(scope="module")
def stacked_bouquet(schema, database, optimizer):
    """A 2D space whose dims sit at different depths of every plan:
    the part filter is evaluated at a leaf, the lineitem-orders join
    above the lineitem-part join in most plans."""
    query = parse_query(
        "select * from lineitem, orders, part "
        "where p_partkey = l_partkey and l_orderkey = o_orderkey "
        "and p_retailprice < 1500",
        schema,
        name="stacked",
    )
    truth = actual_selectivities(query, database)
    sel_pid = query.selections[0].pid
    join_pid = next(j for j in query.joins if "orders" in j.tables).pid
    dims = [
        ErrorDimension(sel_pid, 1e-4, 1.0, "retailprice"),
        ErrorDimension(join_pid, truth[join_pid] / 100.0, truth[join_pid] * 2, "lxo"),
    ]
    space = SelectivitySpace(query, dims, 16, truth)
    diagram = PlanDiagram.exhaustive(optimizer, space)
    return identify_bouquet(diagram)


class TestDeferredLearning:
    def test_first_error_node_subtree_error_free(self, stacked_bouquet):
        """For every bouquet plan, the first unlearned error node's
        children carry no unlearned error pids — the §5.2 precondition
        for exact denominator knowledge."""
        error_pids = frozenset(d.pid for d in stacked_bouquet.space.dimensions)
        for plan_id in stacked_bouquet.plan_ids:
            plan = stacked_bouquet.registry.plan(plan_id)
            node = first_error_node(plan, error_pids)
            if node is None:
                continue
            for child in node.children:
                assert not (child.all_pids() & error_pids)

    def test_learning_respects_execution_order(self, stacked_bouquet):
        """In a run where both dims get learnt, a dim evaluated above
        another error node in the executed plan is never learnt from that
        plan before the lower one is exact."""
        space = stacked_bouquet.space
        qa = space.selectivities_at((12, 12))
        service = AbstractExecutionService(stacked_bouquet, qa)
        runner = BouquetRunner(stacked_bouquet, service, mode="optimized")
        result = runner.run()
        assert result.completed
        exact_at = {}
        for step, record in enumerate(result.executions):
            for learned in record.learned:
                if learned.exact and learned.pid not in exact_at:
                    exact_at[learned.pid] = step
        # Whenever a plan learns a pid, every error pid BELOW that pid's
        # node in that plan must already be exact.
        error_pids = frozenset(d.pid for d in space.dimensions)
        for step, record in enumerate(result.executions):
            if not record.learned:
                continue
            plan = stacked_bouquet.registry.plan(record.plan_id)
            unlearned_then = frozenset(
                pid
                for pid in error_pids
                if exact_at.get(pid, len(result.executions)) >= step
            )
            node = first_error_node(plan, unlearned_then)
            if node is None:
                continue
            learned_pids = {l.pid for l in record.learned}
            assert learned_pids <= set(node.local_pids), (
                "learning jumped past an unlearned upstream error node"
            )

    def test_both_dims_learnable(self, stacked_bouquet):
        """Discovery completes even though one dim's node sits above the
        other's in every plan (the paper's deferred-learning case)."""
        space = stacked_bouquet.space
        for location in [(3, 3), (10, 14), (15, 15)]:
            service = AbstractExecutionService(
                stacked_bouquet, space.selectivities_at(location)
            )
            result = BouquetRunner(stacked_bouquet, service, mode="optimized").run()
            assert result.completed
