"""Tests for bouquet validation."""

from repro.core.validation import validate_bouquet


class TestValidateBouquet:
    def test_healthy_bouquet_passes(self, eq_bouquet):
        report = validate_bouquet(eq_bouquet, check_optimized=True, sample=8)
        assert report.ok, report.describe()
        assert report.measured_mso <= report.bound * (1 + 1e-6)
        assert report.checked_locations == eq_bouquet.space.size

    def test_multid_bouquet_passes(self, lab):
        ql = lab.build("3D_DS_Q96")
        report = validate_bouquet(ql.bouquet, check_optimized=True, sample=4)
        assert report.ok, report.describe()

    def test_describe_mentions_status(self, eq_bouquet):
        report = validate_bouquet(eq_bouquet)
        assert "OK" in report.describe()
        assert "measured MSO" in report.describe()

    def test_detects_budget_tampering(self, eq_bouquet):
        import copy

        broken = copy.copy(eq_bouquet)
        broken.budgets = list(eq_bouquet.budgets)
        broken.budgets[0] *= 3.0  # violates the (1+λ) progression
        report = validate_bouquet(broken)
        assert not report.ok
        assert any(issue.kind == "budget" for issue in report.issues)

    def test_detects_contour_plan_tampering(self, eq_bouquet, eq_diagram):
        import copy

        from repro.core.contours import Contour

        broken = copy.copy(eq_bouquet)
        # Assign the cheapest-region plan to the most expensive contour
        # location: its cost there blows the (1+λ) threshold.
        cheap_plan = eq_diagram.plan_at(eq_bouquet.space.origin)
        last = eq_bouquet.contours[-1]
        exp_plan_at = dict(last.plan_at)
        for location in exp_plan_at:
            exp_plan_at[location] = cheap_plan
        tampered = Contour(
            index=last.index,
            cost=last.cost,
            locations=list(last.locations),
            plan_at=exp_plan_at,
        )
        broken.contours = list(eq_bouquet.contours[:-1]) + [tampered]
        report = validate_bouquet(broken)
        assert not report.ok
        kinds = {issue.kind for issue in report.issues}
        assert kinds & {"anorexic", "mso", "coverage"}
