"""Tests for isocost contour construction."""

import math

import numpy as np
import pytest

from repro.core.contours import (
    build_contours,
    contour_costs,
    densest_contour_plans,
    maximal_region_frontier,
)
from repro.exceptions import BouquetError


class TestContourCosts:
    def test_geometric_progression(self):
        costs = contour_costs(1.0, 100.0, 2.0)
        for a, b in zip(costs, costs[1:]):
            assert b == pytest.approx(2 * a)

    def test_boundary_conditions(self):
        """a/r < Cmin <= IC1 and ICm == Cmax (§3.1)."""
        for cmin, cmax, r in [(1.0, 100.0, 2.0), (3.7, 812.0, 2.0), (1.0, 16.0, 2.0), (2.0, 7.0, 3.0)]:
            costs = contour_costs(cmin, cmax, r)
            assert costs[-1] == pytest.approx(cmax)
            assert costs[0] >= cmin * (1 - 1e-9)
            assert costs[0] / r < cmin

    def test_exact_power_span(self):
        costs = contour_costs(1.0, 16.0, 2.0)
        assert costs == pytest.approx([1.0, 2.0, 4.0, 8.0, 16.0])

    def test_step_count_formula(self):
        costs = contour_costs(1.0, 1000.0, 2.0)
        assert len(costs) == math.floor(math.log2(1000.0)) + 1

    def test_degenerate_flat_pic(self):
        assert contour_costs(5.0, 5.0, 2.0) == [5.0]

    def test_invalid_inputs(self):
        with pytest.raises(BouquetError):
            contour_costs(0.0, 10.0, 2.0)
        with pytest.raises(BouquetError):
            contour_costs(1.0, 10.0, 1.0)
        with pytest.raises(BouquetError):
            contour_costs(10.0, 1.0, 2.0)


class TestFrontier:
    def test_1d_frontier_is_single_point(self):
        costs = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        assert maximal_region_frontier(costs, 5.0) == [(2,)]
        assert maximal_region_frontier(costs, 16.0) == [(4,)]

    def test_below_minimum_empty(self):
        costs = np.array([1.0, 2.0])
        assert maximal_region_frontier(costs, 0.5) == []

    def test_2d_staircase(self):
        # cost(i, j) = (i+1) * (j+1): monotone in both axes.
        grid = np.fromfunction(lambda i, j: (i + 1) * (j + 1), (4, 4))
        frontier = maximal_region_frontier(grid, 4.0)
        assert set(frontier) == {(0, 3), (1, 1), (3, 0)}

    def test_frontier_dominates_region(self):
        """Every in-region location must be dominated by a frontier point."""
        rng = np.random.default_rng(0)
        base = np.cumsum(rng.uniform(0.1, 1.0, size=(6, 6)), axis=0)
        grid = np.cumsum(base, axis=1)  # monotone in both axes
        ic = float(np.median(grid))
        frontier = maximal_region_frontier(grid, ic)
        for i in range(6):
            for j in range(6):
                if grid[i, j] <= ic:
                    assert any(fi >= i and fj >= j for fi, fj in frontier)


class TestBuildContours:
    def test_contours_cover_cost_range(self, eq_diagram):
        contours = build_contours(eq_diagram)
        assert contours[-1].cost == pytest.approx(eq_diagram.cmax)
        assert contours[0].cost >= eq_diagram.cmin * (1 - 1e-9)
        for contour in contours:
            assert contour.locations, f"contour {contour.index} is empty"

    def test_1d_contour_locations_monotone(self, eq_diagram):
        contours = build_contours(eq_diagram)
        positions = [contour.locations[0][0] for contour in contours]
        assert positions == sorted(positions)

    def test_contour_plans_are_diagram_choices(self, eq_diagram):
        for contour in build_contours(eq_diagram):
            for location, plan_id in contour.plan_at.items():
                assert plan_id == eq_diagram.plan_at(location)

    def test_density(self, eq_diagram):
        contours = build_contours(eq_diagram)
        rho = densest_contour_plans(contours)
        assert rho >= 1
        assert rho == max(c.density for c in contours)

    def test_densest_requires_contours(self):
        with pytest.raises(BouquetError):
            densest_contour_plans([])
