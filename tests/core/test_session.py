"""Tests for the high-level BouquetSession API and persistence."""

import os

import pytest

from repro.core.session import BouquetSession, CompiledQuery
from repro.exceptions import BouquetError, QueryError
from repro.query import parse_query

EQ_SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture(scope="module")
def session(schema, statistics, database):
    return BouquetSession(schema, statistics=statistics, database=database)


@pytest.fixture(scope="module")
def compiled(session):
    return session.compile(EQ_SQL, resolution=40)


class TestCompile:
    def test_compiles_from_sql(self, compiled):
        assert compiled.bouquet.cardinality >= 1
        assert compiled.space.dimensionality == 1  # only p_retailprice is fallible
        assert compiled.mso_bound <= 4.8 + 1e-9

    def test_compiles_from_query_object(self, session, eq_query):
        other = session.compile(eq_query, resolution=20)
        assert other.bouquet.contours

    def test_explicit_dimensions_respected(self, session, eq_query, eq_space):
        compiled = session.compile(
            eq_query, dimensions=list(eq_space.dimensions), resolution=16
        )
        assert compiled.space.dimensions == eq_space.dimensions

    def test_fallback_when_all_predicates_certain(self, session, schema):
        """A pure PK-FK join query cascades to the all-predicates fallback."""
        query = parse_query(
            "select * from lineitem, orders where l_orderkey = o_orderkey",
            schema,
        )
        compiled = session.compile(query, resolution=12)
        assert compiled.space.dimensionality == 1


class TestExecutionPaths:
    def test_real_execution(self, compiled):
        result = compiled.execute()
        assert result.completed
        assert result.result_rows is not None

    def test_simulation(self, compiled):
        result = compiled.simulate([0.03])
        assert result.completed
        assert result.total_cost > 0

    def test_execute_without_database_raises(self, schema, statistics, eq_query):
        session = BouquetSession(schema, statistics=statistics)  # no database
        compiled = session.compile(eq_query, resolution=12)
        with pytest.raises(BouquetError):
            compiled.execute()


class TestPersistence:
    def test_save_load_roundtrip(self, compiled, session, schema, tmp_path):
        path = os.path.join(tmp_path, "bouquet.json")
        compiled.save(path)
        query = parse_query(EQ_SQL, schema)
        loaded = CompiledQuery.load(path, session, query)
        assert loaded.bouquet.cardinality == compiled.bouquet.cardinality
        assert [c.cost for c in loaded.bouquet.contours] == pytest.approx(
            [c.cost for c in compiled.bouquet.contours]
        )

    def test_loaded_bouquet_executes_identically(
        self, compiled, session, schema, tmp_path
    ):
        path = os.path.join(tmp_path, "bouquet.json")
        compiled.save(path)
        loaded = CompiledQuery.load(path, session, parse_query(EQ_SQL, schema))
        a = compiled.execute(mode="basic")
        b = loaded.execute(mode="basic")
        assert a.result_rows == b.result_rows
        assert b.total_cost == pytest.approx(a.total_cost, rel=1e-6)

    def test_mismatched_query_rejected(self, compiled, session, schema, tmp_path):
        path = os.path.join(tmp_path, "bouquet.json")
        compiled.save(path)
        other = parse_query("select * from part where p_size < 10", schema)
        with pytest.raises(QueryError):
            CompiledQuery.load(path, session, other)

    def test_bad_format_rejected(self, session, schema, tmp_path):
        import json

        path = os.path.join(tmp_path, "bogus.json")
        with open(path, "w") as handle:
            json.dump({"format": "not.a.bouquet"}, handle)
        with pytest.raises(BouquetError):
            CompiledQuery.load(path, session, parse_query(EQ_SQL, schema))


class TestDeprecationShim:
    def test_warning_points_at_the_caller(self, schema, statistics):
        """The shim warns with stacklevel=2, so the reported location is
        the *caller's* construction site, not session.py internals."""
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            BouquetSession(schema, statistics=statistics)  # this line
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        warning = deprecations[0]
        assert "BouquetSession is deprecated" in str(warning.message)
        assert warning.filename == __file__
