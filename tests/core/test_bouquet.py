"""Tests for compile-time bouquet identification."""

import pytest

from repro.core import identify_bouquet


class TestIdentifyBouquet:
    def test_budgets_inflated_by_lambda(self, eq_diagram):
        bouquet = identify_bouquet(eq_diagram, lambda_=0.2)
        for contour, budget in zip(bouquet.contours, bouquet.budgets):
            assert budget == pytest.approx(1.2 * contour.cost)

    def test_bouquet_is_union_of_contour_plans(self, eq_bouquet):
        expected = sorted({p for c in eq_bouquet.contours for p in c.plan_ids})
        assert eq_bouquet.plan_ids == expected

    def test_cardinality_small(self, eq_diagram, eq_bouquet):
        assert eq_bouquet.cardinality <= len(eq_diagram.posp_plan_ids)
        assert eq_bouquet.cardinality <= 10  # "anorexic levels"

    def test_rho_definition(self, eq_bouquet):
        assert eq_bouquet.rho == max(c.density for c in eq_bouquet.contours)

    def test_mso_bound_formula(self, eq_bouquet):
        r = eq_bouquet.ratio
        expected = eq_bouquet.rho * (1 + eq_bouquet.lambda_) * r * r / (r - 1)
        assert eq_bouquet.mso_bound == pytest.approx(expected)

    def test_anorexic_plans_respect_lambda_on_contours(self, eq_bouquet, eq_diagram):
        cache = eq_diagram.cache
        threshold = 1 + eq_bouquet.lambda_
        for contour in eq_bouquet.contours:
            for location, plan_id in contour.plan_at.items():
                cost = cache.cost(plan_id, location)
                assert cost <= threshold * eq_diagram.cost_at(location) * (1 + 1e-9)

    def test_zero_lambda_keeps_diagram_plans(self, eq_diagram):
        bouquet = identify_bouquet(eq_diagram, lambda_=0.0)
        for contour in bouquet.contours:
            for location, plan_id in contour.plan_at.items():
                assert plan_id == eq_diagram.plan_at(location)

    def test_ratio_controls_contour_count(self, eq_diagram):
        doubling = identify_bouquet(eq_diagram, ratio=2.0)
        quadrupling = identify_bouquet(eq_diagram, ratio=4.0)
        assert len(quadrupling.contours) < len(doubling.contours)

    def test_describe_mentions_key_facts(self, eq_bouquet):
        text = eq_bouquet.describe()
        assert "rho" in text and "IC1" in text and "lambda" in text
