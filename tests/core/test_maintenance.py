"""Tests for incremental bouquet maintenance under scale-up (§8)."""

import pytest

from repro.catalog import tpch_generator_spec, tpch_schema
from repro.core.maintenance import refresh_bouquet
from repro.datagen import Database
from repro.ess import ErrorDimension, SelectivitySpace
from repro.exceptions import BouquetError
from repro.optimizer import Optimizer, actual_selectivities
from repro.query import parse_query

EQ_SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture(scope="module")
def scaled_world():
    """A 3x larger database with its own optimizer and ESS."""
    schema = tpch_schema(0.009)
    database = Database.generate(schema, tpch_generator_spec(0.009), seed=7)
    stats = database.build_statistics(sample_size=1500, seed=3)
    optimizer = Optimizer(schema, stats)
    query = parse_query(EQ_SQL, schema, name="EQ")
    base = actual_selectivities(query, database)
    return optimizer, query, base


class TestRefresh:
    def test_refresh_produces_valid_bouquet(self, eq_bouquet, scaled_world):
        optimizer, query, base = scaled_world
        dims = eq_bouquet.space.dimensions
        new_space = SelectivitySpace(query, dims, 48, base)
        result = refresh_bouquet(eq_bouquet, optimizer, new_space)
        bouquet = result.bouquet
        assert bouquet.contours
        assert bouquet.cardinality >= 1
        # Scale-up raises the cost ceiling.
        assert bouquet.diagram.cmax > eq_bouquet.diagram.cmax

    def test_refresh_cheaper_than_exhaustive_rebuild(self, eq_bouquet, scaled_world):
        optimizer, query, base = scaled_world
        dims = eq_bouquet.space.dimensions
        new_space = SelectivitySpace(query, dims, 48, base)
        result = refresh_bouquet(eq_bouquet, optimizer, new_space)
        assert result.optimizer_calls < new_space.size

    def test_refreshed_bouquet_completes_and_respects_bound(
        self, eq_bouquet, scaled_world
    ):
        from repro.core import simulate_at

        optimizer, query, base = scaled_world
        dims = eq_bouquet.space.dimensions
        new_space = SelectivitySpace(query, dims, 48, base)
        bouquet = refresh_bouquet(eq_bouquet, optimizer, new_space).bouquet
        for loc in [(0,), (24,), (47,)]:
            run = simulate_at(bouquet, loc, mode="basic")
            assert run.completed
            assert run.total_cost <= bouquet.mso_bound * bouquet.diagram.cost_at(
                loc
            ) * (1 + 1e-6)

    def test_reused_plans_counted(self, eq_bouquet, scaled_world):
        optimizer, query, base = scaled_world
        dims = eq_bouquet.space.dimensions
        new_space = SelectivitySpace(query, dims, 48, base)
        result = refresh_bouquet(eq_bouquet, optimizer, new_space)
        assert result.reused_plan_count == eq_bouquet.cardinality
        assert result.total_candidates >= result.reused_plan_count

    def test_dimension_mismatch_rejected(self, eq_bouquet, scaled_world):
        optimizer, query, base = scaled_world
        wrong = [ErrorDimension(query.joins[0].pid, 1e-6, 1e-4, "wrong")]
        base_full = dict(base)
        new_space = SelectivitySpace(query, wrong, 8, base_full)
        with pytest.raises(BouquetError):
            refresh_bouquet(eq_bouquet, optimizer, new_space)
