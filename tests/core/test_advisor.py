"""Tests for the §8 deployment advisor."""

from repro.core.advisor import (
    ProcessingMode,
    recommend_processing_mode,
)
from repro.ess.dimensioning import WorkloadErrorLog
from repro.query import JoinPredicate, Query, parse_query


class TestRecommendations:
    def test_update_queries_stay_native(self, eq_query, statistics):
        rec = recommend_processing_mode(eq_query, statistics, read_only=False)
        assert rec.mode is ProcessingMode.NATIVE
        assert any("update" in r for r in rec.rationale)

    def test_latency_sensitive_stays_native(self, eq_query, statistics):
        rec = recommend_processing_mode(
            eq_query, statistics, latency_sensitive=True
        )
        assert rec.mode is ProcessingMode.NATIVE

    def test_accurately_estimable_query_stays_native(self, schema, statistics):
        # Pure PK-FK join + histogram-covered range filter: all <= LOW.
        query = parse_query(
            "select * from lineitem, orders where l_orderkey = o_orderkey "
            "and o_totalprice < 100000",
            schema,
        )
        rec = recommend_processing_mode(query, statistics)
        assert rec.mode is ProcessingMode.NATIVE

    def test_no_statistics_means_bouquet(self, eq_query):
        rec = recommend_processing_mode(eq_query, None)
        assert rec.mode is ProcessingMode.BOUQUET

    def test_non_fk_join_means_bouquet(self, schema, statistics):
        query = Query(
            "mn",
            schema,
            ["lineitem", "partsupp"],
            joins=[JoinPredicate("lineitem", "l_suppkey", "partsupp", "ps_suppkey")],
        )
        rec = recommend_processing_mode(query, statistics)
        assert rec.mode is ProcessingMode.BOUQUET

    def test_history_of_errors_escalates(self, schema, statistics):
        query = parse_query(
            "select * from lineitem, orders where l_orderkey = o_orderkey "
            "and o_totalprice < 100000",
            schema,
        )
        log = WorkloadErrorLog()
        pid = query.selections[0].pid
        log.record(pid, estimated=0.001, actual=0.5)
        rec = recommend_processing_mode(query, statistics, error_log=log)
        assert rec.mode is ProcessingMode.BOUQUET

    def test_underestimate_hint_noted(self, eq_query):
        rec = recommend_processing_mode(
            eq_query, None, estimates_known_underestimates=True
        )
        assert rec.mode is ProcessingMode.BOUQUET
        assert any("underestimates" in r for r in rec.rationale)

    def test_describe(self, eq_query):
        rec = recommend_processing_mode(eq_query, None)
        text = rec.describe()
        assert "recommended mode: bouquet" in text
        assert "-" in text
