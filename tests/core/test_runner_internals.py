"""Unit tests for BouquetRunner's internal machinery (§5.1-§5.3)."""

import pytest

from repro.core.runtime import AbstractExecutionService, BouquetRunner


@pytest.fixture(scope="module")
def runner_3d(lab):
    ql = lab.build("3D_DS_Q96")
    qa = ql.space.selectivities_at(ql.space.corner)
    service = AbstractExecutionService(ql.bouquet, qa)
    return ql, BouquetRunner(ql.bouquet, service, mode="optimized")


class TestDominatingPlans:
    def test_origin_dominated_by_everything(self, runner_3d):
        ql, runner = runner_3d
        origin_values = [dim.lo for dim in ql.space.dimensions]
        for contour in ql.bouquet.contours:
            plans = runner._dominating_plans(contour, origin_values)
            assert set(plans) == set(contour.plan_ids)

    def test_corner_prunes_lower_contours(self, runner_3d):
        ql, runner = runner_3d
        corner_values = list(ql.space.selectivities_at(ql.space.corner))
        # Lower contours' frontiers cannot dominate the corner.
        lower = runner._dominating_plans(ql.bouquet.contours[0], corner_values)
        upper = runner._dominating_plans(ql.bouquet.contours[-1], corner_values)
        assert upper  # the final contour always covers the corner
        assert len(lower) <= len(ql.bouquet.contours[0].plan_ids)

    def test_result_sorted_and_unique(self, runner_3d):
        ql, runner = runner_3d
        mid = [
            float((dim.lo * dim.hi) ** 0.5) for dim in ql.space.dimensions
        ]
        for contour in ql.bouquet.contours:
            plans = runner._dominating_plans(contour, mid)
            assert plans == sorted(set(plans))


class TestAxisPlans:
    def test_axis_plans_subset_of_contour(self, runner_3d):
        ql, runner = runner_3d
        origin = [dim.lo for dim in ql.space.dimensions]
        for contour in ql.bouquet.contours:
            candidates = runner._axis_plans(contour, origin, exact=set())
            for cand in candidates:
                assert cand.plan_id in contour.plan_ids
                assert cand.contour_location in contour.locations

    def test_exact_dims_excluded(self, runner_3d):
        ql, runner = runner_3d
        origin = [dim.lo for dim in ql.space.dimensions]
        contour = ql.bouquet.contours[-1]
        all_dims = runner._axis_plans(contour, origin, exact=set())
        fewer = runner._axis_plans(contour, origin, exact={0, 1})
        spanned = {c.dim_index for c in fewer}
        assert 0 not in spanned and 1 not in spanned
        assert len(fewer) <= len(all_dims) or {c.dim_index for c in all_dims} == spanned

    def test_beyond_contour_returns_empty(self, runner_3d):
        ql, runner = runner_3d
        corner_values = list(ql.space.selectivities_at(ql.space.corner))
        # q_run at the very corner prices beyond every non-final contour.
        candidates = runner._axis_plans(ql.bouquet.contours[0], corner_values, set())
        assert candidates == []


class TestSpillFloor:
    def test_floor_increases_with_qrun(self, runner_3d):
        ql, runner = runner_3d
        dims = ql.space.dimensions
        unlearned = frozenset(d.pid for d in dims)
        plan_id = ql.bouquet.plan_ids[0]
        low = runner._spill_floor(plan_id, [d.lo for d in dims], unlearned)
        high = runner._spill_floor(plan_id, [d.hi for d in dims], unlearned)
        assert high >= low

    def test_floor_positive(self, runner_3d):
        ql, runner = runner_3d
        dims = ql.space.dimensions
        unlearned = frozenset(d.pid for d in dims)
        for plan_id in ql.bouquet.plan_ids:
            assert runner._spill_floor(plan_id, [d.lo for d in dims], unlearned) > 0


class TestPickCandidate:
    def test_prefers_deep_error_nodes_within_group(self, runner_3d):
        from repro.core.runtime import AxisPlanCandidate

        ql, runner = runner_3d
        a = AxisPlanCandidate(0, 1, (0, 0, 0), cost_at_qrun=100.0, error_depth=1)
        b = AxisPlanCandidate(1, 2, (0, 0, 0), cost_at_qrun=105.0, error_depth=3)
        # Same equivalence group (within 20%): the deeper error node wins.
        assert runner._pick_candidate([a, b]) is b

    def test_cost_dominates_across_groups(self, runner_3d):
        from repro.core.runtime import AxisPlanCandidate

        ql, runner = runner_3d
        cheap = AxisPlanCandidate(0, 1, (0, 0, 0), cost_at_qrun=10.0, error_depth=0)
        deep = AxisPlanCandidate(1, 2, (0, 0, 0), cost_at_qrun=100.0, error_depth=5)
        # Not in the cheapest group: depth cannot rescue the expensive one.
        assert runner._pick_candidate([cheap, deep]) is cheap


class TestBudgetInflation:
    def test_model_error_delta_scales_budgets(self, eq_bouquet):
        qa = eq_bouquet.space.selectivities_at((10,))
        service = AbstractExecutionService(eq_bouquet, qa)
        plain = BouquetRunner(eq_bouquet, service, mode="basic")
        inflated = BouquetRunner(
            eq_bouquet, service, mode="basic", model_error_delta=0.4
        )
        for a, b in zip(plain.budgets, inflated.budgets):
            assert b == pytest.approx(1.4 * a)

    def test_negative_delta_rejected(self, eq_bouquet):
        from repro.exceptions import BouquetError

        qa = eq_bouquet.space.selectivities_at((10,))
        service = AbstractExecutionService(eq_bouquet, qa)
        with pytest.raises(BouquetError):
            BouquetRunner(eq_bouquet, service, model_error_delta=-0.1)


class TestPointCostMemo:
    def test_cost_at_values_memoized_per_plan_and_point(self, eq_bouquet):
        qa = eq_bouquet.space.selectivities_at((10,))
        service = AbstractExecutionService(eq_bouquet, qa)
        runner = BouquetRunner(eq_bouquet, service, mode="optimized")
        plan_id = eq_bouquet.contours[0].plan_ids[0]
        values = [dim.lo for dim in eq_bouquet.space.dimensions]
        calls = []
        real = eq_bouquet.cost_cache.cost_at_values

        def counting(pid, vals):
            calls.append((pid, tuple(vals)))
            return real(pid, vals)

        eq_bouquet.cost_cache.cost_at_values = counting
        try:
            first = runner._cost_at_values(plan_id, values)
            second = runner._cost_at_values(plan_id, list(values))
            runner._cost_at_values(plan_id, [v * 2.0 for v in values])
        finally:
            del eq_bouquet.cost_cache.cost_at_values
        assert first == second
        assert len(calls) == 2  # one per distinct (plan, point)

    def test_memo_is_per_runner(self, eq_bouquet):
        qa = eq_bouquet.space.selectivities_at((10,))
        service = AbstractExecutionService(eq_bouquet, qa)
        a = BouquetRunner(eq_bouquet, service, mode="optimized")
        b = BouquetRunner(eq_bouquet, service, mode="optimized")
        plan_id = eq_bouquet.contours[0].plan_ids[0]
        values = [dim.lo for dim in eq_bouquet.space.dimensions]
        a._cost_at_values(plan_id, values)
        assert (plan_id, tuple(values)) in a._point_costs
        assert (plan_id, tuple(values)) not in b._point_costs
