"""Tests for the bouquet run-time driver and the abstract service."""

import numpy as np
import pytest

from repro.core import BouquetRunner, simulate_at
from repro.core.runtime import AbstractExecutionService
from repro.exceptions import BouquetError


class TestAbstractService:
    def test_full_run_completes_iff_cost_fits(self, eq_bouquet):
        qa = eq_bouquet.space.selectivities_at((30,))
        service = AbstractExecutionService(eq_bouquet, qa)
        plan_id = eq_bouquet.plan_ids[0]
        true_cost = service.true_cost(plan_id)
        assert service.run_full(plan_id, true_cost * 1.01).completed
        failed = service.run_full(plan_id, true_cost * 0.5)
        assert not failed.completed
        assert failed.cost_spent == pytest.approx(true_cost * 0.5)

    def test_spilled_learning_is_lower_bound(self, eq_bouquet, eq_query):
        qa = eq_bouquet.space.selectivities_at((40,))
        service = AbstractExecutionService(eq_bouquet, qa)
        pid = eq_bouquet.space.dimensions[0].pid
        plan_id = eq_bouquet.contours[0].plan_ids[0]
        outcome = service.run_spilled(plan_id, eq_bouquet.budgets[0], frozenset((pid,)))
        for learned in outcome.learned:
            assert learned.value <= qa[0] * (1 + 1e-6)

    def test_spilled_exact_with_big_budget(self, eq_bouquet):
        qa = eq_bouquet.space.selectivities_at((20,))
        service = AbstractExecutionService(eq_bouquet, qa)
        pid = eq_bouquet.space.dimensions[0].pid
        plan_id = eq_bouquet.contours[-1].plan_ids[0]
        outcome = service.run_spilled(plan_id, 1e12, frozenset((pid,)))
        assert outcome.completed
        assert outcome.learned and outcome.learned[0].exact
        assert outcome.learned[0].value == pytest.approx(qa[0])

    def test_dimensionality_checked(self, eq_bouquet):
        with pytest.raises(BouquetError):
            AbstractExecutionService(eq_bouquet, (0.1, 0.2))


class TestBasicRunner:
    def test_completes_everywhere(self, eq_bouquet):
        for loc in [(0,), (13,), (37,), (63,)]:
            result = simulate_at(eq_bouquet, loc, mode="basic")
            assert result.completed
            assert result.final_plan_id in eq_bouquet.plan_ids

    def test_total_cost_bounded_by_theorem(self, eq_bouquet, eq_diagram):
        bound = eq_bouquet.mso_bound
        for loc in [(0,), (20,), (45,), (63,)]:
            result = simulate_at(eq_bouquet, loc, mode="basic")
            assert result.total_cost <= bound * eq_diagram.cost_at(loc) * (1 + 1e-6)

    def test_cheap_locations_finish_on_first_contour(self, eq_bouquet):
        result = simulate_at(eq_bouquet, (0,), mode="basic")
        assert result.executions[0].contour_index == 1
        assert result.execution_count <= len(eq_bouquet.contours[0].plan_ids)

    def test_expensive_locations_climb_contours(self, eq_bouquet):
        result = simulate_at(eq_bouquet, eq_bouquet.space.corner, mode="basic")
        contour_indices = {e.contour_index for e in result.executions}
        assert len(contour_indices) == len(eq_bouquet.contours)

    def test_trace_budget_respected(self, eq_bouquet):
        result = simulate_at(eq_bouquet, (50,), mode="basic")
        for record in result.executions:
            assert record.cost_spent <= record.budget * (1 + 1e-9)

    def test_repeatability(self, eq_bouquet):
        """Same qa → identical execution sequence (§1's repeatability)."""
        a = simulate_at(eq_bouquet, (33,), mode="basic")
        b = simulate_at(eq_bouquet, (33,), mode="basic")
        assert [(e.contour_index, e.plan_id) for e in a.executions] == [
            (e.contour_index, e.plan_id) for e in b.executions
        ]
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_invalid_mode_rejected(self, eq_bouquet):
        qa = eq_bouquet.space.selectivities_at((0,))
        service = AbstractExecutionService(eq_bouquet, qa)
        with pytest.raises(BouquetError):
            BouquetRunner(eq_bouquet, service, mode="turbo")


class TestOptimizedRunner:
    def test_completes_everywhere(self, eq_bouquet):
        for loc in [(0,), (13,), (37,), (63,)]:
            result = simulate_at(eq_bouquet, loc, mode="optimized")
            assert result.completed

    def test_not_worse_than_basic_on_average(self, eq_bouquet, eq_diagram):
        locations = [(i,) for i in range(0, 64, 5)]
        basic = np.mean(
            [simulate_at(eq_bouquet, l, "basic").total_cost / eq_diagram.cost_at(l) for l in locations]
        )
        optimized = np.mean(
            [
                simulate_at(eq_bouquet, l, "optimized").total_cost / eq_diagram.cost_at(l)
                for l in locations
            ]
        )
        assert optimized <= basic * 1.05

    def test_spilled_executions_present(self, eq_bouquet):
        result = simulate_at(eq_bouquet, (40,), mode="optimized")
        assert any(e.spilled for e in result.executions)
        # The last execution is the one that answered the query — either
        # a full run or a spill whose resumed plan fit the budget.
        assert result.executions[-1].completed

    def test_contour_charges_respect_rho_accounting(self, eq_bouquet):
        """The 4(1+λ)ρ bound rests on each contour charging at most ρ
        budget-capped executions; spill-to-store keeps every
        (contour, plan) pair down to a single charge."""
        budgets = {c.index: b for c, b in zip(eq_bouquet.contours, eq_bouquet.budgets)}
        for loc in [(0,), (13,), (40,), (63,)]:
            result = simulate_at(eq_bouquet, loc, mode="optimized")
            per_contour = {}
            for e in result.executions:
                per_contour[e.contour_index] = (
                    per_contour.get(e.contour_index, 0.0) + e.cost_spent
                )
            for contour_index, spent in per_contour.items():
                allowance = eq_bouquet.rho * budgets[contour_index]
                assert spent <= allowance * (1 + 1e-9)

    def test_repeatability(self, eq_bouquet):
        a = simulate_at(eq_bouquet, (40,), mode="optimized")
        b = simulate_at(eq_bouquet, (40,), mode="optimized")
        assert [(e.contour_index, e.plan_id, e.spilled) for e in a.executions] == [
            (e.contour_index, e.plan_id, e.spilled) for e in b.executions
        ]


class TestMultiDimensionalRunner:
    @pytest.fixture(scope="class")
    def lab3d(self, lab):
        return lab.build("3D_DS_Q96")

    def test_basic_completes_at_corners_and_center(self, lab3d):
        space = lab3d.space
        locations = [space.origin, space.corner, tuple(s // 2 for s in space.shape)]
        for loc in locations:
            result = simulate_at(lab3d.bouquet, loc, mode="basic")
            assert result.completed

    def test_optimized_completes_and_is_competitive(self, lab3d):
        space = lab3d.space
        for loc in [space.origin, space.corner, (1, 3, 2)]:
            basic = simulate_at(lab3d.bouquet, loc, mode="basic")
            optimized = simulate_at(lab3d.bouquet, loc, mode="optimized")
            assert optimized.completed
            # Optimized may differ per-location but must respect the bound.
            assert optimized.total_cost <= lab3d.bouquet.mso_bound * lab3d.diagram.cost_at(loc) * (1 + 1e-6)

    def test_first_quadrant_invariant(self, lab3d):
        """Learned values never exceed the true location's selectivities
        (the invariant that makes q_run tracking safe, §5.2)."""
        from repro.core.runtime import AbstractExecutionService, BouquetRunner

        space = lab3d.space
        qa_loc = (2, 4, 3)
        qa = space.selectivities_at(qa_loc)
        truth = {dim.pid: value for dim, value in zip(space.dimensions, qa)}
        service = AbstractExecutionService(lab3d.bouquet, qa)
        runner = BouquetRunner(lab3d.bouquet, service, mode="optimized")
        result = runner.run()
        assert result.completed
        for record in result.executions:
            for learned in record.learned:
                assert learned.value <= truth[learned.pid] * (1 + 1e-6)
