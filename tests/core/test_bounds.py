"""Tests for the theoretical bounds (Theorems 1-3, §3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    best_achievable_mso,
    geometric_budgets,
    mso_bound_1d,
    mso_bound_multid,
    mso_bound_with_model_error,
    optimal_ratio,
    worst_case_suboptimality,
)
from repro.exceptions import BouquetError


class TestTheorem1:
    def test_bound_at_doubling(self):
        assert mso_bound_1d(2.0) == pytest.approx(4.0)

    def test_r2_minimizes(self):
        ratio, bound = optimal_ratio()
        assert ratio == 2.0 and bound == 4.0
        for r in (1.2, 1.5, 1.9, 2.1, 3.0, 8.0):
            assert mso_bound_1d(r) >= 4.0

    @given(st.floats(min_value=1.01, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_bound_formula_positive(self, r):
        assert mso_bound_1d(r) >= 4.0 - 1e-9

    def test_invalid_ratio(self):
        with pytest.raises(BouquetError):
            mso_bound_1d(1.0)


class TestTheorem2:
    def test_adversary_on_geometric_budgets(self):
        """For doubling budgets over a wide range, the adversary forces
        sub-optimality approaching (but never exceeding) 4."""
        budgets = geometric_budgets(1.0, 2.0**20, 2.0)
        worst = worst_case_suboptimality(budgets)
        assert 3.9 <= worst <= 4.0 + 1e-9

    def test_greedy_single_budget_is_fine(self):
        assert worst_case_suboptimality([10.0]) == pytest.approx(1.0)

    def test_ratio_sweep_bottoms_out_at_two(self):
        """Empirical Theorem 2: over the geometric family, no ratio beats
        the doubling strategy's worst case."""
        best_r, best_mso = best_achievable_mso(num_steps=20, span=2.0**20)
        assert best_mso >= 3.5
        assert 1.6 <= best_r <= 2.5

    def test_non_increasing_budgets_rejected(self):
        with pytest.raises(BouquetError):
            worst_case_suboptimality([4.0, 2.0])
        with pytest.raises(BouquetError):
            worst_case_suboptimality([-1.0, 2.0])

    @given(
        ratio=st.floats(min_value=1.1, max_value=10.0),
        decades=st.integers(min_value=3, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_adversary_never_exceeds_theorem1_bound(self, ratio, decades):
        budgets = geometric_budgets(1.0, 10.0**decades, ratio)
        if len(budgets) < 2:
            return
        worst = worst_case_suboptimality(budgets)
        assert worst <= mso_bound_1d(ratio) * (1 + 1e-9)


class TestTheorem3:
    def test_multid_bound_scales_with_rho(self):
        assert mso_bound_multid(1) == pytest.approx(4.0)
        assert mso_bound_multid(5) == pytest.approx(20.0)

    def test_anorexic_adjustment(self):
        assert mso_bound_multid(3, lambda_=0.2) == pytest.approx(4 * 1.2 * 3)

    def test_invalid_rho(self):
        with pytest.raises(BouquetError):
            mso_bound_multid(0)


class TestModelError:
    def test_delta_squared_inflation(self):
        assert mso_bound_with_model_error(4.0, 0.4) == pytest.approx(4.0 * 1.96)

    def test_zero_delta_identity(self):
        assert mso_bound_with_model_error(7.0, 0.0) == 7.0

    def test_negative_delta_rejected(self):
        with pytest.raises(BouquetError):
            mso_bound_with_model_error(4.0, -0.1)
