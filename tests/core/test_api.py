"""The repro.api facade: config validation, compile/execute/simulate,
warm-cache behaviour, and the envelope calling convention."""

from __future__ import annotations

import pytest

from repro.api import (
    BouquetConfig,
    Catalog,
    CompiledBouquet,
    DEFAULT_CONFIG,
    compile_bouquet,
    execute,
    simulate,
)
from repro.exceptions import BouquetError, BudgetExceeded
from repro.obs import MemorySink, Tracer
from repro.serve import BouquetArtifactStore

SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture
def catalog(schema, statistics, database):
    return Catalog(schema, statistics=statistics, database=database)


class TestBouquetConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ratio": 1.0},
            {"ratio": 0.5},
            {"lambda_": -0.1},
            {"resolution": 1},
            {"mode": "turbo"},
            {"model_error_delta": -0.2},
            {"cost_model": "oracle"},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(BouquetError):
            BouquetConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.ratio = 3.0

    def test_with_returns_modified_copy(self):
        config = BouquetConfig()
        changed = config.with_(ratio=4.0, mode="basic")
        assert (changed.ratio, changed.mode) == (4.0, "basic")
        assert (config.ratio, config.mode) == (2.0, "optimized")

    def test_dict_roundtrip(self):
        config = BouquetConfig(ratio=3.0, resolution=10, cost_model="commercial")
        assert BouquetConfig.from_dict(config.to_dict()) == config

    def test_default_resolution_scales_with_dimensionality(self):
        config = BouquetConfig()
        assert config.resolution_for(1) > config.resolution_for(3)
        assert config.with_(resolution=9).resolution_for(3) == 9


class TestCompileExecuteSimulate:
    def test_compile_from_sql(self, catalog):
        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        assert compiled.sql == SQL
        assert compiled.space.size == 16
        assert compiled.mso_bound >= 1.0
        assert compiled.bouquet.cardinality >= 1

    def test_execute_and_simulate(self, catalog, database):
        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        real = execute(compiled, database)
        assert real.result_rows is not None and real.result_rows > 0
        sim = simulate(compiled, [0.5])
        assert sim.total_cost > 0
        assert sim.executions

    def test_execute_without_data_refuses(self, catalog):
        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        with pytest.raises(BouquetError):
            execute(compiled, None)

    def test_execute_budget_cap(self, catalog, database):
        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        with pytest.raises(BudgetExceeded):
            execute(compiled, database, budget=1e-3)


class TestArtifactCaching:
    def test_warm_compile_skips_the_optimizer(self, catalog):
        tracer = Tracer(MemorySink())
        store = BouquetArtifactStore()
        config = BouquetConfig(resolution=16)

        def optimized_locations(counters):
            # Scalar calls plus slab locations: the batch engine optimizes
            # whole slabs per DP run instead of bumping optimizer.calls.
            return counters.get("optimizer.calls", 0) + counters.get(
                "optimizer.batched_locations", 0
            )

        cold = compile_bouquet(SQL, catalog, config=config, cache=store, tracer=tracer)
        counters = tracer.snapshot()["counters"]
        cold_calls = optimized_locations(counters)
        assert cold_calls >= 16  # the exhaustive POSP sweep ran
        assert counters["serve.cache.store"] == 1

        warm = compile_bouquet(SQL, catalog, config=config, cache=store, tracer=tracer)
        counters = tracer.snapshot()["counters"]
        assert warm is cold  # the memory tier returns the live artifact
        assert optimized_locations(counters) == cold_calls  # zero new calls
        assert counters["serve.cache.hit_memory"] == 1

    def test_statistics_mutation_misses_the_cache(self, catalog, database):
        store = BouquetArtifactStore()
        config = BouquetConfig(resolution=16)
        cold = compile_bouquet(SQL, catalog, config=config, cache=store)
        assert compile_bouquet(SQL, catalog, config=config, cache=store) is cold

        catalog.statistics = database.build_statistics(sample_size=600, seed=17)
        recompiled = compile_bouquet(SQL, catalog, config=config, cache=store)
        assert recompiled is not cold
        assert len(store) == 2  # old and new world views coexist by key

    def test_explicit_dimensions_bypass_the_cache(self, catalog):
        from repro.ess import ErrorDimension
        from repro.query import parse_query

        store = BouquetArtifactStore()
        config = BouquetConfig(resolution=16)
        query = parse_query(SQL, catalog.schema)
        dims = [ErrorDimension(query.selections[0].pid, 1e-4, 1.0, "x")]
        compile_bouquet(SQL, catalog, config=config, cache=store, dimensions=dims)
        assert len(store) == 0


class TestLegacyArtifacts:
    def test_v1_bouquet_payload_still_loads(self, catalog):
        from repro.core.artifact import bouquet_to_dict

        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(ratio=2.5))
        legacy = bouquet_to_dict(compiled.query, compiled.bouquet)
        restored = CompiledBouquet.from_dict(legacy, catalog, query=SQL)
        assert restored.mso_bound == pytest.approx(compiled.mso_bound)
        assert restored.config.ratio == 2.5

    def test_v1_payload_without_query_is_an_error(self, catalog):
        from repro.core.artifact import bouquet_to_dict

        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        legacy = bouquet_to_dict(compiled.query, compiled.bouquet)
        with pytest.raises(BouquetError):
            CompiledBouquet.from_dict(legacy, catalog)


class TestEnvelopeExecution:
    """execute()/simulate() accept the ServeRequest envelope — the same
    calling convention the serving layer and the HTTP wire use."""

    def test_execute_via_envelope(self, catalog, database):
        from repro.serve import ServeRequest

        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        request = ServeRequest(query=SQL, mode="basic", crossing="sequential")
        via_envelope = execute(compiled, database, request=request)
        via_kwargs = execute(compiled, database, mode="basic")
        assert via_envelope.result_rows == via_kwargs.result_rows
        assert via_envelope.total_cost == pytest.approx(via_kwargs.total_cost)

    def test_simulate_via_envelope(self, catalog):
        from repro.serve import ServeRequest

        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        request = ServeRequest(query=SQL, budget=None, mode="optimized")
        via_envelope = simulate(compiled, [0.5], request=request)
        assert via_envelope.total_cost == pytest.approx(
            simulate(compiled, [0.5], mode="optimized").total_cost
        )

    def test_envelope_budget_cap_applies(self, catalog, database):
        from repro.serve import ServeRequest

        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        with pytest.raises(BudgetExceeded):
            execute(
                compiled, database, request=ServeRequest(query=SQL, budget=1e-3)
            )

    def test_envelope_and_kwargs_conflict(self, catalog, database):
        from repro.serve import ServeRequest

        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        with pytest.raises(BouquetError, match="inside the ServeRequest"):
            execute(
                compiled,
                database,
                request=ServeRequest(query=SQL),
                mode="basic",
            )

    def test_invalid_envelope_rejected(self, catalog, database):
        from repro.serve import ServeRequest

        compiled = compile_bouquet(SQL, catalog, config=BouquetConfig(resolution=16))
        with pytest.raises(BouquetError):
            execute(
                compiled,
                database,
                request=ServeRequest(query=SQL, mode="turbo"),
            )
