"""CompiledBouquet compilation paths and artifact persistence.

Ported from the retired ``BouquetSession``/``CompiledQuery`` suite: the
facade must cover everything the session front door did — compiling
from SQL or parsed queries, explicit dimensions, the all-certain
fallback, execution guards, and the versioned save/load round trip.
"""

import os

import pytest

from repro.api import BouquetConfig, Catalog, CompiledBouquet, compile_bouquet, execute
from repro.exceptions import BouquetError, QueryError
from repro.query import parse_query

EQ_SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture(scope="module")
def catalog(schema, statistics, database):
    return Catalog(schema, statistics=statistics, database=database)


@pytest.fixture(scope="module")
def compiled(catalog):
    return compile_bouquet(EQ_SQL, catalog, config=BouquetConfig(resolution=40))


class TestCompile:
    def test_compiles_from_sql(self, compiled):
        assert compiled.bouquet.cardinality >= 1
        assert compiled.space.dimensionality == 1  # only p_retailprice is fallible
        assert compiled.mso_bound <= 4.8 + 1e-9

    def test_compiles_from_query_object(self, catalog, eq_query):
        other = compile_bouquet(
            eq_query, catalog, config=BouquetConfig(resolution=20)
        )
        assert other.bouquet.contours

    def test_explicit_dimensions_respected(self, catalog, eq_query, eq_space):
        compiled = compile_bouquet(
            eq_query,
            catalog,
            config=BouquetConfig(resolution=16),
            dimensions=list(eq_space.dimensions),
        )
        assert compiled.space.dimensions == eq_space.dimensions

    def test_fallback_when_all_predicates_certain(self, catalog):
        """A pure PK-FK join query cascades to the all-predicates fallback."""
        compiled = compile_bouquet(
            "select * from lineitem, orders where l_orderkey = o_orderkey",
            catalog,
            config=BouquetConfig(resolution=12),
        )
        assert compiled.space.dimensionality == 1

    def test_execute_without_database_raises(self, schema, statistics, eq_query):
        catalog = Catalog(schema, statistics=statistics)  # no database
        compiled = compile_bouquet(
            eq_query, catalog, config=BouquetConfig(resolution=12)
        )
        with pytest.raises(BouquetError):
            execute(compiled, None)


class TestPersistence:
    def test_save_load_roundtrip(self, compiled, catalog, tmp_path):
        path = os.path.join(tmp_path, "bouquet.json")
        compiled.save(path)
        loaded = CompiledBouquet.load(path, catalog, query=EQ_SQL)
        assert loaded.bouquet.cardinality == compiled.bouquet.cardinality
        assert [c.cost for c in loaded.bouquet.contours] == pytest.approx(
            [c.cost for c in compiled.bouquet.contours]
        )

    def test_loaded_bouquet_executes_identically(
        self, compiled, catalog, database, tmp_path
    ):
        path = os.path.join(tmp_path, "bouquet.json")
        compiled.save(path)
        loaded = CompiledBouquet.load(path, catalog, query=EQ_SQL)
        a = execute(compiled, database, mode="basic")
        b = execute(loaded, database, mode="basic")
        assert a.result_rows == b.result_rows
        assert b.total_cost == pytest.approx(a.total_cost, rel=1e-6)

    def test_mismatched_query_rejected(self, compiled, catalog, tmp_path):
        path = os.path.join(tmp_path, "bouquet.json")
        compiled.save(path)
        other = "select * from part where p_size < 10"
        with pytest.raises(QueryError):
            CompiledBouquet.load(path, catalog, query=other)

    def test_bad_format_rejected(self, catalog, tmp_path):
        import json

        path = os.path.join(tmp_path, "bogus.json")
        with open(path, "w") as handle:
            json.dump({"format": "not.a.bouquet"}, handle)
        with pytest.raises(BouquetError):
            CompiledBouquet.load(path, catalog, query=EQ_SQL)


class TestSessionRemoved:
    def test_the_shim_is_gone(self):
        """The deprecation window closed: the serving envelope is the
        only calling convention now."""
        import repro
        import repro.core

        assert not hasattr(repro, "BouquetSession")
        assert not hasattr(repro.core, "CompiledQuery")
        with pytest.raises(ImportError):
            from repro.core.session import BouquetSession  # noqa: F401
