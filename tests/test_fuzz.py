"""Randomized end-to-end harnesses.

Random SPJ queries over the TPC-H schema drive three strong checks:

1. **plan equivalence** — every optimizer-chosen plan returns exactly the
   same rows as a canonical all-hash-join reference plan;
2. **cost agreement** — the engine's charged cost tracks the cost model's
   prediction at the true selectivities;
3. **bouquet soundness** — a bouquet built on a random 1D/2D slice of the
   query's predicates completes at random actual locations within its
   guarantee.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import identify_bouquet, simulate_at
from repro.ess import ErrorDimension, PlanDiagram, SelectivitySpace
from repro.executor import ExecutionEngine
from repro.optimizer import Join, Optimizer, SeqScan, actual_selectivities, cost_plan
from repro.query import JoinPredicate, Query, SelectionPredicate

#: Joinable (child, child_col, parent, parent_col) edges of the TPC-H schema,
#: used to grow random connected join graphs.
EDGES = [
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("nation", "n_regionkey", "region", "r_regionkey"),
]

#: Range-filterable columns with their value domains.
FILTERS = [
    ("part", "p_retailprice", 900.0, 2100.0),
    ("part", "p_size", 1.0, 50.0),
    ("orders", "o_totalprice", 800.0, 500_000.0),
    ("lineitem", "l_quantity", 1.0, 50.0),
    ("customer", "c_acctbal", -999.0, 9999.0),
    ("supplier", "s_acctbal", -999.0, 9999.0),
]


def random_query(schema, rng) -> Query:
    """Grow a random connected join graph plus random range filters."""
    edge_order = rng.permutation(len(EDGES))
    tables = set()
    joins = []
    n_joins = int(rng.integers(1, 5))
    for idx in edge_order:
        child, ccol, parent, pcol = EDGES[idx]
        if not tables or child in tables or parent in tables:
            tables.update((child, parent))
            joins.append(JoinPredicate(child, ccol, parent, pcol))
        if len(joins) >= n_joins:
            break
    selections = []
    for table, column, lo, hi in FILTERS:
        if table in tables and rng.random() < 0.5:
            value = float(lo + rng.random() * (hi - lo))
            op = "<" if rng.random() < 0.5 else ">"
            selections.append(SelectionPredicate(table, column, op, value))
    return Query(
        f"fuzz_{int(rng.integers(1e9))}",
        schema,
        sorted(tables),
        selections=selections,
        joins=joins,
    )


def reference_plan(query: Query):
    """Canonical left-deep all-hash-join plan (the correctness oracle)."""
    remaining = set(query.tables)
    graph = query.join_graph

    def scan(table):
        return SeqScan(table, tuple(s.pid for s in query.selections_on(table)))

    start = sorted(remaining)[0]
    plan = scan(start)
    joined = {start}
    remaining.discard(start)
    while remaining:
        for table in sorted(remaining):
            pids = [j.pid for j in graph.joins_connecting(joined, {table})]
            if pids:
                plan = Join("hash", plan, scan(table), tuple(sorted(pids)))
                joined.add(table)
                remaining.discard(table)
                break
    return plan


@pytest.fixture(scope="module")
def fuzz_env(schema, database, statistics):
    return Optimizer(schema, statistics), ExecutionEngine(database)


class TestRandomQueries:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_optimized_plan_matches_reference_rows(
        self, schema, database, fuzz_env, seed
    ):
        optimizer, engine = fuzz_env
        rng = np.random.default_rng(seed)
        query = random_query(schema, rng)
        truth = actual_selectivities(query, database)
        chosen = optimizer.optimize(query, assignment=truth).plan
        # Two oracles: a canonical all-hash-join plan on the same engine,
        # and the fully independent dict-based reference evaluator.
        expected = engine.execute(query, reference_plan(query)).rows
        assert engine.execute(query, chosen).rows == expected

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_engine_matches_independent_evaluator(
        self, schema, database, fuzz_env, seed
    ):
        from repro.executor.reference import reference_row_count

        optimizer, engine = fuzz_env
        rng = np.random.default_rng(seed)
        query = random_query(schema, rng)
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        assert engine.execute(query, plan).rows == reference_row_count(
            database, query
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_engine_cost_tracks_model(self, schema, database, fuzz_env, seed):
        optimizer, engine = fuzz_env
        rng = np.random.default_rng(seed)
        query = random_query(schema, rng)
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        predicted = cost_plan(plan, schema, engine.cost_model, truth).cost
        spent = engine.execute(query, plan).spent
        # The engine charges the model's formulas, so disagreement comes
        # only from cardinality-model error (independence assumptions vs
        # skewed keys interacting with filters — the paper's §1 regime).
        # Accounting bugs would show up as systematic 10-100x factors;
        # cardinality noise on these small skewed tables stays within a
        # modest band.  (tests/executor/test_engine.py checks the tight
        # rel=0.15 agreement on plans whose cardinalities the model gets
        # right.)
        ratio = spent / predicted
        assert 0.2 <= ratio <= 5.0, (ratio, query.describe())


class TestRandomBouquets:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_bouquet_sound_on_random_slices(self, schema, database, fuzz_env, seed):
        optimizer, _ = fuzz_env
        rng = np.random.default_rng(seed)
        query = random_query(schema, rng)
        truth = actual_selectivities(query, database)
        pids = query.predicate_ids
        n_dims = int(rng.integers(1, min(2, len(pids)) + 1))
        dim_pids = list(rng.choice(pids, size=n_dims, replace=False))
        dims = []
        for pid in dim_pids:
            hi = min(1.0, truth[pid] * 100.0)
            lo = hi / 1e3
            dims.append(ErrorDimension(pid, lo, hi))
        space = SelectivitySpace(query, dims, 12, truth)
        diagram = PlanDiagram.exhaustive(optimizer, space)
        if diagram.cmax / diagram.cmin < 1.05:
            return  # degenerate slice: nothing to discover
        bouquet = identify_bouquet(diagram)
        for _ in range(3):
            location = tuple(int(rng.integers(0, s)) for s in space.shape)
            result = simulate_at(bouquet, location, mode="basic")
            assert result.completed
            assert result.total_cost <= bouquet.mso_bound * diagram.cost_at(
                location
            ) * (1 + 1e-6)
