"""Rebinding compiled bouquets: bit-for-bit equivalence with a fresh
compile across random wlgen instances, and the loud fallback paths."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.api import BouquetConfig, Catalog, compile_bouquet
from repro.drift import bouquets_equal, perturb_statistics
from repro.exceptions import TemplateError
from repro.query import Query, SelectionPredicate
from repro.template import rebind_compiled, template_signature

INDICES = st.integers(min_value=0, max_value=40)
BINDINGS = st.integers(min_value=1, max_value=5)


class TestRebindEquivalence:
    @given(index=INDICES, binding=BINDINGS)
    @settings(max_examples=8, deadline=None)
    def test_rebind_matches_fresh_compile_bit_for_bit(
        self, catalog, templated_generator, small_config, index, binding
    ):
        exemplar = templated_generator.instantiate(7, index, 0).query
        instance = templated_generator.instantiate(7, index, binding).query
        assume(len(exemplar.selections) >= 1)

        compiled = compile_bouquet(exemplar, catalog, config=small_config)
        sig = template_signature(
            exemplar, catalog.schema, catalog.statistics
        )
        outcome = rebind_compiled(compiled, sig, instance, catalog)
        reference = compile_bouquet(instance, catalog, config=small_config)
        assert bouquets_equal(outcome.compiled.bouquet, reference.bouquet) == []

    @given(index=INDICES, binding=BINDINGS)
    @settings(max_examples=6, deadline=None)
    def test_range_only_instances_rebind_without_optimizer_work(
        self, catalog, templated_generator, small_config, index, binding
    ):
        """Constants moving only on error-dimension pids take the
        identity path: zero ESS locations planned."""
        exemplar = templated_generator.instantiate(7, index, 0).query
        instance = templated_generator.instantiate(7, index, binding).query
        assume(len(exemplar.selections) >= 1)

        compiled = compile_bouquet(exemplar, catalog, config=small_config)
        sig = template_signature(exemplar, catalog.schema, catalog.statistics)
        outcome = rebind_compiled(compiled, sig, instance, catalog)
        assert outcome.strategy == "identity"
        assert outcome.planned_locations == 0


@pytest.fixture
def etl_template(schema, statistics, templated_generator, small_config):
    """A template compiled in the ETL regime (statistics, no database):
    the base assignment is *estimated*, so statistics drift genuinely
    moves the rebind's compile inputs."""
    catalog = Catalog(schema, statistics=statistics)
    exemplar = templated_generator.instantiate(7, 0, 0).query
    instance = templated_generator.instantiate(7, 0, 1).query
    compiled = compile_bouquet(exemplar, catalog, config=small_config)
    sig = template_signature(exemplar, schema, statistics)
    return catalog, compiled, sig, instance


class TestFallbackPaths:
    def test_drifted_statistics_force_divergence(
        self, schema, statistics, etl_template
    ):
        """Under drifted statistics the re-costed contours diverge from
        the DP optimum; with zero tolerance the rebind must refuse."""
        _, compiled, sig, instance = etl_template
        drifted = perturb_statistics(
            statistics, "part", "p_partkey", distinct_scale=0.02
        )
        with pytest.raises(TemplateError) as excinfo:
            rebind_compiled(
                compiled,
                sig,
                instance,
                Catalog(schema, statistics=drifted),
                max_probe_divergence=0.0,
                max_suspect_fraction=0.0,
            )
        assert excinfo.value.reason == "divergence"

    def test_tolerated_drift_repairs_through_the_delta_path(
        self, schema, statistics, etl_template
    ):
        """The same drift under default tolerances is *repaired*: the
        delta path re-plans the suspect locations instead of bailing."""
        _, compiled, sig, instance = etl_template
        drifted = perturb_statistics(
            statistics, "part", "p_partkey", distinct_scale=0.02
        )
        outcome = rebind_compiled(
            compiled, sig, instance, Catalog(schema, statistics=drifted)
        )
        assert outcome.strategy == "delta"
        assert 0 < outcome.planned_locations < outcome.total_locations

    def test_non_instance_query_is_rejected(
        self, catalog, schema, templated_generator, small_config
    ):
        exemplar = templated_generator.instantiate(7, 0, 0).query
        compiled = compile_bouquet(exemplar, catalog, config=small_config)
        sig = template_signature(exemplar, catalog.schema, catalog.statistics)
        other = Query(
            "other-shape",
            schema,
            ["part"],
            selections=[SelectionPredicate("part", "p_retailprice", "<", 500.0)],
        )
        with pytest.raises(TemplateError) as excinfo:
            rebind_compiled(compiled, sig, other, catalog)
        assert excinfo.value.reason == "template-mismatch"
