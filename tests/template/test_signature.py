"""Template signatures: constant/name/order invariance and the
slot-for-slot rebinding dictionaries."""

from __future__ import annotations

import pytest

from repro.catalog.schema import Column, ForeignKey, Schema, Table
from repro.query import JoinPredicate, Query, SelectionPredicate
from repro.template import canonical_table_order, template_signature


def _spj(schema, name, price=1000.0, quantity=25.0, reorder=False):
    selections = [
        SelectionPredicate("part", "p_retailprice", "<", price),
        SelectionPredicate("lineitem", "l_quantity", ">", quantity),
    ]
    joins = [
        JoinPredicate("part", "p_partkey", "lineitem", "l_partkey"),
        JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ]
    if reorder:
        selections.reverse()
        joins.reverse()
    return Query(
        name,
        schema,
        ["lineitem", "orders", "part"],
        selections=selections,
        joins=joins,
    )


class TestSignatureInvariance:
    def test_constants_do_not_change_the_template(self, schema):
        a = template_signature(_spj(schema, "a", price=900.0, quantity=10.0))
        b = template_signature(_spj(schema, "b", price=1400.0, quantity=40.0))
        assert a.digest == b.digest
        assert a.text == b.text

    def test_query_name_is_not_structure(self, schema):
        a = template_signature(_spj(schema, "alpha"))
        b = template_signature(_spj(schema, "a completely different name"))
        assert a.digest == b.digest

    def test_predicate_order_is_not_structure(self, schema):
        a = template_signature(_spj(schema, "fwd", reorder=False))
        b = template_signature(_spj(schema, "rev", reorder=True))
        assert a.digest == b.digest
        assert a.selection_order == b.selection_order
        assert a.join_order == b.join_order

    def test_operator_changes_the_template(self, schema):
        a = _spj(schema, "lt")
        b = Query(
            "ge",
            schema,
            ["lineitem", "orders", "part"],
            selections=[
                SelectionPredicate("part", "p_retailprice", ">=", 1000.0),
                SelectionPredicate("lineitem", "l_quantity", ">", 25.0),
            ],
            joins=list(a.joins),
        )
        assert template_signature(a).digest != template_signature(b).digest

    def test_in_list_length_changes_the_template(self, schema):
        def q(name, values):
            return Query(
                name,
                schema,
                ["part"],
                selections=[SelectionPredicate("part", "p_size", "in", values)],
            )

        two = template_signature(q("two", (1.0, 2.0)))
        four = template_signature(q("four", (1.0, 2.0, 3.0, 4.0)))
        other_two = template_signature(q("other", (7.0, 9.0)))
        assert two.digest != four.digest
        assert two.digest == other_two.digest

    def test_different_join_shape_differs(self, schema):
        chain = _spj(schema, "chain")
        two_table = Query(
            "pair",
            schema,
            ["lineitem", "orders"],
            selections=[SelectionPredicate("lineitem", "l_quantity", ">", 25.0)],
            joins=[JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey")],
        )
        assert (
            template_signature(chain).digest != template_signature(two_table).digest
        )


def _twin_world():
    """Two structurally identical fact tables over one dimension."""
    cols = [
        Column("k", "int"),
        Column("f", "int", distinct=100),
        Column("v", "float"),
    ]
    alpha = Table("alpha", cols, 1000, primary_key="k")
    beta = Table("beta", cols, 1000, primary_key="k")
    dim = Table(
        "dim", [Column("k", "int"), Column("x", "float")], 100, primary_key="k"
    )
    schema = Schema(
        "twins",
        [alpha, beta, dim],
        foreign_keys=[
            ForeignKey("alpha", "f", "dim", "k"),
            ForeignKey("beta", "f", "dim", "k"),
        ],
    )

    def q(name, fact):
        return Query(
            name,
            schema,
            [fact, "dim"],
            selections=[SelectionPredicate(fact, "v", "<", 3.0)],
            joins=[JoinPredicate(fact, "f", "dim", "k")],
        )

    return q("on_alpha", "alpha"), q("on_beta", "beta")


class TestRenamingInvariance:
    def test_twin_relations_share_a_template(self):
        qa, qb = _twin_world()
        sa, sb = template_signature(qa), template_signature(qb)
        assert sa.digest == sb.digest
        assert sa.table_map_to(sb) == {"alpha": "beta", "dim": "dim"}

    def test_twin_canonical_order_agrees_on_slots(self):
        qa, qb = _twin_world()
        order_a = canonical_table_order(qa)
        order_b = canonical_table_order(qb)
        assert order_a.index("dim") == order_b.index("dim")


class TestRebindingDictionaries:
    def test_pid_map_pairs_slots(self, schema):
        a = template_signature(_spj(schema, "a", price=900.0))
        b = template_signature(_spj(schema, "b", price=1400.0))
        pid_map = a.pid_map_to(b)
        assert set(pid_map.keys()) == set(a.predicate_order)
        # The price predicate of one instance maps onto the price
        # predicate of the other, never onto the quantity one.
        for old, new in pid_map.items():
            if "p_retailprice" in old:
                assert "p_retailprice" in new
            if "l_quantity" in old:
                assert "l_quantity" in new
            if old.startswith("join:"):
                assert old == new  # joins carry no constants

    def test_maps_refuse_cross_template_use(self, schema):
        a = template_signature(_spj(schema, "a"))
        other = template_signature(
            Query(
                "single",
                schema,
                ["part"],
                selections=[SelectionPredicate("part", "p_retailprice", "<", 10.0)],
            )
        )
        with pytest.raises(ValueError):
            a.pid_map_to(other)
        with pytest.raises(ValueError):
            a.table_map_to(other)


class TestDimensionAwareSignature:
    def test_catalog_folds_dimensions_into_the_key(
        self, schema, statistics
    ):
        bare = template_signature(_spj(schema, "bare"))
        dimensioned = template_signature(_spj(schema, "dim"), schema, statistics)
        assert bare.digest != dimensioned.digest
        assert dimensioned.dimension_pids
        assert "dims=" in dimensioned.text

    def test_instances_share_dimensioned_signature(self, schema, statistics):
        a = template_signature(
            _spj(schema, "a", price=900.0, quantity=10.0), schema, statistics
        )
        b = template_signature(
            _spj(schema, "b", price=1400.0, quantity=40.0), schema, statistics
        )
        assert a.digest == b.digest
