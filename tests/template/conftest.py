"""Template-cache fixtures: a catalog over the shared session world, a
small compile config, and a range-only generator whose instances all
share template signatures with their exemplars."""

from __future__ import annotations

import pytest

from repro.api import BouquetConfig, Catalog
from repro.bench.template import TEMPLATED_WORKLOAD_CONFIG
from repro.wlgen import QueryGenerator


@pytest.fixture(scope="module")
def catalog(schema, statistics, database):
    """Module-scoped (unlike the serve fixtures): template tests only
    read the catalog, and hypothesis @given requires stable fixtures."""
    return Catalog(schema, statistics=statistics, database=database)


@pytest.fixture(scope="module")
def small_config():
    return BouquetConfig(resolution=8)


@pytest.fixture(scope="module")
def templated_generator(schema, database):
    return QueryGenerator(schema, database, TEMPLATED_WORKLOAD_CONFIG)
