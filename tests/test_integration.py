"""End-to-end integration tests reproducing the paper's headline claims
on miniature environments."""

import numpy as np
import pytest

from repro.core import basic_cost_field, simulate_at
from repro.core.simulation import sample_locations
from repro.robustness import (
    bouquet_aso,
    bouquet_mso,
    harm_fraction,
    max_harm,
    robustness_enhancement,
)


class TestEqPipeline:
    """The 1D running example, Figures 2-4."""

    def test_posp_plan_switches_along_dimension(self, eq_diagram):
        """Figure 2: different POSP plans own different selectivity ranges."""
        assert len(eq_diagram.posp_plan_ids) >= 3

    def test_bouquet_mso_within_bound(self, eq_bouquet, eq_diagram):
        field = basic_cost_field(eq_bouquet)
        assert bouquet_mso(field, eq_diagram.costs) <= eq_bouquet.mso_bound * (1 + 1e-6)

    def test_bouquet_beats_native_worst_case(self, eq_bouquet, eq_diagram):
        """Figure 4's headline: BOU's MSO is far below NAT's."""
        from repro.robustness import NativeOptimizerStrategy

        nat = NativeOptimizerStrategy(eq_diagram)
        field = basic_cost_field(eq_bouquet)
        assert bouquet_mso(field, eq_diagram.costs) < nat.mso() / 5

    def test_bouquet_aso_moderate(self, eq_bouquet, eq_diagram):
        """§6.3: average-case sub-optimality stays small (typically < 4)."""
        field = basic_cost_field(eq_bouquet)
        assert bouquet_aso(field, eq_diagram.costs) < 4.0


class TestMultiDimensional:
    @pytest.fixture(scope="class", params=["3D_DS_Q96", "3D_H_Q5"])
    def query_lab(self, lab, request):
        return lab.build(request.param)

    def test_mso_within_bound(self, query_lab):
        field = query_lab.bouquet_cost_field
        assert bouquet_mso(field, query_lab.pic) <= query_lab.bouquet.mso_bound * (
            1 + 1e-6
        )

    def test_bouquet_dominates_nat_mso(self, query_lab):
        field = query_lab.bouquet_cost_field
        assert bouquet_mso(field, query_lab.pic) < query_lab.nat.mso()

    def test_bouquet_cardinality_anorexic(self, query_lab):
        """Figure 18: BOU's plan count is ~10 or fewer."""
        assert query_lab.bouquet.cardinality <= 10

    def test_harm_is_rare(self, query_lab):
        """§6.5: harmful locations are a small fraction of the ESS."""
        field = query_lab.bouquet_cost_field
        frac = harm_fraction(field, query_lab.pic, query_lab.nat.subopt_worst())
        assert frac <= 0.15

    def test_max_harm_bounded(self, query_lab):
        field = query_lab.bouquet_cost_field
        mh = max_harm(field, query_lab.pic, query_lab.nat.subopt_worst())
        assert mh <= query_lab.bouquet.mso_bound - 1

    def test_enhancement_mostly_large(self, query_lab):
        """Figure 16's shape: most locations improve materially."""
        field = query_lab.bouquet_cost_field
        enhancement = robustness_enhancement(
            field, query_lab.pic, query_lab.nat.subopt_worst()
        )
        assert np.median(enhancement) > 1.0

    def test_optimized_mode_samples_complete(self, query_lab):
        for loc in sample_locations(query_lab.space, 5, seed=2):
            assert simulate_at(query_lab.bouquet, loc, "optimized").completed


class TestRepeatability:
    """§1: the execution strategy is repeatable across invocations."""

    def test_same_bouquet_same_traces(self, lab):
        ql = lab.build("3D_DS_Q96")
        loc = tuple(s - 1 for s in ql.space.shape)
        traces = []
        for _ in range(3):
            result = simulate_at(ql.bouquet, loc, "optimized")
            traces.append([(e.contour_index, e.plan_id, e.spilled) for e in result.executions])
        assert traces[0] == traces[1] == traces[2]

    def test_rebuilt_lab_identical_bouquet(self):
        from repro.bench.harness import Lab

        kwargs = dict(
            tpch_scale=0.002,
            tpcds_scale=0.002,
            stats_sample=500,
            resolutions={1: 20},
        )
        a = Lab(**kwargs).build("EQ")
        b = Lab(**kwargs).build("EQ")
        assert a.bouquet.plan_ids == b.bouquet.plan_ids
        assert [c.cost for c in a.bouquet.contours] == pytest.approx(
            [c.cost for c in b.bouquet.contours]
        )
