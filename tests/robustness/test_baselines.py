"""Tests for the NAT and SEER baseline strategies."""

import pytest

from repro.robustness import NativeOptimizerStrategy, SeerStrategy


@pytest.fixture(scope="module")
def nat(eq_diagram):
    return NativeOptimizerStrategy(eq_diagram)


@pytest.fixture(scope="module")
def seer(eq_diagram):
    return SeerStrategy(eq_diagram, lambda_=0.2)


class TestNat:
    def test_correct_estimate_is_optimal(self, nat, eq_diagram):
        for loc in [(0,), (30,), (63,)]:
            assert nat.suboptimality(loc, loc) == pytest.approx(1.0)

    def test_wrong_estimate_suboptimal(self, nat, eq_diagram):
        sub = nat.suboptimality((0,), (63,))
        assert sub >= 1.0
        # The other direction (estimating high, actual low) is the killer.
        sub_reverse = nat.suboptimality((63,), (0,))
        assert max(sub, sub_reverse) > 2.0

    def test_mso_consistent_with_pairwise(self, nat):
        """MSO computed from cost fields equals the max over explicit
        (qe, qa) pairs on a subsample."""
        best = 1.0
        for qe in [(0,), (20,), (40,), (63,)]:
            for qa in [(0,), (20,), (40,), (63,)]:
                best = max(best, nat.suboptimality(qe, qa))
        assert nat.mso() >= best - 1e-9

    def test_subopt_worst_is_pointwise_max(self, nat, eq_diagram):
        worst = nat.subopt_worst()
        assert worst.shape == eq_diagram.space.shape
        assert (worst >= 1.0 - 1e-9).all()

    def test_aso_at_least_one(self, nat):
        assert nat.aso() >= 1.0

    def test_plan_cardinality_is_posp(self, nat, eq_diagram):
        assert nat.plan_cardinality == len(eq_diagram.posp_plan_ids)


class TestSeer:
    def test_replacement_global_safety(self, seer, eq_diagram):
        """A SEER replacement must stay within (1+λ) of the replaced plan
        at EVERY grid location — the defining property."""
        cache = eq_diagram.cache
        for victim, chosen in seer.replacement.items():
            if victim == chosen:
                continue
            victim_costs = cache.cost_array(victim)
            chosen_costs = cache.cost_array(chosen)
            assert (chosen_costs <= 1.2 * victim_costs + 1e-9).all()

    def test_cardinality_not_larger_than_nat(self, seer, nat):
        assert seer.plan_cardinality <= nat.plan_cardinality

    def test_seer_mso_close_to_nat(self, seer, nat):
        """The paper's observation: SEER does not materially improve MSO
        (§6.2) — replacements are safe wrt P_oe, not P_oa."""
        assert seer.mso() >= nat.mso() / 3

    def test_seer_harm_bounded_by_lambda(self, seer, nat, eq_diagram):
        """SEER's per-pair cost can exceed NAT's by at most λ."""
        for qe in [(0,), (25,), (50,)]:
            for qa in [(0,), (25,), (50,)]:
                assert seer.cost(qe, qa) <= 1.2 * nat.cost(qe, qa) + 1e-9

    def test_replacement_chains_collapsed(self, seer):
        for victim, chosen in seer.replacement.items():
            assert seer.replacement.get(chosen, chosen) == chosen
