"""Tests for the robustness metrics (§2)."""

import numpy as np
import pytest

from repro.exceptions import EssError
from repro.robustness.metrics import (
    StrategyProfile,
    aso,
    bouquet_aso,
    bouquet_mso,
    enhancement_histogram,
    harm_fraction,
    max_harm,
    mso,
    robustness_enhancement,
    subopt_worst_field,
)


@pytest.fixture
def toy_profile():
    """Two plans over a 3-point 1D space with known costs."""
    pic = np.array([1.0, 2.0, 4.0])
    fields = {
        1: np.array([1.0, 3.0, 40.0]),  # optimal at q0, bad at q2
        2: np.array([10.0, 2.0, 4.0]),  # bad at q0, optimal later
    }
    occupancy = {1: 1, 2: 2}
    return StrategyProfile(cost_fields=fields, occupancy=occupancy, pic=pic)


class TestSingleStrategyMetrics:
    def test_subopt_worst(self, toy_profile):
        worst = subopt_worst_field(toy_profile)
        assert worst == pytest.approx([10.0, 1.5, 10.0])

    def test_mso(self, toy_profile):
        assert mso(toy_profile) == pytest.approx(10.0)

    def test_aso_weighted_average(self, toy_profile):
        # per qa: (1*c1 + 2*c2) / (3 * pic)
        expected = np.mean(
            [
                (1 * 1.0 + 2 * 10.0) / (3 * 1.0),
                (1 * 3.0 + 2 * 2.0) / (3 * 2.0),
                (1 * 40.0 + 2 * 4.0) / (3 * 4.0),
            ]
        )
        assert aso(toy_profile) == pytest.approx(expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EssError):
            StrategyProfile(
                cost_fields={1: np.ones(3)}, occupancy={1: 1}, pic=np.ones(4)
            )

    def test_empty_profile_rejected(self):
        with pytest.raises(EssError):
            StrategyProfile(cost_fields={}, occupancy={}, pic=np.ones(3))


class TestBouquetMetrics:
    def test_mso_aso(self):
        pic = np.array([1.0, 2.0])
        field = np.array([3.0, 4.0])
        assert bouquet_mso(field, pic) == pytest.approx(3.0)
        assert bouquet_aso(field, pic) == pytest.approx((3.0 + 2.0) / 2)

    def test_max_harm_positive_when_bouquet_worse(self):
        pic = np.array([1.0, 1.0])
        nat_worst = np.array([2.0, 5.0])
        bouquet = np.array([3.0, 4.0])  # worse than NAT's worst at q0
        assert max_harm(bouquet, pic, nat_worst) == pytest.approx(0.5)
        assert harm_fraction(bouquet, pic, nat_worst) == pytest.approx(0.5)

    def test_max_harm_negative_when_dominating(self):
        pic = np.array([1.0])
        assert max_harm(np.array([2.0]), pic, np.array([10.0])) < 0
        assert harm_fraction(np.array([2.0]), pic, np.array([10.0])) == 0.0


class TestEnhancement:
    def test_enhancement_ratio(self):
        pic = np.array([1.0, 1.0])
        nat_worst = np.array([100.0, 4.0])
        bouquet = np.array([2.0, 2.0])
        enhancement = robustness_enhancement(bouquet, pic, nat_worst)
        assert enhancement == pytest.approx([50.0, 2.0])

    def test_histogram_buckets_sum_to_100(self):
        values = np.array([0.5, 5.0, 50.0, 500.0, 5000.0, 50000.0])
        hist = enhancement_histogram(values)
        assert sum(hist.values()) == pytest.approx(100.0)
        assert hist["< 1x"] == pytest.approx(100 / 6)
        assert hist[">= 10000x"] == pytest.approx(100 / 6)
