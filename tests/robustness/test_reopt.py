"""Tests for the ReOpt (mid-query re-optimization) baseline."""

import pytest

from repro.exceptions import EssError
from repro.robustness.reopt import ReoptStrategy


@pytest.fixture(scope="module")
def reopt(eq_space, optimizer):
    return ReoptStrategy(eq_space, optimizer)


def grid_value(space, index):
    return float(space.grids[0][index])


class TestReoptRun:
    def test_correct_estimate_single_step_near_optimal(self, reopt, eq_space, optimizer):
        """With qe == qa the first checkpoint confirms the estimate and the
        chosen plan is optimal; overhead is just the checkpoint re-read."""
        qa = [grid_value(eq_space, 40)]
        run = reopt.run(qa, qa)
        assert run.steps[-1].completed
        truth = eq_space.assignment_for(qa)
        optimal = optimizer.optimize(eq_space.query, assignment=truth).cost
        assert run.total_cost <= 2.5 * optimal

    def test_wrong_estimate_triggers_reoptimization(self, reopt, eq_space):
        qe = [grid_value(eq_space, 0)]
        qa = [grid_value(eq_space, 60)]
        run = reopt.run(qe, qa)
        assert run.steps[-1].completed
        assert run.reoptimizations >= 1
        # The error predicate was observed along the way.
        learned = {pid for step in run.steps for pid in step.learned_pids}
        assert eq_space.dimensions[0].pid in learned

    def test_total_cost_accumulates_checkpoints(self, reopt, eq_space):
        qe = [grid_value(eq_space, 0)]
        qa = [grid_value(eq_space, 60)]
        run = reopt.run(qe, qa)
        assert run.total_cost == pytest.approx(
            sum(step.cost_spent for step in run.steps)
        )

    def test_suboptimality_at_least_one(self, reopt, eq_space):
        sub = reopt.suboptimality(
            [grid_value(eq_space, 10)], [grid_value(eq_space, 50)]
        )
        assert sub >= 1.0

    def test_dimension_arity_checked(self, reopt):
        with pytest.raises(EssError):
            reopt.run([0.1, 0.2], [0.1])
        with pytest.raises(EssError):
            reopt.run([0.1], [0.1, 0.2])


class TestReoptVsBouquet:
    def test_reopt_unbounded_start_bouquet_bounded(
        self, reopt, eq_space, eq_bouquet, eq_diagram
    ):
        """The §7 argument: ReOpt's first checkpoint is seeded by the
        (possibly terrible) estimate and carries no cost ceiling, whereas
        every bouquet execution is budget-capped."""
        from repro.core import simulate_at

        qa_index = 55
        qa = [grid_value(eq_space, qa_index)]
        worst_reopt = 0.0
        for qe_index in (0, 20, 40, 63):
            sub = reopt.suboptimality([grid_value(eq_space, qe_index)], qa)
            worst_reopt = max(worst_reopt, sub)
        bouquet_run = simulate_at(eq_bouquet, (qa_index,), mode="basic")
        bouquet_sub = bouquet_run.total_cost / eq_diagram.cost_at((qa_index,))
        assert bouquet_sub <= eq_bouquet.mso_bound * (1 + 1e-6)
        # ReOpt is decent here, but nothing caps it; the bouquet's bound
        # must hold regardless.
        assert worst_reopt >= 1.0
