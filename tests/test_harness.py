"""Tests for the shared Lab harness."""

from repro.bench.harness import DEFAULT_RESOLUTIONS, Lab, shared_lab


class TestLab:
    def test_builds_all_workload_names(self, lab):
        assert set(lab.workload) >= {"EQ", "3D_H_Q5", "5D_DS_Q19", "2D_H_Q8a"}

    def test_build_caches(self, lab):
        a = lab.build("EQ")
        b = lab.build("EQ")
        assert a is b

    def test_custom_resolution_bypasses_cache(self, lab):
        a = lab.build("EQ")
        b = lab.build("EQ", resolution=10)
        assert b is not a
        assert b.space.shape == (10,)
        # The cache still holds the default-resolution lab.
        assert lab.build("EQ") is a

    def test_resolution_for_dimensionality(self, lab):
        assert lab.resolution_for(1) == 40
        assert lab.resolution_for(3) == 7
        assert lab.resolution_for(99) == 5  # fallback

    def test_ds_queries_use_ds_environment(self, lab):
        ql = lab.build("3D_DS_Q96")
        assert ql.workload.query.schema is lab.ds_schema

    def test_h_queries_use_h_environment(self, lab):
        ql = lab.build("EQ")
        assert ql.workload.query.schema is lab.h_schema

    def test_query_lab_accessors(self, lab):
        ql = lab.build("EQ")
        assert ql.name == "EQ"
        assert ql.pic is ql.diagram.costs
        assert ql.bouquet_cost_field.shape == ql.space.shape
        assert ql.seer is ql.seer  # cached

    def test_lambda_and_ratio_propagate(self):
        custom = Lab(
            tpch_scale=0.002,
            tpcds_scale=0.002,
            stats_sample=500,
            lambda_=0.5,
            ratio=4.0,
            resolutions={1: 16},
        )
        ql = custom.build("EQ")
        assert ql.bouquet.lambda_ == 0.5
        assert ql.bouquet.ratio == 4.0


class TestSharedLab:
    def test_singleton(self):
        assert shared_lab() is shared_lab()

    def test_default_resolutions_table(self):
        assert DEFAULT_RESOLUTIONS[1] == 100
        assert DEFAULT_RESOLUTIONS[5] == 7
