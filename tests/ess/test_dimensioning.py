"""Tests for error-dimension identification (§4.1, §8)."""

import pytest

from repro.ess.dimensioning import (
    Uncertainty,
    WorkloadErrorLog,
    classify_predicate,
    eliminate_low_impact_dimensions,
    measure_dimension_impacts,
    select_error_dimensions,
)
from repro.ess.space import ErrorDimension
from repro.exceptions import EssError
from repro.query import JoinPredicate, Query


class TestClassification:
    def test_pk_fk_join_is_certain(self, eq_query, statistics):
        for join in eq_query.joins:
            assert (
                classify_predicate(eq_query, join.pid, statistics)
                is Uncertainty.NONE
            )

    def test_non_fk_join_is_high(self, schema, statistics):
        query = Query(
            "q",
            schema,
            ["lineitem", "partsupp"],
            joins=[JoinPredicate("lineitem", "l_suppkey", "partsupp", "ps_suppkey")],
        )
        assert (
            classify_predicate(query, query.joins[0].pid, statistics)
            is Uncertainty.HIGH
        )

    def test_range_with_histogram_is_low(self, eq_query, statistics):
        pid = eq_query.selections[0].pid
        assert classify_predicate(eq_query, pid, statistics) is Uncertainty.LOW

    def test_no_statistics_is_very_high(self, eq_query):
        pid = eq_query.selections[0].pid
        assert classify_predicate(eq_query, pid, None) is Uncertainty.VERY_HIGH

    def test_select_threshold_filters(self, eq_query, statistics):
        high = select_error_dimensions(eq_query, statistics, Uncertainty.HIGH)
        low = select_error_dimensions(eq_query, statistics, Uncertainty.LOW)
        everything = select_error_dimensions(eq_query, statistics, Uncertainty.NONE)
        assert set(high) <= set(low) <= set(everything)
        assert everything == eq_query.predicate_ids


class TestErrorLog:
    def test_error_factor_symmetric(self):
        log = WorkloadErrorLog()
        log.record("p", estimated=0.01, actual=0.1)
        log.record("q", estimated=0.1, actual=0.01)
        assert log.worst_error("p") == pytest.approx(10.0)
        assert log.worst_error("q") == pytest.approx(10.0)

    def test_error_prone_threshold(self):
        log = WorkloadErrorLog()
        log.record("fine", 0.1, 0.11)
        log.record("bad", 0.001, 0.5)
        assert log.error_prone_pids(factor=2.0) == ["bad"]

    def test_unknown_pid_has_no_error(self):
        assert WorkloadErrorLog().worst_error("ghost") == 1.0

    def test_invalid_threshold(self):
        with pytest.raises(EssError):
            WorkloadErrorLog().error_prone_pids(factor=0.5)


class TestDimensionElimination:
    @pytest.fixture(scope="class")
    def candidates(self, eq_query, eq_space):
        # Real dimension (the selection) plus a join dim with a tiny range
        # whose cost impact is negligible.
        real = eq_space.dimensions[0]
        join_pid = eq_query.joins[0].pid
        narrow = ErrorDimension(join_pid, 9.0e-4, 1.0e-3, "narrow_join")
        return [real, narrow]

    def test_impacts_measured(self, optimizer, eq_query, eq_space, candidates):
        impacts = measure_dimension_impacts(
            optimizer, eq_query, candidates, eq_space.base_assignment
        )
        spans = {imp.dimension.name: imp.cost_span for imp in impacts}
        assert spans["p_retailprice"] > spans["narrow_join"]
        assert spans["narrow_join"] < 1.2

    def test_elimination_drops_low_impact(self, optimizer, eq_query, eq_space, candidates):
        kept, impacts = eliminate_low_impact_dimensions(
            optimizer, eq_query, candidates, eq_space.base_assignment, min_span=1.2
        )
        names = [dim.name for dim in kept]
        assert "p_retailprice" in names
        assert "narrow_join" not in names

    def test_never_eliminates_everything(self, optimizer, eq_query, eq_space, candidates):
        kept, _ = eliminate_low_impact_dimensions(
            optimizer,
            eq_query,
            candidates,
            eq_space.base_assignment,
            min_span=1e9,  # nothing passes
        )
        assert len(kept) == 1  # highest-impact survivor

    def test_validation(self, optimizer, eq_query, eq_space, candidates):
        with pytest.raises(EssError):
            eliminate_low_impact_dimensions(
                optimizer, eq_query, [], eq_space.base_assignment
            )
        with pytest.raises(EssError):
            measure_dimension_impacts(
                optimizer, eq_query, candidates, eq_space.base_assignment, resolution=1
            )
