"""Tests for plan diagrams, PIC properties, and the cost cache."""

import numpy as np
import pytest

from repro.ess import PlanDiagram, coarse_subgrid


class TestExhaustiveDiagram:
    def test_posp_has_multiple_plans(self, eq_diagram):
        assert len(eq_diagram.posp_plan_ids) >= 3

    def test_pic_monotone(self, eq_diagram):
        assert eq_diagram.check_monotone()
        diffs = np.diff(eq_diagram.costs)
        assert (diffs >= -1e-9 * eq_diagram.costs[:-1]).all()

    def test_cmin_cmax_at_corners(self, eq_diagram):
        assert eq_diagram.cmin == eq_diagram.costs.min()
        assert eq_diagram.cmax == eq_diagram.costs.max()
        assert eq_diagram.cmax > eq_diagram.cmin

    def test_occupancy_sums_to_grid(self, eq_diagram):
        assert sum(eq_diagram.occupancy().values()) == eq_diagram.space.size

    def test_plan_optimal_in_own_region(self, eq_diagram):
        """At each location, the diagram's plan is at least as cheap as
        every other POSP plan costed there."""
        cache = eq_diagram.cache
        posp = eq_diagram.posp_plan_ids
        arrays = {p: cache.cost_array(p) for p in posp}
        for loc in list(eq_diagram.space.locations())[::7]:
            own = eq_diagram.plan_at(loc)
            best = min(arrays[p][loc] for p in posp)
            assert arrays[own][loc] == pytest.approx(best, rel=1e-9)


def _exploding_chunk(locations):
    raise RuntimeError("worker crashed")


class TestParallelExhaustive:
    def test_parallel_matches_serial(self, optimizer, eq_space, eq_diagram):
        """§4.2: POSP generation across workers is result-identical —
        the exact same ``plan_ids`` and ``costs`` arrays come back."""
        parallel = PlanDiagram.exhaustive(optimizer, eq_space, workers=2)
        assert np.array_equal(parallel.plan_ids, eq_diagram.plan_ids)
        assert np.allclose(parallel.costs, eq_diagram.costs)
        assert parallel.posp_plan_ids == eq_diagram.posp_plan_ids

    def test_worker_failure_surfaces(self, optimizer, eq_space, monkeypatch):
        """A worker exception propagates through ``imap`` instead of
        stalling the result merge."""
        from repro.ess import diagram as diagram_module

        monkeypatch.setattr(diagram_module, "_optimize_chunk", _exploding_chunk)
        with pytest.raises(Exception):
            PlanDiagram.exhaustive(optimizer, eq_space, workers=2, engine="reference")


class TestCostCache:
    def test_cost_array_matches_pointwise(self, eq_diagram):
        cache = eq_diagram.cache
        plan_id = eq_diagram.posp_plan_ids[0]
        array = cache.cost_array(plan_id)
        assert array[(5,)] == cache.cost(plan_id, (5,))

    def test_cost_at_values_interpolates_grid(self, eq_diagram):
        cache = eq_diagram.cache
        plan_id = eq_diagram.posp_plan_ids[0]
        grid = eq_diagram.space.grids[0]
        at_grid = cache.cost_at_values(plan_id, [float(grid[10])])
        assert at_grid == pytest.approx(cache.cost(plan_id, (10,)))
        between = cache.cost_at_values(
            plan_id, [float(np.sqrt(grid[10] * grid[11]))]
        )
        assert cache.cost(plan_id, (10,)) <= between <= cache.cost(plan_id, (11,))

    def test_arrays_are_cached(self, eq_diagram):
        cache = eq_diagram.cache
        plan_id = eq_diagram.posp_plan_ids[0]
        assert cache.cost_array(plan_id) is cache.cost_array(plan_id)

    def test_invalidate_drops_one_plan(self, eq_diagram):
        cache = eq_diagram.cache
        a, b = eq_diagram.posp_plan_ids[0], eq_diagram.posp_plan_ids[1]
        first_a, first_b = cache.cost_array(a), cache.cost_array(b)
        cache.invalidate(a)
        rebuilt = cache.cost_array(a)
        assert rebuilt is not first_a
        np.testing.assert_array_equal(rebuilt, first_a)
        assert cache.cost_array(b) is first_b
        cache.invalidate()
        assert len(cache) == 0
        assert cache.cost_array(b) is not first_b

    def test_max_plans_evicts_least_recently_used(self, eq_diagram):
        from repro.ess.diagram import PlanCostCache

        base = eq_diagram.cache
        cache = PlanCostCache(
            base.space, base.optimizer, base.registry, max_plans=2
        )
        a, b, c = eq_diagram.posp_plan_ids[:3]
        array_a = cache.cost_array(a)
        cache.cost_array(b)
        cache.cost_array(a)  # refresh a: b is now the LRU entry
        cache.cost_array(c)  # evicts b
        assert len(cache) == 2
        assert cache.cost_array(a) is array_a
        with pytest.raises(Exception):
            PlanCostCache(base.space, base.optimizer, base.registry, max_plans=0)

    def test_concurrent_cost_array_builds_are_safe(self, eq_diagram):
        import threading

        base = eq_diagram.cache
        from repro.ess.diagram import PlanCostCache

        cache = PlanCostCache(base.space, base.optimizer, base.registry)
        plan_ids = list(eq_diagram.posp_plan_ids)
        errors = []

        def worker():
            try:
                for plan_id in plan_ids:
                    cache.cost_array(plan_id)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for plan_id in plan_ids:
            np.testing.assert_array_equal(
                cache.cost_array(plan_id), base.cost_array(plan_id)
            )


class TestCandidateDiagram:
    def test_approximation_close_to_exhaustive(self, optimizer, eq_space, eq_diagram):
        approx = PlanDiagram.from_candidates(
            optimizer, eq_space, coarse_subgrid(eq_space, per_dim=8)
        )
        # The approximate PIC can never be below the true PIC (it argmins
        # over a subset of plans) and should be within the anorexic band.
        assert (approx.costs >= eq_diagram.costs * (1 - 1e-9)).all()
        assert (approx.costs <= eq_diagram.costs * 1.3).all()

    def test_exact_at_seed_locations(self, optimizer, eq_space, eq_diagram):
        seeds = [(0,), (31,), (63,)]
        approx = PlanDiagram.from_candidates(optimizer, eq_space, seeds)
        for seed in seeds:
            assert approx.cost_at(seed) == pytest.approx(eq_diagram.cost_at(seed))


class TestCoarseSubgrid:
    def test_includes_corners(self, eq_space):
        seeds = coarse_subgrid(eq_space, per_dim=4)
        assert (0,) in seeds and (63,) in seeds
        assert len(seeds) == 4


class TestParallelPosp:
    def test_parallel_matches_serial(self, optimizer, eq_space, eq_diagram):
        """§4.2: POSP generation is embarrassingly parallel — the
        multi-process diagram is bit-identical in costs and plan choices
        (overheads dominate at toy scale; correctness is what we test)."""
        import numpy as np

        from repro.optimizer import Optimizer

        fresh = Optimizer(optimizer.schema, optimizer.statistics)
        parallel = PlanDiagram.exhaustive(fresh, eq_space, workers=2)
        assert np.allclose(parallel.costs, eq_diagram.costs)
        for location in [(0,), (20,), (40,), (63,)]:
            serial_sig = eq_diagram.registry.plan(
                eq_diagram.plan_at(location)
            ).signature()
            parallel_sig = parallel.registry.plan(
                parallel.plan_at(location)
            ).signature()
            assert serial_sig == parallel_sig


class TestVectorizedCosting:
    def test_cost_array_matches_pointwise_costing(self, eq_diagram, lab):
        """The single-pass vectorized cost field must equal per-location
        scalar costing exactly (same formulas, elementwise)."""
        import numpy as np

        from repro.optimizer.plans import cost_plan

        for diagram in (eq_diagram, lab.build("3D_DS_Q96").diagram):
            cache = diagram.cache
            plan_id = diagram.posp_plan_ids[-1]
            plan = diagram.registry.plan(plan_id)
            vectorized = cache.cost_array(plan_id)
            space = diagram.space
            sample = list(space.locations())[:: max(1, space.size // 50)]
            for location in sample:
                scalar = cost_plan(
                    plan,
                    cache.optimizer.schema,
                    cache.optimizer.cost_model,
                    space.assignment_at(location),
                ).cost
                assert vectorized[location] == pytest.approx(scalar, rel=1e-12)
