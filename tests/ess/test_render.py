"""Tests for ASCII plan-diagram rendering."""

import pytest

from repro.core.contours import contour_costs
from repro.ess.render import render_1d_profile, render_2d_diagram, render_slice
from repro.exceptions import EssError


class TestRender1d:
    def test_profile_renders_all_plans(self, eq_diagram):
        text = render_1d_profile(eq_diagram)
        assert "legend:" in text
        for plan_id in eq_diagram.posp_plan_ids:
            assert f"P{plan_id}" in text

    def test_curve_is_monotone_upward(self, eq_diagram):
        """The rendered PIC curve must descend (in row index) from left to
        right, since cost grows with selectivity."""
        text = render_1d_profile(eq_diagram, width=32, height=10)
        rows = text.splitlines()[:10]
        first_mark_row = {}
        for r, line in enumerate(rows):
            for c, ch in enumerate(line):
                if ch != " " and c not in first_mark_row:
                    first_mark_row[c] = r
        cols = sorted(first_mark_row)
        marks = [first_mark_row[c] for c in cols]
        # Row indices decrease (curve climbs) as selectivity grows.
        assert all(b <= a for a, b in zip(marks, marks[1:]))

    def test_rejects_wrong_dimensionality(self, lab):
        ql = lab.build("3D_DS_Q96")
        with pytest.raises(EssError):
            render_1d_profile(ql.diagram)


class TestRender2d:
    @pytest.fixture(scope="class")
    def diagram_2d(self, lab):
        return lab.build("2D_H_Q8a").diagram

    def test_shape_matches_grid(self, diagram_2d):
        text = render_2d_diagram(diagram_2d)
        rows, cols = diagram_2d.space.shape
        grid_lines = text.splitlines()[:rows]
        assert len(grid_lines) == rows
        assert all(len(line) == cols for line in grid_lines)

    def test_contour_overlay(self, diagram_2d):
        ics = contour_costs(diagram_2d.cmin, diagram_2d.cmax, 2.0)
        text = render_2d_diagram(diagram_2d, contour_costs=ics)
        assert "*" in text
        assert "isocost contour frontier" in text

    def test_rejects_oversized(self, diagram_2d):
        with pytest.raises(EssError):
            render_2d_diagram(diagram_2d, max_size=4)


class TestRenderSlice:
    def test_3d_slice(self, lab):
        ql = lab.build("3D_DS_Q96")
        text = render_slice(ql.diagram, axes=(0, 1), fixed={2: 2})
        rows = ql.space.shape[0]
        assert len(text.splitlines()[0]) == ql.space.shape[1]
        assert "slice: y=dim0" in text

    def test_bad_axes_rejected(self, lab):
        ql = lab.build("3D_DS_Q96")
        with pytest.raises(EssError):
            render_slice(ql.diagram, axes=(1, 1))
        with pytest.raises(EssError):
            render_slice(ql.diagram, axes=(0, 7))
