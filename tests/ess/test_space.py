"""Unit tests for the ESS grid."""

import numpy as np
import pytest

from repro.ess import ErrorDimension, SelectivitySpace
from repro.exceptions import EssError


class TestErrorDimension:
    def test_valid_range(self):
        dim = ErrorDimension("sel:x", 1e-4, 1.0)
        assert dim.name == "sel:x"

    def test_label_overrides_name(self):
        assert ErrorDimension("sel:x", 0.1, 0.2, "nice").name == "nice"

    @pytest.mark.parametrize("lo,hi", [(0.0, 1.0), (0.5, 0.5), (0.5, 0.1), (0.1, 1.5)])
    def test_invalid_ranges(self, lo, hi):
        with pytest.raises(EssError):
            ErrorDimension("sel:x", lo, hi)


class TestGrid:
    def test_log_spacing(self, eq_space):
        grid = eq_space.grids[0]
        assert grid[0] == pytest.approx(1e-4)
        assert grid[-1] == pytest.approx(1.0)
        ratios = grid[1:] / grid[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_size_and_shape(self, eq_space):
        assert eq_space.shape == (64,)
        assert eq_space.size == 64
        assert eq_space.dimensionality == 1
        assert eq_space.origin == (0,)
        assert eq_space.corner == (63,)

    def test_locations_count(self, eq_space):
        assert sum(1 for _ in eq_space.locations()) == 64

    def test_assignment_at_overrides_dim(self, eq_space, eq_query):
        pid = eq_query.selections[0].pid
        a = eq_space.assignment_at((0,))
        assert a[pid] == pytest.approx(1e-4)
        assert set(a) == set(eq_query.predicate_ids)

    def test_bad_location_rejected(self, eq_space):
        with pytest.raises(EssError):
            eq_space.selectivities_at((64,))
        with pytest.raises(EssError):
            eq_space.selectivities_at((0, 0))

    def test_duplicate_dims_rejected(self, eq_query, eq_space):
        dim = eq_space.dimensions[0]
        with pytest.raises(EssError):
            SelectivitySpace(eq_query, [dim, dim], 4, eq_space.base_assignment)

    def test_resolution_validation(self, eq_query, eq_space):
        dim = eq_space.dimensions[0]
        with pytest.raises(EssError):
            SelectivitySpace(eq_query, [dim], 1, eq_space.base_assignment)
        with pytest.raises(EssError):
            SelectivitySpace(eq_query, [dim], [4, 4], eq_space.base_assignment)


class TestGeometryHelpers:
    def test_snap_ceils(self, eq_space):
        grid = eq_space.grids[0]
        # Snapping a value between grid[3] and grid[4] must go up to 4.
        value = float(np.sqrt(grid[3] * grid[4]))
        assert eq_space.snap([value]) == (4,)
        # Snapping an exact grid point stays there.
        assert eq_space.snap([float(grid[10])]) == (10,)

    def test_snap_clamps_to_top(self, eq_space):
        assert eq_space.snap([2.0]) == (63,)

    def test_nearest_location(self, eq_space):
        grid = eq_space.grids[0]
        assert eq_space.nearest_location([float(grid[7]) * 1.01]) == (7,)

    def test_dominates(self, eq_space):
        assert eq_space.dominates((5,), (3,))
        assert not eq_space.dominates((2,), (3,))

    def test_successors(self, eq_space):
        assert list(eq_space.successors((62,))) == [(63,)]
        assert list(eq_space.successors((63,))) == []

    def test_assignment_for_clamps(self, eq_space, eq_query):
        pid = eq_query.selections[0].pid
        a = eq_space.assignment_for([5.0])
        assert a[pid] == pytest.approx(1.0)
        a = eq_space.assignment_for([1e-9])
        assert a[pid] == pytest.approx(1e-4)
