"""Tests for contour-focused POSP generation (§4.2)."""

import pytest

from repro.core.contours import contour_costs
from repro.ess import contour_focused_posp, diagram_from_band
from repro.exceptions import EssError


@pytest.fixture(scope="module")
def band(optimizer, eq_space, eq_diagram):
    costs = contour_costs(eq_diagram.cmin, eq_diagram.cmax, 2.0)
    return contour_focused_posp(optimizer, eq_space, costs)


class TestContourFocusedPosp:
    def test_cheaper_than_exhaustive(self, band, eq_space):
        assert band.optimizer_calls < eq_space.size

    def test_band_locations_match_exhaustive(self, band, eq_diagram):
        for location, (plan_id, cost) in band.optimized.items():
            assert cost == pytest.approx(eq_diagram.cost_at(location))

    def test_band_covers_contour_neighbourhoods(self, band, eq_diagram):
        """Every contour crossing must be inside the optimized band: for
        each IC cost there is an optimized location within a small cost
        factor of it."""
        costs = contour_costs(eq_diagram.cmin, eq_diagram.cmax, 2.0)
        optimized_costs = sorted(c for _, c in band.optimized.values())
        for ic in costs:
            closest = min(optimized_costs, key=lambda c: abs(c - ic))
            assert closest <= ic * 2.1 and closest >= ic / 2.1

    def test_posp_subset_of_exhaustive(self, band, eq_diagram):
        assert set(band.posp_plan_ids) <= set(eq_diagram.posp_plan_ids)

    def test_requires_contours(self, optimizer, eq_space):
        with pytest.raises(EssError):
            contour_focused_posp(optimizer, eq_space, [])


class _TinySpace:
    """Minimal 1-D stand-in for SelectivitySpace: 9 grid points whose
    ``assignment_at`` is the location itself, so a fake optimizer can key
    costs directly off it."""

    size = 9
    origin = (0,)
    corner = (8,)
    query = None

    def assignment_at(self, location):
        return location


class _TieBreakOptimizer:
    """PCM holds (costs are non-decreasing up to float noise), but the
    low corner lands on a plan a whisker *above* the high corner — the
    inverted interval that used to prune the whole box."""

    def __init__(self):
        from repro.obs import NULL_TRACER

        self.tracer = NULL_TRACER
        self.calls = []

    def optimize(self, query, assignment=None):
        from types import SimpleNamespace

        self.calls.append(assignment)
        cost = 100.0 + 1e-6 if assignment == (0,) else 100.0
        return SimpleNamespace(plan_id=1, cost=cost, plan=None)


class TestInvertedCornerRegression:
    def test_inverted_corner_interval_is_not_pruned(self):
        """A contour between the (inverted) corner costs must survive:
        ordering the pair with min/max keeps the containment test sound
        when tie-breaking flips cost_lo above cost_hi."""
        optimizer = _TieBreakOptimizer()
        band = contour_focused_posp(
            optimizer, _TinySpace(), [100.0 + 5e-7]
        )
        # The contour band around location 0 is explored, not swallowed.
        assert (1,) in band.optimized
        assert {(0,), (1,), (2,)} <= set(band.optimized)
        # The flat half of the space away from the contour is still pruned.
        assert band.pruned_boxes == 2

    def test_flat_space_prunes_everything_but_corners(self):
        """Control: with no contour inside the corner interval the root
        box is pruned after costing just the two diagonal corners."""
        optimizer = _TieBreakOptimizer()
        band = contour_focused_posp(optimizer, _TinySpace(), [250.0])
        assert set(band.optimized) == {(0,), (8,)}
        assert band.optimizer_calls == 2
        assert band.pruned_boxes == 1


class TestDiagramFromBand:
    def test_densified_diagram_close_to_exhaustive(
        self, optimizer, eq_space, band, eq_diagram
    ):
        approx = diagram_from_band(optimizer, eq_space, band)
        assert (approx.costs >= eq_diagram.costs * (1 - 1e-9)).all()
        # Within a modest factor of the true PIC everywhere.
        assert (approx.costs <= eq_diagram.costs * 1.5).all()

    def test_band_locations_authoritative(self, optimizer, eq_space, band, eq_diagram):
        approx = diagram_from_band(optimizer, eq_space, band)
        for location, (plan_id, cost) in band.optimized.items():
            assert approx.plan_at(location) == plan_id
            assert approx.cost_at(location) == pytest.approx(cost)
