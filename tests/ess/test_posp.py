"""Tests for contour-focused POSP generation (§4.2)."""

import pytest

from repro.core.contours import contour_costs
from repro.ess import contour_focused_posp, diagram_from_band
from repro.exceptions import EssError


@pytest.fixture(scope="module")
def band(optimizer, eq_space, eq_diagram):
    costs = contour_costs(eq_diagram.cmin, eq_diagram.cmax, 2.0)
    return contour_focused_posp(optimizer, eq_space, costs)


class TestContourFocusedPosp:
    def test_cheaper_than_exhaustive(self, band, eq_space):
        assert band.optimizer_calls < eq_space.size

    def test_band_locations_match_exhaustive(self, band, eq_diagram):
        for location, (plan_id, cost) in band.optimized.items():
            assert cost == pytest.approx(eq_diagram.cost_at(location))

    def test_band_covers_contour_neighbourhoods(self, band, eq_diagram):
        """Every contour crossing must be inside the optimized band: for
        each IC cost there is an optimized location within a small cost
        factor of it."""
        costs = contour_costs(eq_diagram.cmin, eq_diagram.cmax, 2.0)
        optimized_costs = sorted(c for _, c in band.optimized.values())
        for ic in costs:
            closest = min(optimized_costs, key=lambda c: abs(c - ic))
            assert closest <= ic * 2.1 and closest >= ic / 2.1

    def test_posp_subset_of_exhaustive(self, band, eq_diagram):
        assert set(band.posp_plan_ids) <= set(eq_diagram.posp_plan_ids)

    def test_requires_contours(self, optimizer, eq_space):
        with pytest.raises(EssError):
            contour_focused_posp(optimizer, eq_space, [])


class TestDiagramFromBand:
    def test_densified_diagram_close_to_exhaustive(
        self, optimizer, eq_space, band, eq_diagram
    ):
        approx = diagram_from_band(optimizer, eq_space, band)
        assert (approx.costs >= eq_diagram.costs * (1 - 1e-9)).all()
        # Within a modest factor of the true PIC everywhere.
        assert (approx.costs <= eq_diagram.costs * 1.5).all()

    def test_band_locations_authoritative(self, optimizer, eq_space, band, eq_diagram):
        approx = diagram_from_band(optimizer, eq_space, band)
        for location, (plan_id, cost) in band.optimized.items():
            assert approx.plan_at(location) == plan_id
            assert approx.cost_at(location) == pytest.approx(cost)
