"""Tests for anorexic plan-diagram reduction."""

import pytest

from repro.ess import anorexic_reduce, reduced_diagram
from repro.exceptions import EssError


class TestAnorexicReduce:
    def test_reduces_cardinality(self, eq_diagram):
        reduction = anorexic_reduce(eq_diagram, lambda_=0.2)
        assert reduction.cardinality <= len(eq_diagram.posp_plan_ids)
        assert reduction.cardinality >= 1

    def test_lambda_guarantee_holds(self, eq_diagram):
        """Every replaced location's new plan stays within (1+λ) of
        optimal — the defining anorexic property."""
        lambda_ = 0.2
        reduction = anorexic_reduce(eq_diagram, lambda_=lambda_)
        cache = eq_diagram.cache
        for location, plan_id in reduction.assignment.items():
            optimal = eq_diagram.cost_at(location)
            actual = cache.cost(plan_id, location)
            assert actual <= (1 + lambda_) * optimal * (1 + 1e-9)

    def test_zero_lambda_keeps_optimal_plans(self, eq_diagram):
        reduction = anorexic_reduce(eq_diagram, lambda_=0.0)
        cache = eq_diagram.cache
        for location, plan_id in reduction.assignment.items():
            assert cache.cost(plan_id, location) == pytest.approx(
                eq_diagram.cost_at(location), rel=1e-9
            )

    def test_larger_lambda_never_increases_cardinality(self, eq_diagram):
        small = anorexic_reduce(eq_diagram, lambda_=0.05).cardinality
        large = anorexic_reduce(eq_diagram, lambda_=0.5).cardinality
        assert large <= small

    def test_negative_lambda_rejected(self, eq_diagram):
        with pytest.raises(EssError):
            anorexic_reduce(eq_diagram, lambda_=-0.1)

    def test_subset_of_locations(self, eq_diagram):
        locations = [(0,), (10,), (20,)]
        reduction = anorexic_reduce(eq_diagram, locations, lambda_=0.2)
        assert set(reduction.assignment) == set(locations)

    def test_empty_locations_rejected(self, eq_diagram):
        with pytest.raises(EssError):
            anorexic_reduce(eq_diagram, [], lambda_=0.2)


class TestReducedDiagram:
    def test_costs_preserved_plans_replaced(self, eq_diagram):
        new, reduction = reduced_diagram(eq_diagram, lambda_=0.2)
        assert (new.costs == eq_diagram.costs).all()
        assert set(new.posp_plan_ids) == set(reduction.plan_ids)
        assert len(new.posp_plan_ids) <= len(eq_diagram.posp_plan_ids)
