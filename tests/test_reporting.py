"""Tests for the benchmark reporting helpers."""

from repro.bench.reporting import format_series, format_table, log_bar


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1.5), ("b", 123456.0)],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        # All rows aligned to the same width.
        assert len(lines[3]) <= len(lines[1]) + 2

    def test_float_formatting(self):
        text = format_table(["x"], [(0.0001,), (1234567.0,), (3.14159,), (250.0,)])
        assert "1.00e-04" in text
        assert "1.23e+06" in text
        assert "3.14" in text
        assert "250" in text

    def test_zero(self):
        assert "0" in format_table(["x"], [(0.0,)])

    def test_no_title(self):
        text = format_table(["a"], [(1,)])
        assert text.splitlines()[0].startswith("a")


class TestSeriesAndBars:
    def test_series_pairs_columns(self):
        text = format_series([1, 2], [10.0, 20.0], "x", "y")
        assert "x" in text and "y" in text
        assert "10" in text and "20" in text

    def test_log_bar_monotone(self):
        assert len(log_bar(10.0)) <= len(log_bar(1000.0))
        assert log_bar(0.0) == ""
        assert set(log_bar(5.0)) == {"#"}

    def test_log_bar_capped(self):
        assert len(log_bar(1e100, width=40)) == 40
