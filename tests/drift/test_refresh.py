"""The delta refresh engine: identity rebinding, suspect re-planning,
and bit-for-bit equivalence against from-scratch rebuilds."""

from __future__ import annotations

import pytest

from repro.core.bouquet import identify_bouquet
from repro.core.maintenance import refresh_bouquet
from repro.drift import (
    bouquets_equal,
    delta_refresh,
    moved_base_pids,
    perturb_statistics,
)
from repro.ess.diagram import PlanDiagram
from repro.ess.space import ErrorDimension, SelectivitySpace
from repro.exceptions import BouquetError, DriftError
from repro.optimizer.cost_model import POSTGRES_COST_MODEL
from repro.optimizer.optimizer import Optimizer
from repro.query.predicates import JoinPredicate, SelectionPredicate
from repro.query.query import Query

RESOLUTION = 12
LAMBDA = 0.2
RATIO = 2.0


@pytest.fixture(scope="module")
def drift_query(schema):
    """EQ with a 2D error space: the selection plus the orders join."""
    return Query(
        "EQ_drift",
        schema,
        ["lineitem", "orders", "part"],
        selections=[SelectionPredicate("part", "p_retailprice", "<", 1000.0)],
        joins=[
            JoinPredicate("part", "p_partkey", "lineitem", "l_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )


@pytest.fixture(scope="module")
def drift_dims(drift_query):
    join_pid = [j for j in drift_query.joins if "o_orderkey" in j.pid][0].pid
    return [
        ErrorDimension(drift_query.selections[0].pid, 1e-4, 1.0, "sel"),
        ErrorDimension(join_pid, 1e-7, 1e-3, "join"),
    ]


@pytest.fixture(scope="module")
def old_world(schema, statistics, drift_query, drift_dims):
    """The pre-drift bouquet, ETL-style (estimated base assignment)."""
    optimizer = Optimizer(schema, statistics, POSTGRES_COST_MODEL)
    base = optimizer.estimated_assignment(drift_query)
    space = SelectivitySpace(drift_query, drift_dims, RESOLUTION, base)
    diagram = PlanDiagram.exhaustive(optimizer, space, engine="batch")
    return identify_bouquet(diagram, lambda_=LAMBDA, ratio=RATIO)


def _refresh_and_reference(schema, drifted, old_bouquet, query, dims):
    optimizer = Optimizer(schema, drifted, POSTGRES_COST_MODEL)
    base = optimizer.estimated_assignment(query)
    space = SelectivitySpace(query, dims, RESOLUTION, base)
    result = delta_refresh(
        old_bouquet, optimizer, space, lambda_=LAMBDA, ratio=RATIO
    )
    ref_optimizer = Optimizer(schema, drifted, POSTGRES_COST_MODEL)
    ref_space = SelectivitySpace(query, dims, RESOLUTION, base)
    ref_diagram = PlanDiagram.exhaustive(ref_optimizer, ref_space, engine="batch")
    reference = identify_bouquet(ref_diagram, lambda_=LAMBDA, ratio=RATIO)
    return result, reference


# One perturbation per estimator pathway: dimension-pid drift and drift
# outside the query collapse to the identity patch; distinct-count drift
# on a join column moves the base and takes the delta path.
PERTURBATIONS = [
    ("sel-dim-value", ("part", "p_retailprice"), dict(scale=1.2), "identity"),
    ("foreign-table", ("customer", None), dict(scale=1.3), "identity"),
    ("row-count-only", ("orders", None), dict(scale=1.0, row_scale=1.5), "identity"),
    ("join-col-value", ("orders", "o_orderkey"), dict(scale=1.4), "identity"),
    ("ndv-grow", ("part", "p_partkey"), dict(scale=1.0, distinct_scale=1.2), "delta"),
    ("ndv-shrink", ("part", "p_partkey"), dict(scale=1.0, distinct_scale=0.8), "delta"),
    ("ndv-lineitem", ("lineitem", "l_partkey"), dict(scale=1.0, distinct_scale=1.3), "delta"),
]


@pytest.mark.parametrize(
    "name,target,knobs,strategy", PERTURBATIONS, ids=[p[0] for p in PERTURBATIONS]
)
def test_delta_refresh_matches_full_rebuild(
    schema, statistics, drift_query, drift_dims, old_world,
    name, target, knobs, strategy,
):
    """Property: for localized drift, the delta refresh is bit-identical
    to a from-scratch rebuild while planning far fewer locations."""
    drifted = perturb_statistics(statistics, target[0], target[1], **knobs)
    result, reference = _refresh_and_reference(
        schema, drifted, old_world, drift_query, drift_dims
    )
    assert result.strategy == strategy
    assert bouquets_equal(result.bouquet, reference) == []
    if strategy == "identity":
        assert result.planned_locations == 0
    else:
        assert 0 < result.planned_locations < result.total_locations
        assert result.planned_fraction < 0.5
    assert "delta refresh" in result.describe()


def test_identity_patch_reuses_contours_and_plans(
    schema, statistics, drift_query, drift_dims, old_world
):
    drifted = perturb_statistics(statistics, "customer", None, scale=1.3)
    optimizer = Optimizer(schema, drifted, POSTGRES_COST_MODEL)
    base = optimizer.estimated_assignment(drift_query)
    space = SelectivitySpace(drift_query, drift_dims, RESOLUTION, base)
    assert moved_base_pids(old_world.space, space) == []
    result = delta_refresh(old_world, optimizer, space)
    assert result.strategy == "identity"
    assert result.planned_locations == 0
    assert result.bouquet.plan_ids == old_world.plan_ids
    assert result.bouquet.budgets == old_world.budgets
    # The rebound bouquet hangs off the *new* space/optimizer.
    assert result.bouquet.space is space


def test_identity_patch_recuts_contours_for_new_knobs(
    schema, statistics, drift_query, drift_dims, old_world
):
    """Changing lambda/ratio re-runs contour identification — still with
    zero optimizer work, since the diagram is unchanged."""
    drifted = perturb_statistics(statistics, "customer", None, scale=1.3)
    optimizer = Optimizer(schema, drifted, POSTGRES_COST_MODEL)
    base = optimizer.estimated_assignment(drift_query)
    space = SelectivitySpace(drift_query, drift_dims, RESOLUTION, base)
    result = delta_refresh(old_world, optimizer, space, ratio=3.0)
    assert result.planned_locations == 0
    assert result.bouquet.ratio == 3.0
    assert len(result.bouquet.contours) != len(old_world.contours)


def test_shape_mismatch_raises_drift_error(
    schema, statistics, drift_query, drift_dims, old_world
):
    optimizer = Optimizer(schema, statistics, POSTGRES_COST_MODEL)
    base = optimizer.estimated_assignment(drift_query)
    smaller = SelectivitySpace(drift_query, drift_dims, RESOLUTION - 2, base)
    with pytest.raises(DriftError):
        delta_refresh(old_world, optimizer, smaller)
    one_dim = SelectivitySpace(drift_query, drift_dims[:1], RESOLUTION, base)
    with pytest.raises(DriftError):
        delta_refresh(old_world, optimizer, one_dim)


def test_refresh_bouquet_routes_to_delta_engine(
    schema, statistics, drift_query, drift_dims, old_world
):
    """core.maintenance picks the delta engine when the ESS shape is
    unchanged, and reports its strategy/accounting."""
    drifted = perturb_statistics(
        statistics, "part", "p_partkey", scale=1.0, distinct_scale=1.2
    )
    optimizer = Optimizer(schema, drifted, POSTGRES_COST_MODEL)
    base = optimizer.estimated_assignment(drift_query)
    space = SelectivitySpace(drift_query, drift_dims, RESOLUTION, base)
    result = refresh_bouquet(old_world, optimizer, space)
    assert result.strategy == "delta"
    assert result.replanned_locations > 0
    assert result.optimizer_calls == result.replanned_locations
    assert result.reused_plan_count > 0

    # Forcing the seed engine still works on the same inputs.
    seeded = refresh_bouquet(old_world, optimizer, space, engine="seed")
    assert seeded.strategy == "seed-merge"

    # Forcing delta on an incompatible space is an error.
    smaller = SelectivitySpace(drift_query, drift_dims, RESOLUTION - 2, base)
    with pytest.raises(BouquetError):
        refresh_bouquet(old_world, optimizer, smaller, engine="delta")


def test_unknown_engine_rejected(
    schema, statistics, drift_query, drift_dims, old_world
):
    optimizer = Optimizer(schema, statistics, POSTGRES_COST_MODEL)
    with pytest.raises(BouquetError):
        refresh_bouquet(
            old_world, optimizer, old_world.space, engine="telepathy"
        )
