"""Statistics deltas: field-level diffing, the estimator mapping, and
the drift injector."""

from __future__ import annotations

import pytest

from repro.drift import perturb_statistics, statistics_delta
from repro.serve import statistics_fingerprint


def test_identical_statistics_give_empty_delta(statistics):
    delta = statistics_delta(statistics, statistics)
    assert delta.is_empty
    assert delta.drifted_tables == []
    assert "empty" in delta.describe()


def test_value_drift_reports_column_but_not_ndv(statistics):
    drifted = perturb_statistics(statistics, "part", "p_retailprice", scale=1.2)
    delta = statistics_delta(statistics, drifted)
    assert delta.drifted_tables == ["part"]
    (entry,) = [t for t in delta.tables if t.table == "part"]
    assert entry.columns == ("p_retailprice",)
    assert entry.ndv_columns == ()  # value drift is invisible to joins
    assert not entry.row_count_changed
    assert "part" in delta.describe()


def test_distinct_drift_marks_ndv_subset(statistics):
    drifted = perturb_statistics(
        statistics, "orders", "o_orderkey", scale=1.0, distinct_scale=1.5
    )
    delta = statistics_delta(statistics, drifted)
    (entry,) = [t for t in delta.tables if t.table == "orders"]
    assert entry.columns == ("o_orderkey",)
    assert entry.ndv_columns == ("o_orderkey",)


def test_row_scale_marks_row_count_only(statistics):
    drifted = perturb_statistics(
        statistics, "orders", None, scale=1.0, row_scale=2.0
    )
    delta = statistics_delta(statistics, drifted)
    (entry,) = [t for t in delta.tables if t.table == "orders"]
    assert entry.row_count_changed
    assert entry.columns == ()


def test_whole_table_perturbation_touches_every_column(statistics):
    drifted = perturb_statistics(statistics, "region", None, scale=1.1)
    delta = statistics_delta(statistics, drifted)
    (entry,) = [t for t in delta.tables if t.table == "region"]
    assert set(entry.columns) == set(statistics.table("region").column_names)


def test_none_side_reports_added_and_removed(statistics):
    added = statistics_delta(None, statistics)
    assert all(t.added for t in added.tables)
    removed = statistics_delta(statistics, None)
    assert all(t.removed for t in removed.tables)
    assert statistics_delta(None, None).is_empty


def test_moved_pids_follow_the_estimator(statistics, eq_query):
    # Selection estimates read every field of their column...
    sel_drift = statistics_delta(
        statistics, perturb_statistics(statistics, "part", "p_retailprice", scale=1.2)
    )
    assert sel_drift.moved_pids(eq_query) == [eq_query.selections[0].pid]

    # ...but a join estimate is 1/max(ndv), so value drift on a join
    # column moves nothing, while distinct drift moves the join.
    join = [j for j in eq_query.joins if "o_orderkey" in j.pid][0]
    value_drift = statistics_delta(
        statistics, perturb_statistics(statistics, "orders", "o_orderkey", scale=1.4)
    )
    assert value_drift.moved_pids(eq_query) == []
    ndv_drift = statistics_delta(
        statistics,
        perturb_statistics(
            statistics, "orders", "o_orderkey", scale=1.0, distinct_scale=1.5
        ),
    )
    assert ndv_drift.moved_pids(eq_query) == [join.pid]

    # Drift on a table the query never touches moves nothing.
    foreign = statistics_delta(
        statistics, perturb_statistics(statistics, "customer", None, scale=1.3)
    )
    assert foreign.moved_pids(eq_query) == []


def test_perturbation_is_a_deep_copy_with_a_new_fingerprint(statistics):
    before = statistics_fingerprint(statistics)
    drifted = perturb_statistics(statistics, "part", "p_retailprice", scale=1.05)
    # The original is untouched (same fingerprint), the copy differs.
    assert statistics_fingerprint(statistics) == before
    assert statistics_fingerprint(drifted) != before
    original = statistics.table("part").column("p_retailprice")
    scaled = drifted.table("part").column("p_retailprice")
    assert scaled.max_value == pytest.approx(original.max_value * 1.05)
    assert original.max_value != scaled.max_value
