"""The runtime seam: sync, asyncio, and simulated clocks/dispatch
behind one interface, plus the registry that names them."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.exceptions import ReproError
from repro.runtime import (
    RUNTIME_NAMES,
    AsyncioRuntime,
    SimulatedRuntime,
    SyncRuntime,
    get_runtime,
    resolved,
)


class TestRegistry:
    def test_canonical_names(self):
        assert RUNTIME_NAMES == ("asyncio", "simulated", "sync")

    @pytest.mark.parametrize("name", RUNTIME_NAMES)
    def test_builds_by_name(self, name):
        runtime = get_runtime(name)
        try:
            assert runtime.name == name
        finally:
            runtime.shutdown()

    def test_kwargs_pass_through(self):
        with get_runtime("asyncio", max_workers=2) as runtime:
            assert runtime.max_workers == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown runtime"):
            get_runtime("twisted")


class TestSyncRuntime:
    def test_clock_is_monotonic(self):
        runtime = SyncRuntime()
        a = runtime.now()
        runtime.sleep(0.005)
        assert runtime.now() >= a + 0.004

    def test_submit_runs_inline(self):
        runtime = SyncRuntime()
        calls = []
        future = runtime.submit(lambda x: calls.append(x) or x * 2, 21)
        assert calls == [21]  # already ran, on this thread
        assert future.done() and future.result() == 42

    def test_submit_captures_exceptions(self):
        def boom():
            raise ValueError("synthetic")

        future = SyncRuntime().submit(boom)
        with pytest.raises(ValueError, match="synthetic"):
            future.result()


class TestSimulatedRuntime:
    def test_virtual_clock_never_moves_on_its_own(self):
        runtime = SimulatedRuntime(start=10.0)
        assert runtime.now() == 10.0
        assert runtime.advance(2.5) == 12.5
        runtime.sleep(0.5)
        assert runtime.now() == 13.0

    def test_clock_cannot_run_backwards(self):
        with pytest.raises(ReproError):
            SimulatedRuntime().advance(-1.0)
        with pytest.raises(ReproError):
            SimulatedRuntime().schedule(-0.1, lambda: None)

    def test_events_fire_in_time_order(self):
        runtime = SimulatedRuntime()
        fired = []
        runtime.schedule(3.0, fired.append, "late")
        runtime.schedule(1.0, fired.append, "early")
        runtime.schedule(2.0, fired.append, "middle")
        assert runtime.pending == 3
        assert runtime.run_until_idle() == 3
        assert fired == ["early", "middle", "late"]
        assert runtime.now() == 3.0  # clock advanced to the last event

    def test_same_tick_is_fifo(self):
        runtime = SimulatedRuntime()
        fired = []
        for tag in ("a", "b", "c"):
            runtime.schedule(1.0, fired.append, tag)
        runtime.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_events_can_schedule_events(self):
        runtime = SimulatedRuntime()
        ticks = []

        def tick(n):
            ticks.append(runtime.now())
            if n > 1:
                runtime.schedule(1.0, tick, n - 1)

        runtime.schedule(1.0, tick, 3)
        runtime.run_until_idle()
        assert ticks == [1.0, 2.0, 3.0]

    def test_runaway_backstop(self):
        runtime = SimulatedRuntime()

        def forever():
            runtime.schedule(1.0, forever)

        runtime.schedule(1.0, forever)
        with pytest.raises(ReproError, match="exceeded"):
            runtime.run_until_idle(max_events=100)

    def test_submit_is_inline_and_instant(self):
        runtime = SimulatedRuntime()
        future = runtime.submit(lambda: runtime.now())
        assert future.result() == 0.0

    def test_submit_captures_exceptions(self):
        def boom():
            raise ValueError("synthetic")

        future = SimulatedRuntime().submit(boom)
        with pytest.raises(ValueError, match="synthetic"):
            future.result()

    def test_determinism_across_instances(self):
        def run():
            runtime = SimulatedRuntime()
            log = []
            for i in range(50):
                runtime.schedule((i * 7919) % 13 * 0.1, log.append, i)
            runtime.run_until_idle()
            return log

        assert run() == run()


class TestAsyncioRuntime:
    def test_needs_a_worker(self):
        with pytest.raises(ReproError):
            AsyncioRuntime(max_workers=0)

    def test_submit_runs_off_thread(self):
        with AsyncioRuntime(max_workers=2) as runtime:
            future = runtime.submit(threading.current_thread)
            worker = future.result()
        assert worker is not threading.main_thread()
        assert worker.name.startswith("bouquet-serve")

    def test_arun_bridges_to_the_pool(self):
        with AsyncioRuntime(max_workers=2) as runtime:

            async def main():
                value = await runtime.arun(lambda a, b: a + b, 40, b=2)
                await runtime.asleep(0)
                return value

            assert asyncio.run(main()) == 42

    def test_arun_keeps_the_loop_responsive(self):
        """A blocking call on the pool must not stall loop callbacks."""
        with AsyncioRuntime(max_workers=2) as runtime:

            async def main():
                heartbeat = []

                async def beat():
                    for _ in range(5):
                        heartbeat.append(runtime.now())
                        await asyncio.sleep(0.005)

                _, beats = await asyncio.gather(
                    runtime.arun(time.sleep, 0.05), beat()
                )
                return heartbeat

            assert len(asyncio.run(main())) == 5

    def test_clock_is_real(self):
        with AsyncioRuntime(max_workers=1) as runtime:
            a = runtime.now()
            runtime.sleep(0.005)
            assert runtime.now() >= a + 0.004


def test_resolved_helper():
    future = resolved("value")
    assert future.done() and future.result() == "value"
