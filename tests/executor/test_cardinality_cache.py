"""Regression: RealExecutionService's cardinality cache must be scoped
to the engine's *current* dataset — cached counts are facts about one
concrete database, and pointing the engine at regenerated data used to
leave stale denominators in the run-time learning path (§5.2)."""

from __future__ import annotations

import pytest

from repro.catalog import tpch_generator_spec
from repro.datagen import Database
from repro.executor import ExecutionEngine, RealExecutionService

SCALE = 0.003


@pytest.fixture(scope="module")
def other_database(schema):
    return Database.generate(schema, tpch_generator_spec(SCALE), seed=8)


def test_cache_survives_while_data_is_unchanged(eq_bouquet, database):
    service = RealExecutionService(eq_bouquet, ExecutionEngine(database))
    cache = service._cardinalities()
    cache["probe"] = 123.0
    assert service._cardinalities() is cache
    assert service._cardinalities()["probe"] == 123.0


def test_cache_cleared_when_engine_points_at_new_data(
    eq_bouquet, database, other_database
):
    service = RealExecutionService(eq_bouquet, ExecutionEngine(database))
    service._cardinalities()["probe"] = 123.0

    service.engine = ExecutionEngine(other_database)
    fresh = service._cardinalities()
    assert "probe" not in fresh

    # And again when swapping back: the fingerprint moved a second time.
    fresh["probe2"] = 5.0
    service.engine = ExecutionEngine(database)
    assert "probe2" not in service._cardinalities()


def test_learning_uses_the_current_database(eq_bouquet, database, other_database):
    """The actual regression: learned selectivities after an engine swap
    must be computed against the new data's cardinalities."""
    pid = eq_bouquet.space.dimensions[0].pid
    plan_id = sorted(eq_bouquet.plan_ids)[0]

    def learned_value(service):
        outcome = service.run_spilled(plan_id, 1e12, frozenset([pid]))
        (learned,) = [item for item in outcome.learned if item.pid == pid]
        return learned.value

    service = RealExecutionService(eq_bouquet, ExecutionEngine(database))
    learned_value(service)  # warms the cache with database's cardinalities

    service.engine = ExecutionEngine(other_database)
    after = learned_value(service)

    expected = learned_value(
        RealExecutionService(eq_bouquet, ExecutionEngine(other_database))
    )
    assert after == pytest.approx(expected)


class TestDatabaseFingerprint:
    def test_stable_and_cached(self, schema):
        db = Database.generate(schema, tpch_generator_spec(SCALE), seed=99)
        fp = db.fingerprint()
        assert fp == db.fingerprint()
        assert db._fingerprint == fp

    def test_different_data_different_fingerprint(self, database, other_database):
        assert database.fingerprint() != other_database.fingerprint()

    def test_in_place_mutation_needs_explicit_invalidation(self, schema):
        db = Database.generate(schema, tpch_generator_spec(SCALE), seed=99)
        fp = db.fingerprint()
        column = next(iter(db.table("part").values()))
        column += 1
        # The cached digest is (documented to be) stale until invalidated.
        assert db.fingerprint() == fp
        db.invalidate_fingerprint()
        assert db.fingerprint() != fp
