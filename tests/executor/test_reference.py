"""Tests for the independent reference evaluator."""

from repro.executor import ExecutionEngine
from repro.executor.reference import (
    reference_group_counts,
    reference_row_count,
)
from repro.optimizer import Optimizer, actual_selectivities
from repro.query import parse_query


class TestReferenceEvaluator:
    def test_single_table_filter(self, database, schema):
        query = parse_query("select * from part where p_size < 10", schema)

        expected = int((database.column("part", "p_size") < 10).sum())
        assert reference_row_count(database, query) == expected

    def test_agrees_with_engine_on_eq(self, database, schema, eq_query):
        optimizer = Optimizer(schema)
        truth = actual_selectivities(eq_query, database)
        plan = optimizer.optimize(eq_query, assignment=truth).plan
        engine_rows = ExecutionEngine(database).execute(eq_query, plan).rows
        assert reference_row_count(database, eq_query) == engine_rows

    def test_group_counts_agree_with_engine(self, database, schema):
        sql = (
            "select count(*) from lineitem, part "
            "where p_partkey = l_partkey and p_retailprice < 1200 "
            "group by p_brand"
        )
        query = parse_query(sql, schema)
        optimizer = Optimizer(schema)
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        result = ExecutionEngine(database).execute(query, plan, collect=True)
        engine_counts = dict(
            zip(
                ((b,) for b in result.result["part.p_brand"].tolist()),
                result.result["count"].tolist(),
            )
        )
        assert reference_group_counts(database, query) == engine_counts

    def test_global_count(self, database, schema):
        query = parse_query("select count(*) from orders", schema)
        counts = reference_group_counts(database, query)
        assert counts == {(): schema.table("orders").row_count}
