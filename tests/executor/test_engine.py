"""Tests for the execution engine: correctness, costs, budgets, spilling."""

import numpy as np
import pytest

from repro.executor import CostPerturbation, ExecutionEngine
from repro.optimizer import (
    IndexLookup,
    IndexScan,
    Join,
    SeqScan,
    actual_selectivities,
    cost_plan,
)


@pytest.fixture(scope="module")
def engine(database):
    return ExecutionEngine(database, batch_size=1024)


@pytest.fixture(scope="module")
def eq_truth(eq_query, database):
    return actual_selectivities(eq_query, database)


@pytest.fixture(scope="module")
def eq_pids(eq_query):
    sel = eq_query.selections[0].pid
    j_lp = next(j for j in eq_query.joins if "part" in j.tables).pid
    j_lo = next(j for j in eq_query.joins if "orders" in j.tables).pid
    return sel, j_lp, j_lo


def brute_force_eq_count(database, threshold=1000.0):
    """Ground truth for EQ via numpy joins."""
    part = database.table("part")
    lineitem = database.table("lineitem")
    cheap = set(part["p_partkey"][part["p_retailprice"] < threshold].tolist())
    mask = np.array([v in cheap for v in lineitem["l_partkey"]])
    # every lineitem's order exists exactly once (FK integrity)
    return int(mask.sum())


class TestCorrectness:
    def test_eq_row_count_matches_brute_force(
        self, engine, eq_query, eq_pids, database
    ):
        sel, j_lp, j_lo = eq_pids
        plan = Join(
            "hash",
            Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
            SeqScan("part", (sel,)),
            (j_lp,),
        )
        result = engine.execute(eq_query, plan)
        assert result.completed
        assert result.rows == brute_force_eq_count(database)

    def test_all_join_algorithms_agree(self, engine, eq_query, eq_pids):
        sel, j_lp, j_lo = eq_pids
        counts = set()
        for algo in ("hash", "merge", "nl"):
            plan = Join(
                algo,
                Join(algo, SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
                SeqScan("part", (sel,)),
                (j_lp,),
            )
            counts.add(engine.execute(eq_query, plan).rows)
        assert len(counts) == 1

    def test_inl_join_agrees(self, engine, eq_query, eq_pids):
        sel, j_lp, j_lo = eq_pids
        hash_plan = Join(
            "hash",
            Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
            SeqScan("part", (sel,)),
            (j_lp,),
        )
        inl_plan = Join(
            "inl",
            Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
            IndexLookup("part", "p_partkey", (sel,)),
            (j_lp,),
        )
        assert (
            engine.execute(eq_query, inl_plan).rows
            == engine.execute(eq_query, hash_plan).rows
        )

    def test_index_scan_agrees_with_seq_scan(self, engine, eq_query, eq_pids):
        sel, j_lp, j_lo = eq_pids
        seq = SeqScan("part", (sel,))
        idx = IndexScan("part", sel)
        assert (
            engine.execute(eq_query, seq).rows == engine.execute(eq_query, idx).rows
        )

    def test_collect_returns_columns(self, engine, eq_query, eq_pids):
        sel, *_ = eq_pids
        result = engine.execute(eq_query, SeqScan("part", (sel,)), collect=True)
        assert result.result is not None
        assert "part.p_retailprice" in result.result
        assert (result.result["part.p_retailprice"] < 1000.0).all()


class TestCostAgreement:
    def test_engine_cost_tracks_optimizer_cost(
        self, engine, optimizer, eq_query, eq_truth, eq_pids
    ):
        """The run-time account must agree with the compile-time cost
        model at the true selectivities (the property that makes contour
        budgets meaningful)."""
        sel, j_lp, j_lo = eq_pids
        plans = [
            Join(
                "hash",
                Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
                SeqScan("part", (sel,)),
                (j_lp,),
            ),
            Join(
                "merge",
                Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
                IndexScan("part", sel),
                (j_lp,),
            ),
        ]
        for plan in plans:
            expected = cost_plan(
                plan, optimizer.schema, engine.cost_model, eq_truth
            ).cost
            got = engine.execute(eq_query, plan).spent
            assert got == pytest.approx(expected, rel=0.15), plan.signature()


class TestBudgets:
    def test_budget_abort_spends_exactly_budget(self, engine, eq_query, eq_pids):
        sel, j_lp, j_lo = eq_pids
        plan = Join(
            "hash",
            Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
            SeqScan("part", (sel,)),
            (j_lp,),
        )
        full = engine.execute(eq_query, plan)
        budget = full.spent / 3
        partial = engine.execute(eq_query, plan, budget=budget)
        assert not partial.completed
        assert partial.spent == pytest.approx(budget)
        assert partial.rows < full.rows

    def test_generous_budget_completes(self, engine, eq_query, eq_pids):
        sel, *_ = eq_pids
        plan = SeqScan("part", (sel,))
        full = engine.execute(eq_query, plan)
        again = engine.execute(eq_query, plan, budget=full.spent * 1.01)
        assert again.completed and again.rows == full.rows


class TestSpilledExecution:
    def test_spill_resumes_after_error_node_resolves(self, engine, eq_query, eq_pids):
        sel, j_lp, j_lo = eq_pids
        plan = Join(
            "hash",
            Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
            SeqScan("part", (sel,)),
            (j_lp,),
        )
        result, node = engine.execute_spilled(eq_query, plan, {sel})
        assert node is not None and sel in node.local_pids
        # Unlimited budget: the stored spill output is replayed and the
        # resumed plan answers the query at exactly the full plan's cost
        # (the spilled subtree is charged once, never re-executed).
        assert result.completed
        assert result.instrumentation.finished(node)
        full = engine.execute(eq_query, plan)
        assert result.rows == full.rows
        assert result.spent == pytest.approx(full.spent)

    def test_spill_tight_budget_learns_without_answering(
        self, engine, eq_query, eq_pids
    ):
        sel, j_lp, j_lo = eq_pids
        plan = Join(
            "hash",
            Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
            SeqScan("part", (sel,)),
            (j_lp,),
        )
        full = engine.execute(eq_query, plan)
        subtree = engine.execute(eq_query, SeqScan("part", (sel,)))
        budget = (subtree.spent + full.spent) / 2
        result, node = engine.execute_spilled(eq_query, plan, {sel}, budget=budget)
        # The spill node resolved (exact learning) but the resumed plan
        # hit the cost horizon: budget fully consumed, query unanswered.
        assert node is not None
        assert not result.completed
        assert result.instrumentation.finished(node)
        assert result.spent == pytest.approx(budget)

    def test_spill_without_error_node_runs_full(self, engine, eq_query, eq_pids):
        sel, *_ = eq_pids
        plan = SeqScan("part", (sel,))
        result, node = engine.execute_spilled(eq_query, plan, {"ghost"})
        assert node is None
        assert result.completed


class TestCostPerturbation:
    def test_factor_within_delta_band(self):
        pert = CostPerturbation(delta=0.4, seed=1)
        node = SeqScan("part")
        factor = pert.factor(node)
        assert 1 / 1.4 <= factor <= 1.4
        assert factor == pert.factor(SeqScan("part"))  # deterministic

    def test_zero_delta_identity(self):
        assert CostPerturbation(0.0).factor(SeqScan("part")) == 1.0

    def test_perturbed_engine_costs_within_band(
        self, database, eq_query, eq_pids, engine
    ):
        sel, *_ = eq_pids
        plan = SeqScan("part", (sel,))
        clean = engine.execute(eq_query, plan).spent
        noisy_engine = ExecutionEngine(
            database, perturbation=CostPerturbation(delta=0.4, seed=5)
        )
        noisy = noisy_engine.execute(eq_query, plan).spent
        assert clean / 1.4 <= noisy <= clean * 1.4
