"""Tests for instrumentation and budget enforcement."""

import pytest

from repro.exceptions import BudgetExceeded
from repro.executor import Instrumentation
from repro.optimizer import SeqScan


@pytest.fixture
def node():
    return SeqScan("part")


class TestCharging:
    def test_accumulates(self, node):
        inst = Instrumentation()
        inst.charge(node, 1.5)
        inst.charge(node, 2.5)
        assert inst.total_cost == pytest.approx(4.0)
        assert inst.counters(node).cost == pytest.approx(4.0)

    def test_negative_rejected(self, node):
        with pytest.raises(ValueError):
            Instrumentation().charge(node, -1.0)

    def test_budget_enforced_exactly(self, node):
        inst = Instrumentation(budget=10.0)
        inst.charge(node, 6.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            inst.charge(node, 6.0)
        # Spend is clipped exactly at the budget boundary.
        assert inst.total_cost == pytest.approx(10.0)
        assert excinfo.value.spent == pytest.approx(10.0)
        assert excinfo.value.instrumentation is inst

    def test_no_budget_never_raises(self, node):
        inst = Instrumentation()
        inst.charge(node, 1e12)
        assert inst.total_cost == 1e12


class TestCounters:
    def test_emit_and_finish(self, node):
        inst = Instrumentation()
        inst.emit(node, 10)
        inst.emit(node, 5)
        assert inst.tuples_out(node) == 15
        assert not inst.finished(node)
        inst.mark_finished(node)
        assert inst.finished(node)

    def test_unseen_node_defaults(self, node):
        inst = Instrumentation()
        assert inst.tuples_out(node) == 0
        assert not inst.finished(node)

    def test_report_mentions_nodes(self, node):
        inst = Instrumentation()
        inst.emit(node, 3)
        assert "SS(part" in inst.report()
