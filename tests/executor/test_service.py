"""Tests for RealExecutionService: the bouquet on top of real execution."""

import pytest

from repro.core import BouquetRunner, simulate_at
from repro.executor import ExecutionEngine, RealExecutionService


@pytest.fixture(scope="module")
def real_service(eq_bouquet, database):
    engine = ExecutionEngine(database, batch_size=1024)
    return RealExecutionService(eq_bouquet, engine)


@pytest.fixture(scope="module")
def eq_actual_result(eq_bouquet, database, eq_query):
    """Ground-truth EQ row count via a plain full execution."""
    engine = ExecutionEngine(database)
    plan = eq_bouquet.registry.plan(eq_bouquet.plan_ids[-1])
    return engine.execute(eq_query, plan).rows


class TestRealBouquetExecution:
    def test_basic_returns_correct_result(self, eq_bouquet, real_service, eq_actual_result):
        runner = BouquetRunner(eq_bouquet, real_service, mode="basic")
        result = runner.run()
        assert result.completed
        assert result.result_rows == eq_actual_result

    def test_optimized_returns_correct_result(
        self, eq_bouquet, real_service, eq_actual_result
    ):
        runner = BouquetRunner(eq_bouquet, real_service, mode="optimized")
        result = runner.run()
        assert result.completed
        assert result.result_rows == eq_actual_result

    def test_real_run_close_to_simulated_run(self, eq_bouquet, real_service, database):
        """Abstract (cost-world) and real executions agree on structure."""
        from repro.optimizer import actual_selectivities

        truth = actual_selectivities(eq_bouquet.space.query, database)
        pid = eq_bouquet.space.dimensions[0].pid
        qa_loc = eq_bouquet.space.nearest_location([truth[pid]])
        simulated = simulate_at(eq_bouquet, qa_loc, mode="basic")
        real = BouquetRunner(eq_bouquet, real_service, mode="basic").run()
        # Same order of magnitude of total effort; identical contour count
        # modulo one step of grid discretization.
        sim_contours = {e.contour_index for e in simulated.executions}
        real_contours = {e.contour_index for e in real.executions}
        assert abs(max(sim_contours) - max(real_contours)) <= 1
        assert real.total_cost == pytest.approx(simulated.total_cost, rel=0.6)


class TestLearning:
    def test_spilled_learning_lower_bounds_truth(
        self, eq_bouquet, real_service, database
    ):
        from repro.optimizer import actual_selectivities

        truth = actual_selectivities(eq_bouquet.space.query, database)
        pid = eq_bouquet.space.dimensions[0].pid
        plan_id = eq_bouquet.contours[0].plan_ids[0]
        outcome = real_service.run_spilled(
            plan_id, eq_bouquet.budgets[0], frozenset((pid,))
        )
        for learned in outcome.learned:
            assert learned.value <= truth[pid] * (1 + 1e-6)

    def test_spilled_learning_exact_with_large_budget(
        self, eq_bouquet, real_service, database
    ):
        from repro.optimizer import actual_selectivities

        truth = actual_selectivities(eq_bouquet.space.query, database)
        pid = eq_bouquet.space.dimensions[0].pid
        plan_id = eq_bouquet.contours[-1].plan_ids[0]
        outcome = real_service.run_spilled(plan_id, 1e12, frozenset((pid,)))
        assert outcome.completed
        assert outcome.learned
        learned = outcome.learned[0]
        assert learned.exact
        assert learned.value == pytest.approx(truth[pid], rel=1e-6)

    def test_history_recorded(self, eq_bouquet, real_service):
        before = len(real_service.history)
        real_service.run_full(eq_bouquet.plan_ids[0], budget=1e9)
        assert len(real_service.history) == before + 1
