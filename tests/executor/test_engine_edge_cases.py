"""Edge-case tests for the execution engine."""

import pytest

from repro.executor import ExecutionEngine
from repro.optimizer import (
    IndexLookup,
    IndexScan,
    Join,
    Optimizer,
    SeqScan,
    actual_selectivities,
)
from repro.query import JoinPredicate, Query, SelectionPredicate, parse_query


@pytest.fixture(scope="module")
def engine(database):
    return ExecutionEngine(database, batch_size=512)


class TestEmptyResults:
    def test_empty_selection(self, engine, schema):
        query = parse_query(
            "select * from part where p_retailprice < 0", schema
        )
        plan = SeqScan("part", (query.selections[0].pid,))
        result = engine.execute(query, plan, collect=True)
        assert result.completed and result.rows == 0
        assert result.result is None  # nothing collected

    def test_join_with_empty_side(self, engine, schema):
        query = Query(
            "empty_join",
            schema,
            ["part", "lineitem"],
            selections=[SelectionPredicate("part", "p_retailprice", "<", 0.0)],
            joins=[JoinPredicate("part", "p_partkey", "lineitem", "l_partkey")],
        )
        sel = query.selections[0].pid
        jp = query.joins[0].pid
        for algo in ("hash", "merge", "nl"):
            plan = Join(algo, SeqScan("lineitem"), SeqScan("part", (sel,)), (jp,))
            result = engine.execute(query, plan)
            assert result.completed and result.rows == 0, algo

    def test_inl_with_empty_outer(self, engine, schema):
        query = Query(
            "empty_inl",
            schema,
            ["part", "lineitem"],
            selections=[SelectionPredicate("part", "p_retailprice", "<", 0.0)],
            joins=[JoinPredicate("part", "p_partkey", "lineitem", "l_partkey")],
        )
        sel = query.selections[0].pid
        jp = query.joins[0].pid
        plan = Join(
            "inl",
            SeqScan("part", (sel,)),
            IndexLookup("lineitem", "l_partkey"),
            (jp,),
        )
        result = engine.execute(query, plan)
        assert result.completed and result.rows == 0


class TestBatchBoundaries:
    @pytest.mark.parametrize("batch_size", [1, 7, 100, 10_000, 1_000_000])
    def test_row_counts_invariant_to_batch_size(self, database, schema, batch_size):
        query = parse_query(
            "select * from lineitem, orders where l_orderkey = o_orderkey "
            "and o_totalprice < 100000",
            schema,
        )
        optimizer = Optimizer(schema)
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        engine = ExecutionEngine(database, batch_size=batch_size)
        reference = ExecutionEngine(database).execute(query, plan).rows
        assert engine.execute(query, plan).rows == reference

    @pytest.mark.parametrize("batch_size", [64, 4096])
    def test_costs_stable_across_batch_sizes(self, database, schema, batch_size):
        query = parse_query("select * from lineitem", schema)
        plan = SeqScan("lineitem")
        spent = ExecutionEngine(database, batch_size=batch_size).execute(query, plan).spent
        reference = ExecutionEngine(database).execute(query, plan).spent
        assert spent == pytest.approx(reference, rel=1e-9)


class TestCompositeJoins:
    def test_two_predicates_same_table_pair(self, engine, database, schema):
        """A composite join keyed on one predicate with the second applied
        as a post-filter must match brute force."""
        query = Query(
            "composite",
            schema,
            ["lineitem", "partsupp"],
            joins=[
                JoinPredicate("lineitem", "l_partkey", "partsupp", "ps_partkey"),
                JoinPredicate("lineitem", "l_suppkey", "partsupp", "ps_suppkey"),
            ],
        )
        pids = tuple(sorted(j.pid for j in query.joins))
        plan = Join("hash", SeqScan("lineitem"), SeqScan("partsupp"), pids)
        result = engine.execute(query, plan)
        left_pk = database.column("lineitem", "l_partkey")
        left_sk = database.column("lineitem", "l_suppkey")
        right_pk = database.column("partsupp", "ps_partkey")
        right_sk = database.column("partsupp", "ps_suppkey")
        pairs = {}
        for pk, sk in zip(right_pk.tolist(), right_sk.tolist()):
            pairs[(pk, sk)] = pairs.get((pk, sk), 0) + 1
        expected = sum(
            pairs.get((pk, sk), 0) for pk, sk in zip(left_pk.tolist(), left_sk.tolist())
        )
        assert result.rows == expected


class TestInstrumentationConsistency:
    def test_total_cost_equals_sum_of_node_costs(self, engine, schema, eq_query):
        sel = eq_query.selections[0].pid
        j_lp = next(j for j in eq_query.joins if "part" in j.tables).pid
        j_lo = next(j for j in eq_query.joins if "orders" in j.tables).pid
        plan = Join(
            "hash",
            Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
            SeqScan("part", (sel,)),
            (j_lp,),
        )
        result = engine.execute(eq_query, plan)
        inst = result.instrumentation
        node_total = sum(c.cost for c in inst._counters.values())
        assert inst.total_cost == pytest.approx(node_total)

    def test_partial_rows_below_full(self, engine, schema, eq_query):
        sel = eq_query.selections[0].pid
        plan = IndexScan("part", sel)
        full = engine.execute(eq_query, plan)
        partial = engine.execute(eq_query, plan, budget=full.spent / 2)
        assert partial.rows <= full.rows
        node_counts = partial.instrumentation.tuples_out(plan)
        assert node_counts == partial.rows


class TestTpcdsExecution:
    def test_star_join_executes(self, lab):
        """The DS star query runs end to end on the DS engine."""
        ql = lab.build("3D_DS_Q96")
        engine = ExecutionEngine(lab.ds_db)
        plan = ql.bouquet.registry.plan(ql.bouquet.plan_ids[-1])
        result = engine.execute(ql.workload.query, plan)
        assert result.completed
        assert result.rows > 0


class TestProjectionPushdown:
    def test_aggregate_queries_prune_columns(self, database, schema):
        """COUNT queries only carry join/predicate/group columns through
        the pipeline; results are unchanged."""
        from repro.executor.engine import needed_columns
        from repro.optimizer import Optimizer, actual_selectivities
        from repro.query import parse_query

        sql = (
            "select count(*) from lineitem, orders, part "
            "where p_partkey = l_partkey and l_orderkey = o_orderkey "
            "and p_retailprice < 1000 group by p_brand"
        )
        query = parse_query(sql, schema)
        needed = needed_columns(query)
        assert "part.p_brand" in needed
        assert "lineitem.l_partkey" in needed
        assert "lineitem.l_shipmode" not in needed  # pruned

        optimizer = Optimizer(schema)
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        engine = ExecutionEngine(database)
        pruned = engine.execute(query, plan, collect=True)
        assert pruned.completed
        assert "count" in pruned.result

    def test_select_star_keeps_all_columns(self, database, schema):
        from repro.executor.engine import needed_columns
        from repro.query import parse_query

        query = parse_query("select * from part where p_size < 10", schema)
        assert needed_columns(query) is None
        engine = ExecutionEngine(database)
        from repro.optimizer import SeqScan

        result = engine.execute(
            query, SeqScan("part", (query.selections[0].pid,)), collect=True
        )
        # Every part column survives to the output.
        for column in schema.table("part").column_names:
            assert f"part.{column}" in result.result
