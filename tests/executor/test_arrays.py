"""Unit + property tests for the vectorized executor helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExecutionError
from repro.executor.arrays import (
    apply_selections,
    batch_length,
    concat,
    join_indices,
    merge_batches,
    qualify,
    selection_mask,
    take,
)
from repro.query import SelectionPredicate


def batch(**cols):
    return {name: np.asarray(values) for name, values in cols.items()}


class TestBasics:
    def test_qualify(self):
        assert qualify("part", "p_size") == "part.p_size"

    def test_batch_length(self):
        assert batch_length({}) == 0
        assert batch_length(batch(**{"t.a": [1, 2, 3]})) == 3

    def test_take_and_concat(self):
        b = batch(**{"t.a": [10, 20, 30]})
        assert list(take(b, np.array([2, 0]))["t.a"]) == [30, 10]
        joined = concat([b, b])
        assert batch_length(joined) == 6

    def test_concat_empty(self):
        assert concat([]) == {}
        b = batch(**{"t.a": []})
        assert batch_length(concat([b])) == 0


class TestSelections:
    def test_mask_ops(self):
        b = batch(**{"t.a": [1.0, 2.0, 3.0]})
        assert list(selection_mask(b, SelectionPredicate("t", "a", "<", 2.5))) == [
            True,
            True,
            False,
        ]
        assert list(selection_mask(b, SelectionPredicate("t", "a", "=", 2.0))) == [
            False,
            True,
            False,
        ]
        assert list(selection_mask(b, SelectionPredicate("t", "a", ">=", 2.0))) == [
            False,
            True,
            True,
        ]

    def test_missing_column_raises(self):
        b = batch(**{"t.a": [1.0]})
        with pytest.raises(ExecutionError):
            selection_mask(b, SelectionPredicate("t", "b", "<", 1.0))

    def test_apply_multiple(self):
        b = batch(**{"t.a": [1.0, 2.0, 3.0], "t.b": [9.0, 5.0, 1.0]})
        out = apply_selections(
            b,
            [
                SelectionPredicate("t", "a", ">", 1.0),
                SelectionPredicate("t", "b", ">", 2.0),
            ],
        )
        assert list(out["t.a"]) == [2.0]


class TestJoinIndices:
    def brute_force(self, probe, build):
        pairs = []
        for i, p in enumerate(probe):
            for j, b in enumerate(build):
                if p == b:
                    pairs.append((i, j))
        return sorted(pairs)

    @given(
        probe=st.lists(st.integers(min_value=0, max_value=8), max_size=30),
        build=st.lists(st.integers(min_value=0, max_value=8), max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, probe, build):
        probe_arr = np.array(probe, dtype=np.int64)
        build_arr = np.array(build, dtype=np.int64)
        order = np.argsort(build_arr, kind="stable")
        p_idx, b_idx = join_indices(probe_arr, build_arr[order], order)
        got = sorted(zip(p_idx.tolist(), b_idx.tolist()))
        assert got == self.brute_force(probe, build)

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        p, b = join_indices(empty, empty, empty)
        assert p.size == 0 and b.size == 0


class TestMergeBatches:
    def test_column_collision_rejected(self):
        left = batch(**{"t.a": [1]})
        right = batch(**{"t.a": [2]})
        with pytest.raises(ExecutionError):
            merge_batches(left, np.array([0]), right, np.array([0]))

    def test_merges_aligned(self):
        left = batch(**{"l.k": [1, 2]})
        right = batch(**{"r.k": [10, 20]})
        out = merge_batches(left, np.array([1, 0]), right, np.array([0, 1]))
        assert list(out["l.k"]) == [2, 1]
        assert list(out["r.k"]) == [10, 20]
