"""Cancellation token semantics and the engine's budget-checkpoint hook."""

import pytest

from repro.exceptions import ExecutionCancelled
from repro.executor import ExecutionEngine
from repro.executor.instrumentation import Instrumentation
from repro.optimizer import SeqScan
from repro.query import parse_query
from repro.sched import CancellationToken


class TestCancellationToken:
    def test_fresh_token_never_stops(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.cost_cap is None
        assert not token.should_stop(0.0)
        assert not token.should_stop(1e12)

    def test_cancel_stops_at_next_checkpoint(self):
        token = CancellationToken()
        token.cancel()
        assert token.cancelled
        assert token.should_stop(0.0)

    def test_cancel_at_caps_own_spent_cost(self):
        token = CancellationToken()
        token.cancel_at(100.0)
        assert not token.should_stop(99.9)
        assert token.should_stop(100.0)
        assert token.should_stop(200.0)

    def test_repeated_caps_keep_the_smallest(self):
        """The earliest winner's completion cost wins."""
        token = CancellationToken()
        token.cancel_at(100.0)
        token.cancel_at(250.0)
        token.cancel_at(40.0)
        assert token.cost_cap == pytest.approx(40.0)


class TestInstrumentationCheckpoint:
    def test_charge_raises_when_token_fires(self):
        class Node:
            def signature(self):
                return "fake"

        token = CancellationToken()
        token.cancel_at(5.0)
        inst = Instrumentation(budget=100.0, cancel=token)
        inst.charge(Node(), 3.0)  # below the cap: survives
        with pytest.raises(ExecutionCancelled) as info:
            inst.charge(Node(), 3.0)  # crosses 5.0
        assert info.value.spent == pytest.approx(6.0)

    def test_no_token_no_overhead_path(self):
        class Node:
            def signature(self):
                return "fake"

        inst = Instrumentation(budget=100.0)
        inst.charge(Node(), 50.0)
        assert inst.total_cost == pytest.approx(50.0)


class TestEngineCancellation:
    def test_pre_cancelled_run_stops_early(self, database, schema):
        query = parse_query("select * from lineitem", schema)
        engine = ExecutionEngine(database)
        baseline = engine.execute(query, SeqScan("lineitem"))
        assert baseline.completed

        token = CancellationToken()
        token.cancel()
        result = engine.execute(query, SeqScan("lineitem"), cancel=token)
        assert result.cancelled
        assert not result.completed
        assert result.spent < baseline.spent

    def test_cost_cap_bounds_spend(self, database, schema):
        query = parse_query("select * from lineitem", schema)
        engine = ExecutionEngine(database)
        baseline = engine.execute(query, SeqScan("lineitem"))
        cap = baseline.spent / 2.0

        token = CancellationToken()
        token.cancel_at(cap)
        result = engine.execute(query, SeqScan("lineitem"), cancel=token)
        assert result.cancelled and not result.completed
        # Overshoot is bounded by one batch's charge, not the whole run.
        assert result.spent < baseline.spent

    def test_uncancelled_token_changes_nothing(self, database, schema):
        query = parse_query("select * from lineitem", schema)
        engine = ExecutionEngine(database)
        plain = engine.execute(query, SeqScan("lineitem"))
        tokened = engine.execute(
            query, SeqScan("lineitem"), cancel=CancellationToken()
        )
        assert tokened.completed
        assert not tokened.cancelled
        assert tokened.rows == plain.rows
        assert tokened.spent == pytest.approx(plain.spent)
