"""Crossing strategies: sequential parity, concurrent MSO collapse,
time-sliced determinism, and the registry/config surface."""

import pytest

from repro.core import BouquetRunner, simulate_at
from repro.core.runtime import AbstractExecutionService, ExecutionService
from repro.core.simulation import basic_cost_field
from repro.exceptions import BouquetError
from repro.sched import (
    CROSSING_NAMES,
    ConcurrentCrossing,
    SequentialCrossing,
    TimeSlicedCrossing,
    resolve_crossing,
)


def run_at(queried, location, crossing, mode="basic"):
    """Drive one basic-mode bouquet execution with the given strategy."""
    bouquet = queried.bouquet
    qa_values = bouquet.space.selectivities_at(location)
    service = AbstractExecutionService(bouquet, qa_values)
    return BouquetRunner(bouquet, service, mode=mode, crossing=crossing).run()


def sample_locations(space, per_dim=4):
    """A deterministic spread of grid corners/interior points."""
    shape = space.shape
    picks = []
    for frac in (0.0, 0.33, 0.66, 1.0)[:per_dim]:
        picks.append(tuple(int(round(frac * (n - 1))) for n in shape))
    picks.append(tuple(n - 1 for n in shape))
    picks.append(tuple(0 for _ in shape))
    return sorted(set(picks))


class TestSequentialParity:
    def test_matches_vectorized_figure7_field(self, eq_bouquet):
        """The strategy-driven loop reproduces the closed-form basic
        cost field execution-for-execution (tier-1 anchor)."""
        field = basic_cost_field(eq_bouquet)
        for index in (0, 9, 21, 37, 50, 63):
            result = simulate_at(eq_bouquet, (index,), mode="basic")
            assert result.crossing == "sequential"
            assert result.total_cost == pytest.approx(field[index])
            # One core: elapsed cost-time IS the work.
            assert result.elapsed_cost == pytest.approx(result.total_cost)

    def test_explicit_sequential_identical_to_default(self, eq_bouquet):
        a = simulate_at(eq_bouquet, (33,), mode="basic")
        b = simulate_at(eq_bouquet, (33,), mode="basic", crossing="sequential")
        assert [(e.contour_index, e.plan_id, e.cost_spent) for e in a.executions] == [
            (e.contour_index, e.plan_id, e.cost_spent) for e in b.executions
        ]

    def test_plans_run_in_ascending_id_order(self, eq_bouquet):
        result = simulate_at(eq_bouquet, eq_bouquet.space.corner, mode="basic")
        by_contour = {}
        for record in result.executions:
            by_contour.setdefault(record.contour_index, []).append(record.plan_id)
        for plan_ids in by_contour.values():
            assert plan_ids == sorted(plan_ids)


class TestConcurrentCrossing:
    def test_completes_everywhere_sampled(self, q8a):
        for location in sample_locations(q8a.space):
            result = run_at(q8a, location, "concurrent")
            assert result.completed, location
            assert result.crossing == "concurrent"

    def test_elapsed_never_exceeds_work(self, q8a):
        for location in sample_locations(q8a.space):
            result = run_at(q8a, location, "concurrent")
            assert result.elapsed_cost <= result.total_cost * (1 + 1e-9)

    def test_elapsed_within_collapsed_bound(self, q8a):
        """The tentpole claim: elapsed MSO obeys the 1D bound
        (1+lambda)*r^2/(r-1) — rho collapsed away."""
        bound = q8a.bouquet.mso_bound / q8a.bouquet.rho
        for location in sample_locations(q8a.space):
            result = run_at(q8a, location, "concurrent")
            optimal = q8a.diagram.cost_at(location)
            assert result.elapsed_cost <= bound * optimal * (1 + 1e-6)

    def test_work_mso_no_worse_than_sequential_bound(self, q8a):
        bound = q8a.bouquet.mso_bound
        for location in sample_locations(q8a.space):
            result = run_at(q8a, location, "concurrent")
            optimal = q8a.diagram.cost_at(location)
            assert result.total_cost <= bound * optimal * (1 + 1e-6)

    def test_strictly_better_than_sequential_somewhere(self, q8a):
        """rho > 1 means some location pays for multiple plans
        sequentially but only the critical path concurrently."""
        assert q8a.bouquet.rho > 1
        improved = False
        for location in sample_locations(q8a.space):
            seq = run_at(q8a, location, "sequential")
            conc = run_at(q8a, location, "concurrent")
            assert conc.elapsed_cost <= seq.total_cost * (1 + 1e-9)
            if conc.elapsed_cost < seq.total_cost * (1 - 1e-9):
                improved = True
        assert improved

    def test_deterministic_accounting_across_runs(self, q8a):
        """Thread completion order must never leak into the account."""
        location = tuple(n - 1 for n in q8a.space.shape)
        accounts = []
        for _ in range(3):
            result = run_at(q8a, location, "concurrent")
            accounts.append(
                (
                    round(result.total_cost, 9),
                    round(result.elapsed_cost, 9),
                    tuple(
                        (r.contour_index, r.plan_id, round(r.cost_spent, 9))
                        for r in result.executions
                    ),
                )
            )
        assert accounts[0] == accounts[1] == accounts[2]

    def test_ledger_records_cancellations(self, q8a):
        location = tuple(n - 1 for n in q8a.space.shape)
        result = run_at(q8a, location, "concurrent")
        assert result.ledger is not None
        # Every cancelled straggler was charged exactly the elapsed cut-off.
        for contour in result.ledger.contours:
            for charge in contour.charges.values():
                if charge.cancelled:
                    assert charge.work <= contour.elapsed * (1 + 1e-9)

    def test_worker_cap_accepted(self, eq_bouquet):
        result = simulate_at(
            eq_bouquet, (40,), mode="basic", crossing=ConcurrentCrossing(max_workers=2)
        )
        assert result.completed


class TestTimeSlicedCrossing:
    def test_bit_identical_repeats(self, q8a):
        for location in sample_locations(q8a.space):
            runs = [run_at(q8a, location, "timesliced") for _ in range(2)]
            signatures = [
                (
                    r.total_cost,
                    r.elapsed_cost,
                    tuple(
                        (e.contour_index, e.plan_id, e.cost_spent, e.completed)
                        for e in r.executions
                    ),
                )
                for r in runs
            ]
            assert signatures[0] == signatures[1]

    def test_completes_within_sequential_bound(self, q8a):
        bound = q8a.bouquet.mso_bound
        for location in sample_locations(q8a.space):
            result = run_at(q8a, location, "timesliced")
            assert result.completed
            optimal = q8a.diagram.cost_at(location)
            assert result.total_cost <= bound * optimal * (1 + 1e-6)

    def test_cheap_location_never_leaves_first_contour(self, eq_bouquet):
        result = simulate_at(eq_bouquet, (0,), mode="basic", crossing="timesliced")
        assert result.completed
        first = result.executions[0].contour_index
        assert {e.contour_index for e in result.executions} == {first}
        plans = len(eq_bouquet.contours[0].plan_ids)
        assert result.total_cost <= plans * eq_bouquet.budgets[0] * (1 + 1e-9)

    def test_quanta_validation(self):
        with pytest.raises(ValueError):
            TimeSlicedCrossing(quanta=0)


class TestStrategySurface:
    def test_resolve_names_and_instances(self):
        assert resolve_crossing(None).name == "sequential"
        assert isinstance(resolve_crossing("sequential"), SequentialCrossing)
        assert isinstance(resolve_crossing("concurrent"), ConcurrentCrossing)
        assert isinstance(resolve_crossing("timesliced"), TimeSlicedCrossing)
        custom = TimeSlicedCrossing(quanta=8)
        assert resolve_crossing(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(BouquetError):
            resolve_crossing("optimistic")

    def test_config_validates_crossing(self):
        from repro.api import BouquetConfig

        config = BouquetConfig(crossing="concurrent")
        assert config.to_dict()["crossing"] == "concurrent"
        assert "crossing" not in config.compile_knobs()  # runtime knob only
        with pytest.raises(BouquetError):
            BouquetConfig(crossing="bogus")

    def test_names_constant_covers_registry(self):
        for name in CROSSING_NAMES:
            assert resolve_crossing(name).name == name

    def test_legacy_service_without_cancel_kwarg(self, eq_bouquet):
        """Pre-scheduler ExecutionService implementations (no ``cancel``
        parameter) must keep working under every strategy."""

        class LegacyService(ExecutionService):
            def __init__(self, inner):
                self.inner = inner

            def run_full(self, plan_id, budget):
                return self.inner.run_full(plan_id, budget)

            def run_spilled(self, plan_id, budget, unlearned_pids):
                return self.inner.run_spilled(plan_id, budget, unlearned_pids)

        qa_values = eq_bouquet.space.selectivities_at((45,))
        for crossing in CROSSING_NAMES:
            service = LegacyService(AbstractExecutionService(eq_bouquet, qa_values))
            result = BouquetRunner(
                eq_bouquet, service, mode="basic", crossing=crossing
            ).run()
            assert result.completed, crossing


class TestOptimizedModeDispatch:
    def test_optimized_sequential_uses_spill_driver(self, eq_bouquet):
        result = simulate_at(eq_bouquet, (40,), mode="optimized")
        assert any(e.spilled for e in result.executions) or result.completed
        assert result.crossing == "sequential"

    def test_optimized_with_concurrent_falls_back_to_crossing(self, eq_bouquet):
        """Non-sequential strategies supersede the spill-based optimized
        driver (which is inherently one-plan-at-a-time)."""
        result = simulate_at(
            eq_bouquet, (40,), mode="optimized", crossing="concurrent"
        )
        assert result.completed
        assert result.crossing == "concurrent"
        assert not any(e.spilled for e in result.executions)
