"""Tests for the budget ledger: charging, validation, MSO math."""

import pytest

from repro.exceptions import BouquetError
from repro.robustness.metrics import crossing_mso_bound
from repro.sched import BudgetLedger


def make_ledger(ratio=2.0, lambda_=0.2, rho=3):
    return BudgetLedger(ratio=ratio, lambda_=lambda_, rho=rho)


class TestContourLedger:
    def test_charges_accumulate_per_plan(self):
        ledger = make_ledger()
        account = ledger.open_contour(1, budget=100.0)
        account.charge(7, 30.0)
        account.charge(7, 20.0)
        account.charge(9, 100.0, completed=True)
        assert account.charges[7].work == pytest.approx(50.0)
        assert account.charges[9].completed
        assert account.work == pytest.approx(150.0)
        assert account.executions == 2

    def test_negative_charge_rejected(self):
        account = make_ledger().open_contour(1, budget=10.0)
        with pytest.raises(BouquetError):
            account.charge(1, -0.5)

    def test_per_plan_overdraft_rejected(self):
        """No plan may be charged beyond the contour budget — the
        doubling guarantee rests on that."""
        account = make_ledger().open_contour(2, budget=10.0)
        account.charge(1, 10.0)  # exactly the budget: fine
        with pytest.raises(BouquetError):
            account.charge(1, 1.0)

    def test_elapsed_validation(self):
        account = make_ledger().open_contour(1, budget=10.0)
        account.charge(1, 4.0)
        account.charge(2, 6.0)
        account.set_elapsed(6.0)
        assert account.elapsed == pytest.approx(6.0)
        with pytest.raises(BouquetError):
            account.set_elapsed(-1.0)
        with pytest.raises(BouquetError):
            account.set_elapsed(10.001)  # exceeds total work

    def test_elapsed_clamps_float_noise_to_zero(self):
        """Timer arithmetic can produce values a hair below zero (e.g.
        ``t1 - t0`` across a clock adjustment); anything within the
        epsilon band is clamped to exactly 0.0 instead of rejected."""
        account = make_ledger().open_contour(1, budget=10.0)
        account.charge(1, 4.0)
        account.set_elapsed(-1e-9)
        assert account.elapsed == 0.0
        account.set_elapsed(-9.9e-7)  # still inside the epsilon band
        assert account.elapsed == 0.0
        # A genuinely negative duration is a caller bug, not noise.
        with pytest.raises(BouquetError):
            account.set_elapsed(-1e-3)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(BouquetError):
            make_ledger().open_contour(1, budget=0.0)


class TestBudgetLedger:
    def test_totals_and_cancellations(self):
        ledger = make_ledger()
        first = ledger.open_contour(1, budget=10.0)
        first.charge(1, 10.0)
        first.charge(2, 10.0, cancelled=True)
        first.set_elapsed(10.0)
        second = ledger.open_contour(2, budget=20.0)
        second.charge(3, 12.0, completed=True)
        second.set_elapsed(12.0)
        assert ledger.total_work == pytest.approx(32.0)
        assert ledger.total_elapsed == pytest.approx(22.0)
        assert ledger.cancellations == 1
        assert "IC1" in ledger.describe()

    def test_suboptimality_currencies(self):
        ledger = make_ledger()
        account = ledger.open_contour(1, budget=8.0)
        account.charge(1, 8.0)
        account.charge(2, 6.0, completed=True)
        account.set_elapsed(6.0)
        assert ledger.work_suboptimality(2.0) == pytest.approx(7.0)
        assert ledger.elapsed_suboptimality(2.0) == pytest.approx(3.0)
        with pytest.raises(BouquetError):
            ledger.work_suboptimality(0.0)

    def test_analytical_bound_matches_metrics(self):
        ledger = make_ledger(ratio=2.0, lambda_=0.2, rho=3)
        assert ledger.analytical_bound() == pytest.approx(
            crossing_mso_bound(2.0, 0.2, 3)
        )
        assert ledger.analytical_bound(concurrent=True) == pytest.approx(
            crossing_mso_bound(2.0, 0.2, 3, concurrent=True)
        )
        # The rho factor is exactly what concurrency collapses.
        assert ledger.analytical_bound() == pytest.approx(
            3 * ledger.analytical_bound(concurrent=True)
        )

    def test_assert_within_bound(self):
        ledger = make_ledger(ratio=2.0, lambda_=0.0, rho=1)  # bound = 4
        account = ledger.open_contour(1, budget=100.0)
        account.charge(1, 100.0, completed=True)
        account.set_elapsed(100.0)
        ledger.assert_within_bound(optimal_cost=50.0)  # subopt 2 <= 4
        with pytest.raises(BouquetError):
            ledger.assert_within_bound(optimal_cost=10.0)  # subopt 10 > 4


class TestCrossingMsoBound:
    def test_paper_values_at_r2(self):
        # Theorem 3 at r=2: 4*(1+lambda)*rho; concurrency drops the rho.
        assert crossing_mso_bound(2.0, 0.0, 1) == pytest.approx(4.0)
        assert crossing_mso_bound(2.0, 0.2, 5) == pytest.approx(24.0)
        assert crossing_mso_bound(2.0, 0.2, 5, concurrent=True) == pytest.approx(4.8)

    def test_input_validation(self):
        from repro.exceptions import EssError

        with pytest.raises(EssError):
            crossing_mso_bound(1.0, 0.2, 1)
        with pytest.raises(EssError):
            crossing_mso_bound(2.0, -0.1, 1)
        with pytest.raises(EssError):
            crossing_mso_bound(2.0, 0.2, 0)
