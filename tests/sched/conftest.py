"""Fixtures for the contour-crossing scheduler tests."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def q8a(lab):
    """The 2D run-time query lab (rho > 1: concurrency has teeth)."""
    return lab.build("2D_H_Q8a")
