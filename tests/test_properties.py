"""Cross-cutting property-based tests (hypothesis) for the core
invariants the bouquet guarantees rest on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import geometric_budgets, mso_bound_1d, worst_case_suboptimality
from repro.core.contours import contour_costs, maximal_region_frontier
from repro.core.runtime import _geometric_interp


# ---------------------------------------------------------------------------
# Contour construction
# ---------------------------------------------------------------------------


class TestContourCostProperties:
    @given(
        cmin=st.floats(min_value=1e-3, max_value=1e6),
        span=st.floats(min_value=1.0 + 1e-6, max_value=1e9),
        ratio=st.floats(min_value=1.1, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_boundary_conditions(self, cmin, span, ratio):
        """§3.1: a/r < Cmin <= IC1 and IC_m == Cmax for ANY valid inputs."""
        cmax = cmin * span
        costs = contour_costs(cmin, cmax, ratio)
        assert costs[-1] == pytest.approx(cmax)
        assert costs[0] >= cmin * (1 - 1e-9)
        assert costs[0] / ratio < cmin * (1 + 1e-9)
        for a, b in zip(costs, costs[1:]):
            assert b == pytest.approx(a * ratio)

    @given(
        ratio=st.floats(min_value=1.1, max_value=10.0),
        decades=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_adversary_bounded_by_theorem1(self, ratio, decades):
        budgets = geometric_budgets(1.0, 10.0**decades, ratio)
        if len(budgets) < 2:
            return
        assert worst_case_suboptimality(budgets) <= mso_bound_1d(ratio) * (1 + 1e-9)


class TestFrontierProperties:
    @given(
        shape=st.tuples(
            st.integers(min_value=2, max_value=6),
            st.integers(min_value=2, max_value=6),
            st.integers(min_value=2, max_value=5),
        ),
        seed=st.integers(min_value=0, max_value=10_000),
        quantile=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_frontier_dominates_region_3d(self, shape, seed, quantile):
        """Every in-region cell is dominated by some frontier cell — the
        property that makes contour budgets sufficient (§3.2)."""
        rng = np.random.default_rng(seed)
        grid = rng.uniform(0.1, 1.0, size=shape)
        for axis in range(3):
            grid = np.cumsum(grid, axis=axis)  # monotone along every axis
        ic = float(np.quantile(grid, quantile))
        frontier = maximal_region_frontier(grid, ic)
        inside = np.argwhere(grid <= ic + 1e-9 * ic)
        for cell in inside:
            assert any(
                all(f >= c for f, c in zip(loc, cell)) for loc in frontier
            ), (cell, frontier)

    @given(
        shape=st.tuples(
            st.integers(min_value=2, max_value=8),
            st.integers(min_value=2, max_value=8),
        ),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_frontier_is_antichain(self, shape, seed):
        """No frontier cell dominates another (they are maximal elements)."""
        rng = np.random.default_rng(seed)
        grid = np.cumsum(np.cumsum(rng.uniform(0.1, 1.0, size=shape), axis=0), axis=1)
        ic = float(np.median(grid))
        frontier = maximal_region_frontier(grid, ic)
        for a in frontier:
            for b in frontier:
                if a != b:
                    assert not all(x >= y for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# Interpolation helper
# ---------------------------------------------------------------------------


class TestGeometricInterp:
    @given(
        lo=st.floats(min_value=1e-9, max_value=0.5),
        factor=st.floats(min_value=1.0, max_value=1e6),
        t=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_stays_in_range_and_monotone(self, lo, factor, t):
        hi = min(1.0, lo * factor)
        value = _geometric_interp(lo, hi, t)
        assert lo * (1 - 1e-12) <= value <= hi * (1 + 1e-12)
        later = _geometric_interp(lo, hi, min(1.0, t + 0.1))
        assert later >= value * (1 - 1e-12)


# ---------------------------------------------------------------------------
# End-to-end invariants on the shared 1D bouquet
# ---------------------------------------------------------------------------


class TestBouquetInvariants:
    @given(index=st.integers(min_value=0, max_value=63))
    @settings(max_examples=30, deadline=None)
    def test_basic_run_respects_bound_everywhere(self, eq_bouquet, eq_diagram, index):
        from repro.core import simulate_at

        result = simulate_at(eq_bouquet, (index,), mode="basic")
        assert result.completed
        bound = eq_bouquet.mso_bound * eq_diagram.cost_at((index,))
        assert result.total_cost <= bound * (1 + 1e-6)

    @given(index=st.integers(min_value=0, max_value=63))
    @settings(max_examples=20, deadline=None)
    def test_optimized_run_learning_is_safe(self, eq_bouquet, index):
        """All learned values are lower bounds of the true selectivity."""
        from repro.core import simulate_at

        truth = eq_bouquet.space.selectivities_at((index,))[0]
        result = simulate_at(eq_bouquet, (index,), mode="optimized")
        assert result.completed
        for record in result.executions:
            for learned in record.learned:
                assert learned.value <= truth * (1 + 1e-6)

    @given(index=st.integers(min_value=0, max_value=63))
    @settings(max_examples=20, deadline=None)
    def test_budgets_never_exceeded(self, eq_bouquet, index):
        from repro.core import simulate_at

        for mode in ("basic", "optimized"):
            result = simulate_at(eq_bouquet, (index,), mode=mode)
            for record in result.executions:
                assert record.cost_spent <= record.budget * (1 + 1e-9)


# ---------------------------------------------------------------------------
# Budget-doubling + crossing-ledger invariants (repro.sched)
# ---------------------------------------------------------------------------


class TestBudgetLedgerProperties:
    @given(
        cmin=st.floats(min_value=1e-3, max_value=1e6),
        ratio=st.floats(min_value=1.2, max_value=5.0),
        lambda_=st.floats(min_value=0.0, max_value=1.0),
        rho=st.integers(min_value=1, max_value=6),
        climbed=st.integers(min_value=1, max_value=8),
        winner_frac=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_adversarial_schedule_within_crossing_bounds(
        self, cmin, ratio, lambda_, rho, climbed, winner_frac
    ):
        """Worst-case schedule over geometric budgets: every climbed
        contour bills rho full budgets (work) / one budget (elapsed), yet
        both currencies stay inside their analytical crossing bounds.

        The optimal cost is the adversary's best case: just above the
        contour below the completing one (IC_{k*}/r), which is what makes
        these the *maximum* sub-optimality ratios.
        """
        from repro.sched import BudgetLedger

        ledger = BudgetLedger(ratio=ratio, lambda_=lambda_, rho=rho)
        for k in range(1, climbed + 1):
            ic = cmin * ratio**k
            budget = (1.0 + lambda_) * ic
            account = ledger.open_contour(k, budget)
            last = k == climbed
            for plan in range(rho):
                is_winner = last and plan == rho - 1
                amount = budget * winner_frac if is_winner else budget
                account.charge(plan, amount, completed=is_winner)
            # Concurrent cost-time: one budget per contour, never rho.
            account.set_elapsed(min(budget, account.work))
        # qa escaped contour k*-1, so the optimal cost exceeds IC_{k*}/r.
        optimal = cmin * ratio**climbed / ratio
        assert ledger.work_suboptimality(optimal) <= ledger.analytical_bound() * (
            1 + 1e-9
        )
        assert ledger.elapsed_suboptimality(optimal) <= ledger.analytical_bound(
            concurrent=True
        ) * (1 + 1e-9)
        # And the concurrent currency never exceeds the sequential one.
        assert ledger.total_elapsed <= ledger.total_work * (1 + 1e-12)

    @given(
        index=st.integers(min_value=0, max_value=63),
        crossing=st.sampled_from(["sequential", "concurrent", "timesliced"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_strategy_within_bound_on_ess_grid(
        self, eq_bouquet, eq_diagram, index, crossing
    ):
        """Any crossing strategy's ledger totals stay within the
        4*(1+lambda)*rho work bound (and the elapsed currency within the
        collapsed 4*(1+lambda) bound) at every simulated qa."""
        from repro.core import simulate_at

        result = simulate_at(eq_bouquet, (index,), mode="basic", crossing=crossing)
        assert result.completed
        ledger = result.ledger
        optimal = eq_diagram.cost_at((index,))
        ledger.assert_within_bound(optimal)
        ledger.assert_within_bound(optimal, concurrent=True)
        assert result.total_cost <= eq_bouquet.mso_bound * optimal * (1 + 1e-6)

    @given(
        index=st.integers(min_value=0, max_value=63),
        quanta=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_timesliced_work_invariant_under_quanta(self, eq_bouquet, index, quanta):
        """Restart-free marginal charging: a plan's cumulative charge on
        a contour never exceeds its sequential (one-shot) spend."""
        from repro.core.runtime import AbstractExecutionService, BouquetRunner
        from repro.sched import TimeSlicedCrossing

        qa_values = eq_bouquet.space.selectivities_at((index,))
        service = AbstractExecutionService(eq_bouquet, qa_values)
        sliced = BouquetRunner(
            eq_bouquet,
            service,
            mode="basic",
            crossing=TimeSlicedCrossing(quanta=quanta),
        ).run()
        assert sliced.completed
        for contour in sliced.ledger.contours:
            for charge in contour.charges.values():
                assert charge.work <= contour.budget * (1 + 1e-9)
        # quanta=1 degenerates to the sequential schedule exactly.
        if quanta == 1:
            reference = BouquetRunner(
                eq_bouquet,
                AbstractExecutionService(eq_bouquet, qa_values),
                mode="basic",
            ).run()
            assert sliced.total_cost == pytest.approx(reference.total_cost)
