"""Worker-pool semantics: ordering, caching, failure, lifecycle."""

import os
import pickle
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.par import (
    ParError,
    WorkerPool,
    encode_payload,
    get_pool,
    leaked_segments,
    shutdown_pools,
)
from repro.par.pool import PAYLOAD_CACHE_SLOTS


# --- task functions (module-level: picklable under spawn) -----------------


def _affine(ctx, payload, item):
    return payload["a"] * item + payload["b"]


def _boom(ctx, payload, item):
    if item == payload:
        raise ValueError(f"boom at {item}")
    return item


def _exit_hard(ctx, payload, item):
    if item == payload:
        os._exit(3)
    return item


def _interrupt(ctx, payload, item):
    if item == payload:
        raise KeyboardInterrupt
    return item


def _memoed_token(ctx, payload, item):
    # The memo builder runs once per (worker, payload digest); every task
    # under the same digest must observe the identical object.
    return id(ctx.memo("token", object))


_MEMO_BUILDS = {"count": 0}


def _memo_build_count(ctx, payload, item):
    # Worker-global build counter: the memo value records which build
    # produced it, so a purged-then-rebuilt memo is distinguishable from
    # a retained one without relying on object identity.
    def build():
        _MEMO_BUILDS["count"] += 1
        return _MEMO_BUILDS["count"]

    return ctx.memo("generation", build)


def _worker_pid(ctx, payload, item):
    return os.getpid()


# --- ordering and reuse ---------------------------------------------------


class TestRunSemantics:
    def test_results_in_submission_order(self):
        pool = WorkerPool(2)
        try:
            items = list(range(37))
            payload = {"a": 3, "b": -1}
            assert pool.run(_affine, payload, items) == [
                3 * i - 1 for i in items
            ]
        finally:
            pool.close()

    def test_identical_results_at_any_worker_count(self):
        items = list(range(23))
        payload = {"a": 2, "b": 5}
        rosters = []
        for workers in (1, 2, 4):
            pool = WorkerPool(workers)
            try:
                rosters.append(pool.run(_affine, payload, items))
            finally:
                pool.close()
        assert rosters[0] == rosters[1] == rosters[2]

    def test_empty_items_short_circuits(self):
        pool = WorkerPool(2)
        try:
            assert pool.run(_affine, {"a": 1, "b": 0}, []) == []
            assert pool.stats.runs == 0  # never started
        finally:
            pool.close()

    def test_on_result_streams_every_completion(self):
        pool = WorkerPool(2)
        try:
            seen = []
            pool.run(
                _affine,
                {"a": 1, "b": 0},
                list(range(9)),
                on_result=lambda seq, value: seen.append((seq, value)),
            )
            assert sorted(seen) == [(i, i) for i in range(9)]
        finally:
            pool.close()


class TestConcurrency:
    def test_concurrent_runs_from_threads_do_not_interleave(self):
        # The serving layer's compile executor reaches one shared pool
        # from several threads at once; run() must serialize so the
        # seq-numbered result streams cannot cross-assign.
        pool = WorkerPool(2)
        try:
            def batch(k):
                payload = {"a": k, "b": k}
                return pool.run(_affine, payload, list(range(25)))

            with ThreadPoolExecutor(max_workers=4) as pex:
                rosters = list(pex.map(batch, range(8)))
            for k, roster in enumerate(rosters):
                assert roster == [k * i + k for i in range(25)]
        finally:
            pool.close()


class TestOnResultFailure:
    def test_raising_callback_drains_batch_and_pool_survives(self):
        pool = WorkerPool(2)
        try:
            def explode(seq, value):
                raise RuntimeError("progress sink broke")

            with pytest.raises(RuntimeError, match="progress sink broke"):
                pool.run(_affine, {"a": 1, "b": 0}, list(range(12)), on_result=explode)
            # the batch fully drained: the next run must see only its
            # own results, in order, with no stale tuples cross-wired
            assert pool.run(_affine, {"a": 2, "b": 1}, list(range(6))) == [
                2 * i + 1 for i in range(6)
            ]
        finally:
            pool.close()


class TestPayloadCache:
    def test_payload_ships_once_per_worker_per_digest(self):
        pool = WorkerPool(2)
        try:
            payload = {"a": 1, "b": 2}
            pool.run(_affine, payload, [1, 2, 3])
            assert pool.stats.payload_ships == 2
            assert pool.stats.payload_hits == 0
            # byte-identical payload: pure cache hits
            pool.run(_affine, dict(payload), [4, 5])
            assert pool.stats.payload_ships == 2
            assert pool.stats.payload_hits == 2
            # new digest ships again
            pool.run(_affine, {"a": 9, "b": 9}, [6])
            assert pool.stats.payload_ships == 4
        finally:
            pool.close()

    def test_memo_is_stable_per_digest(self):
        pool = WorkerPool(1)
        try:
            first = pool.run(_memoed_token, "cfg", [0, 1, 2])
            second = pool.run(_memoed_token, "cfg", [3, 4])
            assert len(set(first + second)) == 1
            # a different payload digest gets a fresh memo entry
            other = pool.run(_memoed_token, "cfg2", [0])
            assert other[0] != first[0]
        finally:
            pool.close()

    def test_payload_cache_evicts_beyond_slots_and_reships(self):
        pool = WorkerPool(1)
        try:
            # Stream more distinct payloads than the cache holds …
            for k in range(PAYLOAD_CACHE_SLOTS + 1):
                assert pool.run(_affine, {"a": k, "b": 0}, [1]) == [k]
            ships = pool.stats.payload_ships
            assert ships == PAYLOAD_CACHE_SLOTS + 1
            # … the oldest digest was evicted (parent and worker agree),
            # so re-running it ships again instead of hanging the worker
            assert pool.run(_affine, {"a": 0, "b": 0}, [2, 3]) == [0, 0]
            assert pool.stats.payload_ships == ships + 1
            # while a still-cached digest is a pure hit
            hits = pool.stats.payload_hits
            assert pool.run(
                _affine, {"a": PAYLOAD_CACHE_SLOTS, "b": 0}, [1]
            ) == [PAYLOAD_CACHE_SLOTS]
            assert pool.stats.payload_ships == ships + 1
            assert pool.stats.payload_hits == hits + 1
        finally:
            pool.close()

    def test_memo_entries_die_with_evicted_payloads(self):
        pool = WorkerPool(1)
        try:
            assert pool.run(_memo_build_count, "cfg-0", [0]) == [1]
            # …and it is retained while the digest stays cached
            assert pool.run(_memo_build_count, "cfg-0", [0]) == [1]
            for k in range(1, PAYLOAD_CACHE_SLOTS + 1):
                pool.run(_memo_build_count, f"cfg-{k}", [0])
            # "cfg-0" was evicted with its memo: the builder runs again
            assert pool.run(_memo_build_count, "cfg-0", [0]) == [
                PAYLOAD_CACHE_SLOTS + 2
            ]
        finally:
            pool.close()

    def test_encode_payload_digest_tracks_bytes(self):
        d1, b1 = encode_payload({"x": 1})
        d2, b2 = encode_payload({"x": 1})
        d3, _ = encode_payload({"x": 2})
        assert d1 == d2 and b1 == b2
        assert d3 != d1
        assert pickle.loads(b1) == {"x": 1}


class TestFailure:
    def test_task_exception_surfaces_and_pool_survives(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(ParError, match="boom at 3"):
                pool.run(_boom, 3, list(range(6)))
            assert pool.alive
            # the pool is still usable after a task-level failure
            assert pool.run(_boom, -1, [7, 8]) == [7, 8]
        finally:
            pool.close()

    def test_dead_worker_breaks_pool(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(ParError, match="died mid-run"):
                pool.run(_exit_hard, 1, list(range(4)))
            assert not pool.alive
            with pytest.raises(ParError, match="closed"):
                pool.run(_affine, {"a": 1, "b": 0}, [1])
        finally:
            pool.close()
        assert leaked_segments() == []

    def test_keyboard_interrupt_in_task_kills_worker_cleanly(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(ParError, match="died mid-run"):
                pool.run(_interrupt, 0, list(range(4)))
            assert not pool.alive
        finally:
            pool.close()
        assert leaked_segments() == []


class TestSpawnFallback:
    def test_spawn_results_match_fork(self):
        items = list(range(11))
        payload = {"a": 4, "b": 1}
        spawn_pool = WorkerPool(2, start_method="spawn")
        try:
            spawn_results = spawn_pool.run(_affine, payload, items)
            assert spawn_pool.stats.payload_ships == 2
        finally:
            spawn_pool.close()
        fork_pool = WorkerPool(2)
        try:
            assert spawn_results == fork_pool.run(_affine, payload, items)
        finally:
            fork_pool.close()

    def test_spawn_workers_are_real_processes(self):
        pool = WorkerPool(2, start_method="spawn")
        try:
            pids = set(pool.run(_worker_pid, None, list(range(8))))
            assert os.getpid() not in pids
        finally:
            pool.close()

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ParError, match="unavailable"):
            WorkerPool(2, start_method="no-such-method")


class TestRegistry:
    def test_get_pool_reuses_live_pool(self):
        a = get_pool(2)
        b = get_pool(2)
        assert a is b
        assert a.alive

    def test_broken_pool_is_replaced(self):
        a = get_pool(2)
        with pytest.raises(ParError):
            a.run(_exit_hard, 0, [0, 1])
        b = get_pool(2)
        assert b is not a
        assert b.run(_affine, {"a": 1, "b": 0}, [5]) == [5]

    def test_shutdown_pools_closes_everything(self):
        pool = get_pool(2)
        pool.run(_affine, {"a": 1, "b": 0}, [1, 2])
        shutdown_pools()
        assert not pool.alive
        assert leaked_segments() == []
        # and the registry hands out a fresh pool afterwards
        assert get_pool(2).run(_affine, {"a": 1, "b": 0}, [3]) == [3]

    def test_workers_must_be_positive(self):
        with pytest.raises(ParError, match="workers"):
            WorkerPool(0)
