"""Shared-memory plane lifecycle: export, attach, crash-path cleanup."""

import pickle

import numpy as np
import pytest

from repro.obs.tracer import MemorySink, Tracer
from repro.par import (
    ParError,
    ShmArray,
    WorkerPool,
    export_array,
    leaked_segments,
    live_segment_names,
    release_segments,
)


def _plane_sum(ctx, payload, item):
    return float(payload.sum()) + item


def _plane_is_readonly(ctx, payload, item):
    try:
        payload[0] = -1.0
    except ValueError:
        return True
    return False


def _exit_hard(ctx, payload, item):
    import os

    os._exit(3)


@pytest.fixture(autouse=True)
def _clean_segments():
    release_segments()
    yield
    release_segments()
    assert leaked_segments() == []


class TestExport:
    def test_round_trip_preserves_values(self):
        source = np.arange(12.0).reshape(3, 4)
        view = export_array(source)
        assert isinstance(view, ShmArray)
        assert np.array_equal(view, source)
        assert not view.flags.writeable
        assert view._shm_name in live_segment_names()

    def test_export_is_idempotent_per_array_object(self):
        source = np.arange(6.0)
        a = export_array(source)
        b = export_array(source)
        assert a._shm_name == b._shm_name
        assert len(live_segment_names()) == 1
        # re-exporting a ShmArray is a no-op, not a second segment
        assert export_array(a) is a

    def test_equal_but_distinct_arrays_get_distinct_segments(self):
        a = export_array(np.zeros(4))
        b = export_array(np.zeros(4))
        assert a._shm_name != b._shm_name

    def test_pickle_ships_name_not_buffer(self):
        source = np.arange(4096.0)
        view = export_array(source)
        blob = pickle.dumps(view, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(blob) < source.nbytes // 8
        attached = pickle.loads(blob)
        assert np.array_equal(attached, source)
        assert not attached.flags.writeable
        # attached views are plain ndarrays: re-pickling one serializes
        # values, never a segment name that the parent may unlink
        assert not isinstance(attached, ShmArray)

    def test_tracer_counts_exports(self):
        tracer = Tracer(MemorySink())
        export_array(np.zeros((8, 8)), tracer)
        assert tracer.counters.get("par.shm.exports") == 1

    def test_release_unlinks_everything(self):
        a, b = np.zeros(16), np.ones(16)
        views = [export_array(a), export_array(b)]
        assert len(live_segment_names()) == 2
        release_segments()
        assert live_segment_names() == []
        assert leaked_segments() == []
        assert views  # held live through release on purpose


class TestEviction:
    def test_dead_source_and_view_evicts_segment(self):
        # Nothing holds the source or the view after the statement:
        # the segment must be gone without any explicit release.
        export_array(np.zeros(1024))
        assert live_segment_names() == []
        assert leaked_segments() == []

    def test_live_view_pins_segment_after_source_dies(self):
        view = export_array(np.arange(32.0))
        # source (the temporary) is dead; the view still names the
        # segment, so it must stay linked for in-flight payloads
        assert view._shm_name in live_segment_names()
        name = view._shm_name
        del view
        assert name not in live_segment_names()

    def test_live_source_keeps_segment_name_stable_across_dead_views(self):
        source = np.arange(64.0)
        first = export_array(source)._shm_name
        # the first view is dead now, but the source lives: re-export
        # must reuse the same segment so payload digests stay stable
        second = export_array(source)._shm_name
        assert first == second
        assert live_segment_names() == [first]


class TestWorkerAttach:
    def test_workers_read_planes_zero_copy(self):
        source = np.arange(64.0).reshape(8, 8)
        view = export_array(source)
        pool = WorkerPool(2)
        try:
            totals = pool.run(_plane_sum, view, [0, 1, 2, 3])
            assert totals == [float(source.sum()) + i for i in range(4)]
        finally:
            pool.close()

    def test_attached_planes_are_read_only_in_workers(self):
        view = export_array(np.arange(8.0))
        pool = WorkerPool(1)
        try:
            assert pool.run(_plane_is_readonly, view, [0]) == [True]
        finally:
            pool.close()

    def test_spawn_workers_attach_too(self):
        source = np.arange(32.0)
        view = export_array(source)
        pool = WorkerPool(2, start_method="spawn")
        try:
            assert pool.run(_plane_sum, view, [0]) == [float(source.sum())]
        finally:
            pool.close()


class TestCrashCleanup:
    def test_worker_crash_releases_segments(self):
        view = export_array(np.zeros(128))
        pool = WorkerPool(2)
        with pytest.raises(ParError, match="died mid-run"):
            pool.run(_exit_hard, view, [0, 1])
        # terminate() on the crash path released every exported segment
        assert live_segment_names() == []
        assert leaked_segments() == []

    def test_terminate_releases_segments(self):
        export_array(np.zeros(64))
        pool = WorkerPool(1)
        pool.run(_plane_sum, export_array(np.zeros(4)), [0])
        pool.terminate()
        assert leaked_segments() == []
