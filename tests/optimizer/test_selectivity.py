"""Tests for selectivity estimation, ground truth, and injection."""

import pytest

from repro.catalog.statistics import MAGIC_EQUALITY_SELECTIVITY, MAGIC_RANGE_SELECTIVITY
from repro.exceptions import QueryError
from repro.optimizer.selectivity import (
    actual_selectivities,
    estimate_selectivities,
    inject,
    validate_assignment,
)


class TestEstimation:
    def test_estimates_cover_all_predicates(self, eq_query, statistics):
        est = estimate_selectivities(eq_query, statistics)
        assert set(est) == set(eq_query.predicate_ids)
        for value in est.values():
            assert 0 < value <= 1

    def test_magic_numbers_without_stats(self, eq_query):
        est = estimate_selectivities(eq_query, None)
        sel_pid = eq_query.selections[0].pid
        assert est[sel_pid] == pytest.approx(MAGIC_RANGE_SELECTIVITY)
        for join in eq_query.joins:
            assert est[join.pid] == pytest.approx(MAGIC_EQUALITY_SELECTIVITY)

    def test_range_estimate_close_to_actual_for_uniform_column(
        self, eq_query, statistics, database
    ):
        est = estimate_selectivities(eq_query, statistics)
        act = actual_selectivities(eq_query, database)
        sel_pid = eq_query.selections[0].pid
        # p_retailprice is uniform, so even sampled stats estimate it well.
        assert est[sel_pid] == pytest.approx(act[sel_pid], rel=0.3)

    def test_pk_fk_join_estimated_exactly(self, schema, statistics, database):
        """PK-FK joins with the full PK side participating are estimated
        accurately (§8) — skew does not matter because every FK row
        matches exactly one PK row."""
        from repro.query import JoinPredicate, Query

        query = Query(
            "pkfkq",
            schema,
            ["lineitem", "part"],
            joins=[JoinPredicate("lineitem", "l_partkey", "part", "p_partkey")],
        )
        pid = query.joins[0].pid
        est = estimate_selectivities(query, statistics)
        act = actual_selectivities(query, database)
        assert act[pid] == pytest.approx(1.0 / schema.table("part").row_count)
        assert est[pid] == pytest.approx(act[pid], rel=0.3)

    def test_non_pk_fk_join_estimate_errs(self, schema, statistics, database):
        """Joins that are not clean full-PK joins break the uniformity-based
        1/max(ndv) formula — the error source that motivates the paper.
        (Here only part of the ps_partkey domain matches l_partkey.)"""
        from repro.query import JoinPredicate, Query

        query = Query(
            "skewq",
            schema,
            ["lineitem", "partsupp"],
            joins=[JoinPredicate("lineitem", "l_partkey", "partsupp", "ps_partkey")],
        )
        pid = query.joins[0].pid
        est = estimate_selectivities(query, statistics)[pid]
        act = actual_selectivities(query, database)[pid]
        relative_error = abs(est - act) / act
        assert relative_error > 0.1


class TestActuals:
    def test_actuals_cover_all_predicates(self, eq_query, database):
        act = actual_selectivities(eq_query, database)
        assert set(act) == set(eq_query.predicate_ids)

    def test_pk_fk_actual_is_reciprocal(self, eq_query, database, schema):
        act = actual_selectivities(eq_query, database)
        j_lo = next(j for j in eq_query.joins if "orders" in j.tables)
        assert act[j_lo.pid] == pytest.approx(
            1.0 / schema.table("orders").row_count
        )


class TestInjection:
    def test_inject_overrides(self, eq_query, statistics):
        base = estimate_selectivities(eq_query, statistics)
        pid = eq_query.selections[0].pid
        merged = inject(base, {pid: 0.42})
        assert merged[pid] == pytest.approx(0.42)
        assert base[pid] != merged[pid]

    def test_inject_clamps(self, eq_query, statistics):
        base = estimate_selectivities(eq_query, statistics)
        pid = eq_query.selections[0].pid
        assert inject(base, {pid: 5.0})[pid] == 1.0
        assert inject(base, {pid: 0.0})[pid] > 0.0

    def test_inject_unknown_pid_rejected(self, eq_query, statistics):
        base = estimate_selectivities(eq_query, statistics)
        with pytest.raises(QueryError):
            inject(base, {"sel:ghost": 0.5})


class TestValidation:
    def test_missing_pid_rejected(self, eq_query, statistics):
        base = estimate_selectivities(eq_query, statistics)
        base.pop(eq_query.selections[0].pid)
        with pytest.raises(QueryError):
            validate_assignment(eq_query, base)

    def test_out_of_range_rejected(self, eq_query, statistics):
        base = estimate_selectivities(eq_query, statistics)
        base[eq_query.selections[0].pid] = 1.5
        with pytest.raises(QueryError):
            validate_assignment(eq_query, base)


class TestPerPredicateEstimators:
    def test_estimate_selection_direct(self, eq_query, statistics):
        from repro.optimizer.selectivity import estimate_selection

        sel = eq_query.selections[0]
        value = estimate_selection(sel, statistics)
        assert 0 < value <= 1
        assert estimate_selection(sel, None) == pytest.approx(1.0 / 3.0)

    def test_estimate_join_direct(self, eq_query, statistics):
        from repro.optimizer.selectivity import estimate_join

        join = eq_query.joins[0]
        value = estimate_join(join, statistics)
        assert 0 < value <= 1
        assert estimate_join(join, None) == pytest.approx(0.1)
