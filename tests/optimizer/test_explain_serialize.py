"""Tests for plan explain rendering and (de)serialization."""

import json

import pytest

from repro.exceptions import OptimizerError
from repro.optimizer import (
    IndexLookup,
    Join,
    SeqScan,
    cost_plan,
    explain,
    plan_from_dict,
    plan_to_dict,
)


@pytest.fixture(scope="module")
def sample_plan(eq_query):
    sel = eq_query.selections[0].pid
    j_lp = next(j for j in eq_query.joins if "part" in j.tables).pid
    j_lo = next(j for j in eq_query.joins if "orders" in j.tables).pid
    return Join(
        "inl",
        Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
        IndexLookup("part", "p_partkey", (sel,)),
        (j_lp,),
    )


class TestExplain:
    def test_renders_every_node(self, sample_plan, optimizer, eq_query):
        text = explain(
            sample_plan,
            optimizer.schema,
            optimizer.cost_model,
            optimizer.estimated_assignment(eq_query),
        )
        assert "Index Nested Loop" in text
        assert "Hash Join" in text
        assert "Seq Scan on lineitem" in text
        assert "Index Lookup on part.p_partkey" in text
        assert "rows=" in text and "cost=" in text

    def test_costs_match_cost_plan(self, sample_plan, optimizer, eq_query):
        a = optimizer.estimated_assignment(eq_query)
        text = explain(sample_plan, optimizer.schema, optimizer.cost_model, a)
        top_cost = cost_plan(sample_plan, optimizer.schema, optimizer.cost_model, a).cost
        first_line = text.splitlines()[0]
        assert f"cost={top_cost:.1f}" in first_line

    def test_optimizer_plan_explains(self, optimizer, eq_query):
        result = optimizer.optimize(eq_query)
        text = explain(
            result.plan,
            optimizer.schema,
            optimizer.cost_model,
            optimizer.estimated_assignment(eq_query),
        )
        assert len(text.splitlines()) >= 3


class TestSerialization:
    def test_roundtrip_preserves_signature(self, sample_plan):
        data = plan_to_dict(sample_plan)
        rebuilt = plan_from_dict(data)
        assert rebuilt.signature() == sample_plan.signature()

    def test_roundtrip_through_json(self, sample_plan):
        data = json.loads(json.dumps(plan_to_dict(sample_plan)))
        assert plan_from_dict(data).signature() == sample_plan.signature()

    def test_roundtrip_preserves_costs(self, sample_plan, optimizer, eq_query):
        a = optimizer.estimated_assignment(eq_query)
        original = cost_plan(sample_plan, optimizer.schema, optimizer.cost_model, a)
        rebuilt = plan_from_dict(plan_to_dict(sample_plan))
        again = cost_plan(rebuilt, optimizer.schema, optimizer.cost_model, a)
        assert again.cost == pytest.approx(original.cost)
        assert again.rows == pytest.approx(original.rows)

    def test_every_posp_plan_roundtrips(self, eq_diagram):
        for plan_id in eq_diagram.posp_plan_ids:
            plan = eq_diagram.registry.plan(plan_id)
            rebuilt = plan_from_dict(plan_to_dict(plan))
            assert rebuilt.signature() == plan.signature()

    def test_unknown_kind_rejected(self):
        with pytest.raises(OptimizerError):
            plan_from_dict({"node": "quantum_scan"})
