"""Tests for DP join enumeration and the optimizer facade."""

import numpy as np
import pytest

from repro.optimizer import (
    COMMERCIAL_COST_MODEL,
    Optimizer,
    cost_plan,
)
from repro.optimizer.joinorder import access_paths
from repro.query import JoinPredicate, Query, SelectionPredicate


class TestAccessPaths:
    def test_always_offers_seq_scan(self, eq_query):
        paths = access_paths(eq_query, "orders")
        assert len(paths) == 1  # no selections -> seqscan only

    def test_index_paths_per_selection(self, eq_query):
        paths = access_paths(eq_query, "part")
        # seq scan + index scan on the one selection predicate
        assert len(paths) == 2


class TestEnumeration:
    def test_optimal_beats_every_candidate(self, optimizer, eq_query, statistics):
        """DP optimality: sanity-check against a few handmade plans."""
        from repro.optimizer import Join, SeqScan

        a = optimizer.estimated_assignment(eq_query)
        best = optimizer.optimize(eq_query, assignment=a)
        sel_pid = eq_query.selections[0].pid
        j_lp = next(j for j in eq_query.joins if "part" in j.tables).pid
        j_lo = next(j for j in eq_query.joins if "orders" in j.tables).pid
        handmade = [
            Join(
                "hash",
                Join("hash", SeqScan("lineitem"), SeqScan("orders"), (j_lo,)),
                SeqScan("part", (sel_pid,)),
                (j_lp,),
            ),
            Join(
                "merge",
                Join("nl", SeqScan("part", (sel_pid,)), SeqScan("lineitem"), (j_lp,)),
                SeqScan("orders"),
                (j_lo,),
            ),
        ]
        for plan in handmade:
            est = cost_plan(plan, optimizer.schema, optimizer.cost_model, a)
            assert best.cost <= est.cost * (1 + 1e-9)

    def test_plan_depends_on_selectivities(self, optimizer, eq_query):
        sel_pid = eq_query.selections[0].pid
        low = optimizer.optimize(eq_query, injected={sel_pid: 1e-4})
        high = optimizer.optimize(eq_query, injected={sel_pid: 0.9})
        assert low.signature != high.signature

    def test_plan_registry_stable_ids(self, optimizer, eq_query):
        sel_pid = eq_query.selections[0].pid
        a = optimizer.optimize(eq_query, injected={sel_pid: 1e-4})
        b = optimizer.optimize(eq_query, injected={sel_pid: 1.1e-4})
        if a.signature == b.signature:
            assert a.plan_id == b.plan_id

    def test_single_table_query(self, optimizer, schema):
        query = Query(
            "single",
            schema,
            ["part"],
            selections=[SelectionPredicate("part", "p_size", "<", 5.0)],
        )
        result = optimizer.optimize(query)
        assert result.cost > 0
        assert result.plan.tables() == frozenset(("part",))

    def test_six_way_join_enumerates(self, optimizer, schema):
        query = Query(
            "six",
            schema,
            ["region", "nation", "customer", "orders", "lineitem", "supplier"],
            joins=[
                JoinPredicate("nation", "n_regionkey", "region", "r_regionkey"),
                JoinPredicate("customer", "c_nationkey", "nation", "n_nationkey"),
                JoinPredicate("orders", "o_custkey", "customer", "c_custkey"),
                JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
                JoinPredicate("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            ],
        )
        result = optimizer.optimize(query)
        assert result.plan.tables() == frozenset(query.tables)

    def test_no_cross_products(self, optimizer, eq_query):
        """Every join node must carry at least one join predicate."""
        from repro.optimizer import Join

        result = optimizer.optimize(eq_query)
        for node in result.plan.postorder():
            if isinstance(node, Join):
                assert node.join_pids


class TestCostModels:
    def test_commercial_model_changes_plan_space(self, schema, statistics, eq_query):
        pg = Optimizer(schema, statistics)
        com = Optimizer(schema, statistics, COMMERCIAL_COST_MODEL)
        sel_pid = eq_query.selections[0].pid
        pg_sigs = set()
        com_sigs = set()
        for s in np.logspace(-4, 0, 20):
            pg_sigs.add(pg.optimize(eq_query, injected={sel_pid: float(s)}).signature)
            com_sigs.add(com.optimize(eq_query, injected={sel_pid: float(s)}).signature)
        assert pg_sigs != com_sigs

    def test_merge_join_respects_disable_flag(self, schema, statistics, eq_query):
        com = Optimizer(schema, statistics, COMMERCIAL_COST_MODEL)
        sel_pid = eq_query.selections[0].pid
        for s in np.logspace(-4, 0, 10):
            result = com.optimize(eq_query, injected={sel_pid: float(s)})
            assert "MJ(" not in result.signature


class TestAbstractCosting:
    def test_cost_matches_optimize_at_same_point(self, optimizer, eq_query):
        a = optimizer.estimated_assignment(eq_query)
        result = optimizer.optimize(eq_query, assignment=a)
        re_cost = optimizer.cost(eq_query, result.plan, a)
        assert re_cost.cost == pytest.approx(result.cost)
        assert re_cost.rows == pytest.approx(result.rows)
