"""Tests for aggregation: plan node, optimizer wrapping, parser, executor."""

import numpy as np
import pytest

from repro.executor import ExecutionEngine
from repro.exceptions import OptimizerError, QueryError
from repro.optimizer import (
    Aggregate,
    IndexLookup,
    SeqScan,
    cost_plan,
    explain,
    plan_from_dict,
    plan_to_dict,
)
from repro.optimizer.cost_model import POSTGRES_COST_MODEL
from repro.query import Query, SelectionPredicate, parse_query


class TestAggregateNode:
    def test_global_count_one_row(self, schema, eq_query):
        plan = Aggregate(SeqScan("part"))
        est = cost_plan(plan, schema, POSTGRES_COST_MODEL, {})
        assert est.rows == 1.0
        assert est.cost > 0

    def test_group_limit_caps_output(self, schema):
        # p_size is uniform in [1, 50]: the distinct hint caps groups.
        from repro.catalog.schema import Column, Schema, Table

        table = Table(
            "t", [Column("k", distinct=5), Column("v", "float")], 1000, "k"
        )
        little_schema = Schema("s", [table])
        plan = Aggregate(SeqScan("t"), (("t", "k"),))
        est = cost_plan(plan, little_schema, POSTGRES_COST_MODEL, {})
        assert est.rows == 5.0

    def test_no_hint_falls_back_to_table_rows(self, schema):
        plan = Aggregate(SeqScan("part"), (("part", "p_size"),))
        est = cost_plan(plan, schema, POSTGRES_COST_MODEL, {})
        assert est.rows <= schema.table("part").row_count

    def test_monotone_in_selectivity(self, schema, eq_query):
        pid = eq_query.selections[0].pid
        plan = Aggregate(SeqScan("part", (pid,)), (("part", "p_size"),))
        low = cost_plan(plan, schema, POSTGRES_COST_MODEL, {pid: 0.01})
        high = cost_plan(plan, schema, POSTGRES_COST_MODEL, {pid: 0.9})
        assert high.cost >= low.cost
        assert high.rows >= low.rows

    def test_rejects_index_lookup_child(self):
        with pytest.raises(OptimizerError):
            Aggregate(IndexLookup("part", "p_partkey"))

    def test_roundtrips_through_serialization(self):
        plan = Aggregate(SeqScan("part"), (("part", "p_brand"),))
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert rebuilt.signature() == plan.signature()


class TestQueryIntegration:
    def test_group_by_validated(self, schema):
        with pytest.raises(QueryError):
            Query("q", schema, ["part"], group_by=[("orders", "o_orderkey")])

    def test_optimizer_wraps_plan(self, optimizer, schema):
        query = Query(
            "agg_q",
            schema,
            ["part"],
            selections=[SelectionPredicate("part", "p_size", "<", 25.0)],
            group_by=[("part", "p_brand")],
        )
        result = optimizer.optimize(query)
        assert isinstance(result.plan, Aggregate)
        assert result.plan.group_columns == (("part", "p_brand"),)

    def test_sql_group_by_parses(self, schema):
        query = parse_query(
            "select count(*) from part where p_size < 25 group by p_brand",
            schema,
        )
        assert query.aggregate
        assert query.group_by == (("part", "p_brand"),)

    def test_sql_global_count_aggregates(self, schema):
        query = parse_query("select count(*) from part", schema)
        assert query.aggregate and not query.group_by

    def test_explain_labels_aggregate(self, optimizer, schema):
        query = parse_query(
            "select count(*) from part group by p_brand", schema
        )
        result = optimizer.optimize(query)
        text = explain(
            result.plan,
            schema,
            optimizer.cost_model,
            optimizer.estimated_assignment(query),
        )
        assert "HashAggregate" in text


class TestAggregateExecution:
    def test_global_count_matches_numpy(self, database, schema):
        engine = ExecutionEngine(database)
        query = parse_query("select count(*) from part where p_size < 25", schema)
        from repro.optimizer import Optimizer

        optimizer = Optimizer(schema)
        result = engine.execute(query, optimizer.optimize(query).plan, collect=True)
        expected = int((database.column("part", "p_size") < 25).sum())
        assert result.rows == 1
        assert int(result.result["count"][0]) == expected

    def test_grouped_counts_match_numpy(self, database, schema):
        engine = ExecutionEngine(database)
        query = parse_query(
            "select count(*) from part where p_size < 25 group by p_brand", schema
        )
        from repro.optimizer import Optimizer

        optimizer = Optimizer(schema)
        result = engine.execute(query, optimizer.optimize(query).plan, collect=True)
        sizes = database.column("part", "p_size")
        brands = database.column("part", "p_brand")[sizes < 25]
        uniques, counts = np.unique(brands, return_counts=True)
        assert result.rows == uniques.size
        got = dict(zip(result.result["part.p_brand"].tolist(), result.result["count"].tolist()))
        expected = dict(zip(uniques.tolist(), counts.tolist()))
        assert got == expected

    def test_grouped_join_aggregate(self, database, schema):
        """COUNT per brand over the EQ join pipeline, vs brute force."""
        engine = ExecutionEngine(database)
        sql = (
            "select count(*) from lineitem, part "
            "where p_partkey = l_partkey and p_retailprice < 1000 "
            "group by p_brand"
        )
        query = parse_query(sql, schema)
        from repro.optimizer import Optimizer, actual_selectivities

        optimizer = Optimizer(schema)
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        result = engine.execute(query, plan, collect=True)
        # Brute force with numpy.
        part = database.table("part")
        lineitem = database.table("lineitem")
        cheap = part["p_retailprice"] < 1000
        brand_of = dict(zip(part["p_partkey"].tolist(), part["p_brand"].tolist()))
        cheap_keys = set(part["p_partkey"][cheap].tolist())
        from collections import Counter

        counter = Counter(
            brand_of[k] for k in lineitem["l_partkey"].tolist() if k in cheap_keys
        )
        got = dict(
            zip(result.result["part.p_brand"].tolist(), result.result["count"].tolist())
        )
        assert got == dict(counter)

    def test_budgeted_aggregate_aborts(self, database, schema):
        engine = ExecutionEngine(database)
        query = parse_query("select count(*) from lineitem", schema)
        from repro.optimizer import Optimizer

        optimizer = Optimizer(schema)
        plan = optimizer.optimize(query).plan
        full = engine.execute(query, plan)
        partial = engine.execute(query, plan, budget=full.spent / 2)
        assert not partial.completed


class TestAggregateBouquet:
    def test_end_to_end_bouquet_on_aggregate_query(self, database, statistics, schema):
        """The whole pipeline works with an aggregate on top: error nodes
        sit below the Aggregate, so discovery is unaffected."""
        from repro.api import BouquetConfig, Catalog, compile_bouquet, execute

        catalog = Catalog(schema, statistics=statistics, database=database)
        compiled = compile_bouquet(
            "select count(*) from lineitem, orders, part "
            "where p_partkey = l_partkey and l_orderkey = o_orderkey "
            "and p_retailprice < 1000 group by p_brand",
            catalog,
            config=BouquetConfig(resolution=24),
        )
        result = execute(compiled, database, mode="optimized")
        assert result.completed
        # Rows = number of brands among qualifying parts.
        engine = ExecutionEngine(database)
        reference = engine.execute(
            compiled.query,
            compiled.bouquet.registry.plan(compiled.bouquet.plan_ids[-1]),
        )
        assert result.result_rows == reference.rows
