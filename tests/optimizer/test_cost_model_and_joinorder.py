"""Tests for cost-model value objects and join-enumeration internals."""

import pytest

from repro.optimizer.cost_model import (
    COMMERCIAL_COST_MODEL,
    POSTGRES_COST_MODEL,
    CostModel,
)
from repro.optimizer.joinorder import JoinEnumerator
from repro.query import JoinPredicate, Query


class TestCostModel:
    def test_defaults_are_postgres(self):
        model = CostModel()
        assert model.seq_page_cost == 1.0
        assert model.random_page_cost == 4.0
        assert model.cpu_tuple_cost == 0.01

    def test_with_overrides_returns_copy(self):
        base = POSTGRES_COST_MODEL
        tweaked = base.with_overrides(random_page_cost=1.1)
        assert tweaked.random_page_cost == 1.1
        assert base.random_page_cost == 4.0
        assert tweaked.seq_page_cost == base.seq_page_cost

    def test_commercial_differs_materially(self):
        assert COMMERCIAL_COST_MODEL.name == "com"
        assert not COMMERCIAL_COST_MODEL.enable_mergejoin
        assert COMMERCIAL_COST_MODEL.random_page_cost != POSTGRES_COST_MODEL.random_page_cost

    def test_frozen(self):
        with pytest.raises(Exception):
            POSTGRES_COST_MODEL.seq_page_cost = 9.0  # type: ignore[misc]


class TestJoinEnumeratorStructure:
    @pytest.fixture(scope="class")
    def chain_query(self, schema):
        return Query(
            "chain4",
            schema,
            ["region", "nation", "customer", "orders"],
            joins=[
                JoinPredicate("nation", "n_regionkey", "region", "r_regionkey"),
                JoinPredicate("customer", "c_nationkey", "nation", "n_nationkey"),
                JoinPredicate("orders", "o_custkey", "customer", "c_custkey"),
            ],
        )

    def test_partitions_only_connected_subsets(self, chain_query, schema):
        enum = JoinEnumerator(chain_query, schema)
        graph = chain_query.join_graph
        for subset, splits in enum._partitions.items():
            assert graph.is_connected(subset)
            for left, right, pids in splits:
                assert graph.is_connected(left)
                assert graph.is_connected(right)
                assert pids  # no cross products
                assert left | right == subset
                assert not (left & right)

    def test_chain_partition_counts(self, chain_query, schema):
        """A 4-chain has exactly 3 connected splits of the full set:
        {r}|{n,c,o}, {r,n}|{c,o}, {r,n,c}|{o}."""
        enum = JoinEnumerator(chain_query, schema)
        full = frozenset(chain_query.tables)
        assert len(enum._partitions[full]) == 3

    def test_full_set_covered(self, chain_query, schema):
        enum = JoinEnumerator(chain_query, schema)
        assert frozenset(chain_query.tables) in enum._partitions

    def test_star_has_more_splits_than_chain(self, lab):
        star = lab.workload["3D_DS_Q96"].query  # star(4)
        enum = JoinEnumerator(star, star.schema)
        full = frozenset(star.tables)
        # A 4-star's full set splits 3 ways off the hub plus... exactly the
        # subsets containing the hub: every split has the hub on one side.
        hub = "store_sales"
        for left, right, _ in enum._partitions[full]:
            assert (hub in left) != (hub in right) or True
            # The side without the hub must be a single satellite.
            other = right if hub in left else left
            assert len(other) == 1
