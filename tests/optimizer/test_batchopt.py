"""Batch compile kernel: ``optimize_batch`` must equal scalar ``optimize``.

The batch engine's contract is total: same plan id, same cost, same rows
at *every* slab location, because the frontier DP keeps every plan that
is cheapest somewhere in the slab and replicates the scalar DP's
tie-breaking per location.  These tests pin that contract on fixed
grids, degenerate slabs, aggregates, and hypothesis-random slabs, plus
the registry properties (structural dedup, thread safety) it rests on.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ess import ErrorDimension, PlanDiagram, SelectivitySpace
from repro.ess.posp import contour_focused_posp, resolve_engine
from repro.exceptions import EssError
from repro.optimizer import Optimizer, actual_selectivities
from repro.optimizer.optimizer import PlanRegistry
from repro.query import parse_query


def assert_batch_pins_scalar(optimizer, query, assignments):
    """The core contract: pointwise (plan id, cost, rows) equality."""
    batch = optimizer.optimize_batch(query, assignments)
    assert len(batch) == len(assignments)
    for result, assignment in zip(batch, assignments):
        scalar = optimizer.optimize(query, assignment=assignment)
        assert result.plan_id == scalar.plan_id
        assert result.cost == scalar.cost
        assert result.rows == scalar.rows
        assert result.signature == scalar.signature


class TestBatchMatchesScalar:
    def test_every_eq_space_location(self, optimizer, eq_query, eq_space):
        assignments = [
            eq_space.assignment_at(location) for location in eq_space.locations()
        ]
        assert_batch_pins_scalar(optimizer, eq_query, assignments)

    def test_single_location_slab(self, optimizer, eq_query, eq_space):
        assignments = [eq_space.assignment_at((17,))]
        assert_batch_pins_scalar(optimizer, eq_query, assignments)

    def test_empty_slab_returns_empty(self, optimizer, eq_query):
        assert optimizer.optimize_batch(eq_query, []) == []

    def test_resolution_two_grid(self, optimizer, eq_query, database):
        """The smallest legal grid: 2 points per dim, 2D over the EQ query."""
        base = actual_selectivities(eq_query, database)
        dims = [
            ErrorDimension(eq_query.selections[0].pid, 1e-4, 1.0, "sel"),
            ErrorDimension(eq_query.joins[0].pid, 1e-7, 1e-4, "join"),
        ]
        space = SelectivitySpace(eq_query, dims, 2, base)
        assignments = [
            space.assignment_at(location) for location in space.locations()
        ]
        assert len(assignments) == 4
        assert_batch_pins_scalar(optimizer, eq_query, assignments)

    def test_aggregate_query(self, schema, statistics, eq_space):
        query = parse_query(
            "select count(*) from lineitem, orders, part "
            "where p_partkey = l_partkey and l_orderkey = o_orderkey "
            "and p_retailprice < 1000 group by o_orderdate",
            schema,
        )
        optimizer = Optimizer(schema, statistics)
        base = optimizer.estimated_assignment(query)
        assignments = []
        for value in (1e-4, 0.01, 0.3, 1.0):
            assignment = dict(base)
            assignment[query.selections[0].pid] = value
            assignments.append(assignment)
        assert_batch_pins_scalar(optimizer, query, assignments)

    def test_single_table_query(self, schema, statistics):
        query = parse_query(
            "select * from part where p_retailprice < 1000", schema
        )
        optimizer = Optimizer(schema, statistics)
        pid = query.selections[0].pid
        assignments = [{pid: value} for value in (1e-4, 0.05, 0.5, 1.0)]
        assert_batch_pins_scalar(optimizer, query, assignments)


class TestHypothesisSlabs:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_slabs_pin_to_scalar(self, optimizer, eq_query, data):
        """Random 1D/2D/3D slabs: vary 1-3 of the EQ query's predicates
        with arbitrary selectivities; the batch kernel must still agree
        with the scalar optimizer everywhere."""
        pids = list(eq_query.predicate_ids)
        varying = data.draw(
            st.integers(min_value=1, max_value=len(pids)), label="dims"
        )
        base = optimizer.estimated_assignment(eq_query)
        length = data.draw(st.integers(min_value=1, max_value=6), label="slab")
        selectivity = st.floats(
            min_value=1e-6, max_value=1.0, allow_nan=False, exclude_min=False
        )
        assignments = []
        for index in range(length):
            assignment = dict(base)
            for pid in pids[:varying]:
                assignment[pid] = data.draw(selectivity, label=f"{pid}[{index}]")
            assignments.append(assignment)
        assert_batch_pins_scalar(optimizer, eq_query, assignments)


class TestRegistryDedup:
    def test_slab_winners_share_ids_with_scalar_path(
        self, optimizer, eq_query, eq_space
    ):
        """Structurally identical plans chosen at different locations
        deduplicate onto one id, and the ids are the ones the scalar
        path hands out for the same structures."""
        assignments = [
            eq_space.assignment_at(location) for location in eq_space.locations()
        ]
        batch = optimizer.optimize_batch(eq_query, assignments)
        by_signature = {}
        for result in batch:
            by_signature.setdefault(result.signature, set()).add(result.plan_id)
        for signature, ids in by_signature.items():
            assert len(ids) == 1, f"signature maps to multiple ids: {signature}"

    def test_canonical_returns_shared_instance(self, optimizer, eq_query, eq_space):
        registry = optimizer.registry(eq_query)
        result = optimizer.optimize(
            eq_query, assignment=eq_space.assignment_at((0,))
        )
        canonical = registry.canonical(result.plan)
        assert canonical is registry.plan(result.plan_id)


class TestPlanRegistryThreadSafety:
    def test_concurrent_registration_is_consistent(
        self, optimizer, eq_query, eq_space
    ):
        """Hammer one registry from many threads with a mix of repeated
        structures; ids must come out unique per signature, stable, and
        the registry internally consistent."""
        plans = []
        for location in [(0,), (15,), (31,), (47,), (63,)]:
            plans.append(
                optimizer.optimize(
                    eq_query, assignment=eq_space.assignment_at(location)
                ).plan
            )
        registry = PlanRegistry()
        results = [[] for _ in range(8)]
        errors = []
        barrier = threading.Barrier(8)

        def worker(slot):
            try:
                barrier.wait()
                for _ in range(50):
                    for plan in plans:
                        results[slot].append(registry.register(plan))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every thread saw the same signature -> id mapping.
        mapping = {}
        for rows in results:
            for plan_id, signature in rows:
                mapping.setdefault(signature, set()).add(plan_id)
        assert all(len(ids) == 1 for ids in mapping.values())
        assert len(registry) == len(mapping)
        for ids in mapping.values():
            (plan_id,) = ids
            assert registry.plan(plan_id) is not None

    def test_registry_survives_pickling(self):
        import pickle

        registry = PlanRegistry()
        clone = pickle.loads(pickle.dumps(registry))
        assert len(clone) == 0
        # The lock is rebuilt, not pickled: registration still works.
        from repro.optimizer import SeqScan

        plan_id, _ = clone.register(SeqScan("part"))
        assert clone.plan(plan_id).signature() == SeqScan("part").signature()


class TestEngineEquality:
    def _fresh(self, optimizer):
        return Optimizer(optimizer.schema, optimizer.statistics)

    def test_exhaustive_engines_byte_identical(self, optimizer, eq_space):
        reference = PlanDiagram.exhaustive(
            self._fresh(optimizer), eq_space, engine="reference"
        )
        batch = PlanDiagram.exhaustive(
            self._fresh(optimizer), eq_space, engine="batch"
        )
        assert np.array_equal(reference.plan_ids, batch.plan_ids)
        assert np.array_equal(reference.costs, batch.costs)
        assert reference.posp_plan_ids == batch.posp_plan_ids

    def test_contour_band_engines_byte_identical(self, optimizer, eq_space, eq_diagram):
        from repro.core.contours import contour_costs

        costs = contour_costs(eq_diagram.cmin, eq_diagram.cmax)
        reference = contour_focused_posp(
            self._fresh(optimizer), eq_space, costs, engine="reference"
        )
        batch = contour_focused_posp(
            self._fresh(optimizer), eq_space, costs, engine="batch"
        )
        assert reference.optimized == batch.optimized
        assert reference.optimizer_calls == batch.optimizer_calls
        assert reference.pruned_boxes == batch.pruned_boxes
        assert reference.engine == "reference" and batch.engine == "batch"

    def test_unknown_engine_rejected(self, optimizer, eq_space):
        with pytest.raises(EssError):
            PlanDiagram.exhaustive(optimizer, eq_space, engine="warp")

    def test_engine_degrades_for_duck_typed_optimizer(self):
        class ScalarOnly:
            def optimize(self, *a, **k):  # pragma: no cover - not called
                raise AssertionError

        assert resolve_engine(ScalarOnly(), "batch") == "reference"
        with pytest.raises(EssError):
            resolve_engine(ScalarOnly(), "warp")


class TestParallelBatch:
    def test_parallel_batch_matches_serial(self, optimizer, eq_space, eq_diagram):
        fresh = Optimizer(optimizer.schema, optimizer.statistics)
        parallel = PlanDiagram.exhaustive(
            fresh, eq_space, workers=2, engine="batch"
        )
        assert np.array_equal(parallel.costs, eq_diagram.costs)
        for location in [(0,), (20,), (40,), (63,)]:
            serial_sig = eq_diagram.registry.plan(
                eq_diagram.plan_at(location)
            ).canonical_signature()
            parallel_sig = parallel.registry.plan(
                parallel.plan_at(location)
            ).canonical_signature()
            assert serial_sig == parallel_sig
