"""Unit + property tests for plan trees and abstract costing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import OptimizerError
from repro.optimizer import (
    IndexLookup,
    IndexScan,
    Join,
    SeqScan,
    cost_plan,
    error_node_depth,
    first_error_node,
    spilled_cost,
)
from repro.optimizer.cost_model import POSTGRES_COST_MODEL


@pytest.fixture(scope="module")
def eq_plan_parts(eq_query):
    """A hand-built plan for EQ: HJ(HJ(SS(lineitem), SS(orders)), IS(part))."""
    sel_pid = eq_query.selections[0].pid
    j_lp = next(j for j in eq_query.joins if "part" in j.tables).pid
    j_lo = next(j for j in eq_query.joins if "orders" in j.tables).pid
    scan_l = SeqScan("lineitem")
    scan_o = SeqScan("orders")
    scan_p = IndexScan("part", sel_pid)
    inner = Join("hash", scan_l, scan_o, (j_lo,))
    plan = Join("hash", inner, scan_p, (j_lp,))
    return plan, sel_pid, j_lp, j_lo


def assignment_for(eq_query, sel=0.1, j1=1e-3, j2=1e-4):
    pids = eq_query.predicate_ids
    values = {}
    for pid in pids:
        if pid.startswith("sel:"):
            values[pid] = sel
        elif "part" in pid:
            values[pid] = j1
        else:
            values[pid] = j2
    return values


class TestCosting:
    def test_seq_scan_rows_and_cost(self, schema, eq_query):
        scan = SeqScan("part", (eq_query.selections[0].pid,))
        est = cost_plan(scan, schema, POSTGRES_COST_MODEL, assignment_for(eq_query, sel=0.25))
        assert est.rows == pytest.approx(0.25 * schema.table("part").row_count)
        assert est.cost > schema.table("part").pages  # at least the I/O

    def test_index_scan_beats_seq_scan_at_low_selectivity(self, schema, eq_query):
        pid = eq_query.selections[0].pid
        seq = SeqScan("part", (pid,))
        idx = IndexScan("part", pid)
        lo = assignment_for(eq_query, sel=1e-4)
        hi = assignment_for(eq_query, sel=0.9)
        assert (
            cost_plan(idx, schema, POSTGRES_COST_MODEL, lo).cost
            < cost_plan(seq, schema, POSTGRES_COST_MODEL, lo).cost
        )
        assert (
            cost_plan(idx, schema, POSTGRES_COST_MODEL, hi).cost
            > cost_plan(seq, schema, POSTGRES_COST_MODEL, hi).cost
        )

    def test_join_output_cardinality(self, schema, eq_query, eq_plan_parts):
        plan, sel_pid, j_lp, j_lo = eq_plan_parts
        a = assignment_for(eq_query)
        est = cost_plan(plan, schema, POSTGRES_COST_MODEL, a)
        n_l = schema.table("lineitem").row_count
        n_o = schema.table("orders").row_count
        n_p = schema.table("part").row_count
        expected = n_l * n_o * a[j_lo] * n_p * a[sel_pid] * a[j_lp]
        assert est.rows == pytest.approx(expected, rel=1e-9)

    def test_missing_selectivity_raises(self, schema, eq_query, eq_plan_parts):
        plan, *_ = eq_plan_parts
        with pytest.raises(OptimizerError):
            cost_plan(plan, schema, POSTGRES_COST_MODEL, {})

    def test_index_lookup_cannot_cost_standalone(self, schema, eq_query):
        lookup = IndexLookup("part", "p_partkey")
        with pytest.raises(OptimizerError):
            cost_plan(lookup, schema, POSTGRES_COST_MODEL, assignment_for(eq_query))

    @given(
        s1=st.floats(min_value=1e-6, max_value=1.0),
        s2=st.floats(min_value=1e-6, max_value=1.0),
        bump=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_pcm_monotonicity(self, schema, eq_query, eq_plan_parts, s1, s2, bump):
        """Plan Cost Monotonicity: raising any selectivity never lowers cost."""
        plan, sel_pid, j_lp, j_lo = eq_plan_parts
        base = assignment_for(eq_query, sel=s1, j1=s2 * 1e-3, j2=1e-4)
        for pid in (sel_pid, j_lp, j_lo):
            bumped = dict(base)
            bumped[pid] = min(1.0, base[pid] * bump)
            c0 = cost_plan(plan, schema, POSTGRES_COST_MODEL, base).cost
            c1 = cost_plan(plan, schema, POSTGRES_COST_MODEL, bumped).cost
            assert c1 >= c0 * (1 - 1e-12)


class TestStructure:
    def test_signature_distinguishes_algorithms(self, eq_query, eq_plan_parts):
        plan, sel_pid, j_lp, j_lo = eq_plan_parts
        other = Join(
            "merge", plan.left, IndexScan("part", sel_pid), (j_lp,)
        )
        assert plan.signature() != other.signature()
        assert plan.signature() == Join(
            "hash", plan.left, IndexScan("part", sel_pid), (j_lp,)
        ).signature()

    def test_postorder_children_first(self, eq_plan_parts):
        plan, *_ = eq_plan_parts
        order = list(plan.postorder())
        assert order[-1] is plan
        assert order.index(plan.left) < order.index(plan)

    def test_all_pids(self, eq_query, eq_plan_parts):
        plan, *_ = eq_plan_parts
        assert plan.all_pids() == frozenset(eq_query.predicate_ids)

    def test_join_validation(self, eq_plan_parts):
        plan, sel_pid, j_lp, _ = eq_plan_parts
        with pytest.raises(OptimizerError):
            Join("bogus", plan.left, plan.right, (j_lp,))
        with pytest.raises(OptimizerError):
            Join("inl", plan.left, SeqScan("part"), (j_lp,))
        with pytest.raises(OptimizerError):
            Join("hash", plan.left, IndexLookup("part", "p_partkey"), (j_lp,))
        with pytest.raises(OptimizerError):
            Join("hash", plan.left, plan.right, ())


class TestErrorNodeUtilities:
    def test_first_error_node_in_execution_order(self, eq_query, eq_plan_parts):
        plan, sel_pid, j_lp, j_lo = eq_plan_parts
        # j_lo is evaluated at the inner hash join, which executes first.
        node = first_error_node(plan, frozenset((j_lo, j_lp)))
        assert j_lo in node.local_pids
        # Only the top join evaluates j_lp.
        node2 = first_error_node(plan, frozenset((j_lp,)))
        assert node2 is plan

    def test_first_error_node_none(self, eq_plan_parts):
        plan, *_ = eq_plan_parts
        assert first_error_node(plan, frozenset(("ghost",))) is None

    def test_error_node_depth(self, eq_query, eq_plan_parts):
        plan, sel_pid, j_lp, j_lo = eq_plan_parts
        assert error_node_depth(plan, frozenset((j_lp,))) == 0  # at the root
        assert error_node_depth(plan, frozenset((sel_pid,))) == 1  # part scan
        assert error_node_depth(plan, frozenset(("ghost",))) == -1

    def test_spilled_cost_less_than_full(self, schema, eq_query, eq_plan_parts):
        plan, sel_pid, j_lp, j_lo = eq_plan_parts
        a = assignment_for(eq_query)
        full = cost_plan(plan, schema, POSTGRES_COST_MODEL, a).cost
        spill, learned = spilled_cost(
            plan, schema, POSTGRES_COST_MODEL, a, frozenset((sel_pid,))
        )
        assert learned == frozenset((sel_pid,))
        assert spill < full

    def test_spilled_cost_no_error_node_falls_back_to_full(
        self, schema, eq_query, eq_plan_parts
    ):
        plan, *_ = eq_plan_parts
        a = assignment_for(eq_query)
        full = cost_plan(plan, schema, POSTGRES_COST_MODEL, a).cost
        spill, learned = spilled_cost(
            plan, schema, POSTGRES_COST_MODEL, a, frozenset(("ghost",))
        )
        assert spill == pytest.approx(full)
        assert learned == frozenset()


class TestPlanTablesInOrder:
    def test_execution_order_listing(self, eq_plan_parts):
        from repro.optimizer.plans import plan_tables_in_order

        plan, *_ = eq_plan_parts
        # HJ(HJ(SS(lineitem), SS(orders)), IS(part)): post-order leaves.
        assert plan_tables_in_order(plan) == ["lineitem", "orders", "part"]
