"""Tests for database generation, statistics building, and ground truth."""

import numpy as np
import pytest

from repro.catalog import tpch_generator_spec
from repro.datagen import Database
from repro.exceptions import CatalogError


class TestGeneration:
    def test_row_counts_match_catalog(self, schema, database):
        for name in schema.table_names:
            for column, array in database.table(name).items():
                assert array.size == schema.table(name).row_count

    def test_deterministic_in_seed(self, schema):
        spec = tpch_generator_spec(0.003)
        a = Database.generate(schema, spec, seed=7)
        b = Database.generate(schema, spec, seed=7)
        assert np.array_equal(a.column("part", "p_retailprice"), b.column("part", "p_retailprice"))

    def test_different_seeds_differ(self, schema):
        spec = tpch_generator_spec(0.003)
        a = Database.generate(schema, spec, seed=1)
        b = Database.generate(schema, spec, seed=2)
        assert not np.array_equal(a.column("part", "p_retailprice"), b.column("part", "p_retailprice"))

    def test_fk_integrity(self, database, schema):
        """Generated FK values always reference existing parent keys."""
        for fk in schema.foreign_keys:
            child = database.column(fk.child_table, fk.child_column)
            parent = database.column(fk.parent_table, fk.parent_column)
            assert np.isin(child, parent).all(), str(fk)

    def test_missing_spec_rejected(self, schema):
        with pytest.raises(CatalogError):
            Database.generate(schema, {}, seed=1)

    def test_unknown_table_lookup(self, database):
        with pytest.raises(CatalogError):
            database.table("ghost")
        with pytest.raises(CatalogError):
            database.column("part", "ghost")


class TestGroundTruth:
    def test_selection_selectivity_matches_numpy(self, database):
        arr = database.column("part", "p_retailprice")
        expected = float(np.mean(arr < 1200.0))
        got = database.actual_selection_selectivity("part", "p_retailprice", "<", 1200.0)
        assert got == pytest.approx(expected)

    def test_equality_selectivity(self, database):
        arr = database.column("part", "p_size")
        value = int(arr[0])
        expected = float(np.mean(arr == value))
        got = database.actual_selection_selectivity("part", "p_size", "=", value)
        assert got == pytest.approx(expected)

    def test_join_selectivity_counts_matches(self, database, schema):
        """|L join R| / (|L|*|R|) computed two ways must agree."""
        left = database.column("lineitem", "l_partkey")
        right = database.column("part", "p_partkey")
        matches = 0
        right_set = {}
        for v in right:
            right_set[v] = right_set.get(v, 0) + 1
        for v in left[:500]:  # brute force on a prefix
            matches += right_set.get(v, 0)
        brute = matches / (500 * right.size)
        got = database.actual_join_selectivity("lineitem", "l_partkey", "part", "p_partkey")
        # The prefix estimate should be in the same ballpark.
        assert got == pytest.approx(brute, rel=0.5)

    def test_pk_fk_join_selectivity_is_reciprocal_of_pk(self, database, schema):
        """Every lineitem row matches exactly one order, so the join
        selectivity is exactly 1/|orders|."""
        got = database.actual_join_selectivity(
            "lineitem", "l_orderkey", "orders", "o_orderkey"
        )
        assert got == pytest.approx(1.0 / schema.table("orders").row_count)


class TestStatisticsBuilding:
    def test_full_stats_cover_all_columns(self, database, schema):
        stats = database.build_statistics()
        for name in schema.table_names:
            for column in schema.table(name).column_names:
                assert stats.column(name, column) is not None

    def test_sampled_stats_row_counts_exact(self, database, statistics, schema):
        # Row counts come from the catalog, not the sample.
        assert statistics.row_count("lineitem") == schema.table("lineitem").row_count
