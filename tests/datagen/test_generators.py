"""Unit tests for the synthetic column generators."""

import numpy as np
import pytest

from repro.datagen.generators import (
    CorrelatedFloat,
    DateRange,
    DictionaryString,
    ForeignKeyRef,
    SequentialKey,
    UniformFloat,
    UniformInt,
    ZipfInt,
)
from repro.exceptions import CatalogError


def rng():
    return np.random.default_rng(0)


class TestSequentialKey:
    def test_dense_keys(self):
        values = SequentialKey().generate(10, rng())
        assert list(values) == list(range(1, 11))

    def test_custom_start(self):
        assert SequentialKey(start=5).generate(3, rng())[0] == 5


class TestUniform:
    def test_int_bounds(self):
        values = UniformInt(3, 7).generate(10_000, rng())
        assert values.min() >= 3 and values.max() <= 7

    def test_int_rejects_inverted_bounds(self):
        with pytest.raises(CatalogError):
            UniformInt(7, 3).generate(10, rng())

    def test_float_bounds(self):
        values = UniformFloat(0.5, 1.5).generate(10_000, rng())
        assert values.min() >= 0.5 and values.max() < 1.5
        assert values.mean() == pytest.approx(1.0, abs=0.05)


class TestZipfInt:
    def test_head_dominates(self):
        values = ZipfInt(100, exponent=1.5).generate(50_000, rng())
        _, counts = np.unique(values, return_counts=True)
        top = counts.max() / values.size
        assert top > 0.2  # rank-1 value is heavily over-represented

    def test_value_range(self):
        values = ZipfInt(10, low=100).generate(1000, rng())
        assert values.min() >= 100 and values.max() <= 109

    def test_rejects_empty_domain(self):
        with pytest.raises(CatalogError):
            ZipfInt(0).generate(10, rng())


class TestForeignKeyRef:
    def test_uniform_refs_in_range(self):
        values = ForeignKeyRef(50).generate(5000, rng())
        assert values.min() >= 1 and values.max() <= 50

    def test_skew_concentrates_references(self):
        uniform = ForeignKeyRef(1000, skew=0.0).generate(50_000, rng())
        skewed = ForeignKeyRef(1000, skew=1.0).generate(50_000, rng())
        u_top = np.unique(uniform, return_counts=True)[1].max()
        s_top = np.unique(skewed, return_counts=True)[1].max()
        assert s_top > 3 * u_top

    def test_rejects_empty_parent(self):
        with pytest.raises(CatalogError):
            ForeignKeyRef(0).generate(10, rng())


class TestCorrelatedFloat:
    def test_correlation_materializes(self):
        base = np.random.default_rng(1).uniform(0, 50, size=20_000)
        gen = CorrelatedFloat("base", 0.0, 100.0, correlation=0.9)
        values = gen.generate_correlated(base, base.size, rng())
        corr = np.corrcoef(base, values)[0, 1]
        assert corr > 0.8

    def test_range_respected(self):
        base = np.random.default_rng(1).uniform(0, 50, size=1000)
        values = CorrelatedFloat("base", 10.0, 20.0, 0.5).generate_correlated(
            base, base.size, rng()
        )
        assert values.min() >= 10.0 and values.max() <= 20.0

    def test_direct_generate_rejected(self):
        with pytest.raises(CatalogError):
            CorrelatedFloat("base", 0.0, 1.0).generate(10, rng())

    def test_length_mismatch_rejected(self):
        with pytest.raises(CatalogError):
            CorrelatedFloat("base", 0.0, 1.0).generate_correlated(
                np.zeros(5), 10, rng()
            )


class TestDictionaryAndDates:
    def test_dictionary_codes_in_range(self):
        values = DictionaryString(5).generate(1000, rng())
        assert set(np.unique(values)) <= set(range(5))

    def test_date_range(self):
        values = DateRange(100, 200).generate(1000, rng())
        assert values.min() >= 100 and values.max() <= 200

    def test_date_rejects_inverted(self):
        with pytest.raises(CatalogError):
            DateRange(10, 5).generate(10, rng())
