"""Shared fixtures: a small deterministic TPC-H world and a tiny Lab.

Everything is session-scoped — construction is deterministic, so sharing
artifacts across tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Lab
from repro.catalog import tpch_generator_spec, tpch_schema
from repro.datagen import Database
from repro.ess import ErrorDimension, PlanDiagram, SelectivitySpace
from repro.optimizer import Optimizer, actual_selectivities
from repro.query import JoinPredicate, Query, SelectionPredicate

SCALE = 0.003


@pytest.fixture(scope="session")
def schema():
    return tpch_schema(SCALE)


@pytest.fixture(scope="session")
def database(schema):
    return Database.generate(schema, tpch_generator_spec(SCALE), seed=7)


@pytest.fixture(scope="session")
def statistics(database):
    return database.build_statistics(sample_size=1500, seed=3)


@pytest.fixture(scope="session")
def optimizer(schema, statistics):
    return Optimizer(schema, statistics)


@pytest.fixture(scope="session")
def eq_query(schema):
    return Query(
        "EQ",
        schema,
        ["lineitem", "orders", "part"],
        selections=[SelectionPredicate("part", "p_retailprice", "<", 1000.0)],
        joins=[
            JoinPredicate("part", "p_partkey", "lineitem", "l_partkey"),
            JoinPredicate("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ],
    )


@pytest.fixture(scope="session")
def eq_space(eq_query, database):
    base = actual_selectivities(eq_query, database)
    dim = ErrorDimension(eq_query.selections[0].pid, 1e-4, 1.0, "p_retailprice")
    return SelectivitySpace(eq_query, [dim], 64, base)


@pytest.fixture(scope="session")
def eq_diagram(optimizer, eq_space):
    return PlanDiagram.exhaustive(optimizer, eq_space)


@pytest.fixture(scope="session")
def eq_bouquet(eq_diagram):
    from repro.core import identify_bouquet

    return identify_bouquet(eq_diagram)


@pytest.fixture(scope="session")
def lab():
    """A miniature Lab: tiny scale and coarse grids for fast multi-D tests."""
    return Lab(
        tpch_scale=0.002,
        tpcds_scale=0.002,
        stats_sample=1000,
        resolutions={1: 40, 2: 12, 3: 7, 4: 5, 5: 4},
    )
