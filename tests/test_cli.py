"""Tests for the command-line interface."""

import os

from repro.cli import main

ENV = ["--benchmark", "tpch", "--scale", "0.002", "--seed", "7", "--stats-sample", "800"]
EQ_SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


class TestSchemaCommand:
    def test_lists_tables(self, capsys):
        assert main(["schema"] + ENV) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out and "rows=" in out
        assert "foreign keys: 8" in out

    def test_tpcds_environment(self, capsys):
        assert main(["schema", "--benchmark", "tpcds", "--scale", "0.002"]) == 0
        assert "store_sales" in capsys.readouterr().out


class TestExplainCommand:
    def test_prints_plan(self, capsys):
        assert main(["explain"] + ENV + [EQ_SQL]) == 0
        out = capsys.readouterr().out
        assert "Query" in out
        assert "cost=" in out and "rows=" in out

    def test_bad_sql_fails_gracefully(self, capsys):
        assert main(["explain"] + ENV + ["drop table part"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompileCommand:
    def test_compile_and_validate(self, capsys):
        code = main(
            ["compile"] + ENV + [EQ_SQL, "--resolution", "24", "--validate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Plan bouquet" in out
        assert "bouquet validation: OK" in out

    def test_compile_and_save(self, capsys, tmp_path):
        path = os.path.join(tmp_path, "b.json")
        code = main(
            ["compile"] + ENV + [EQ_SQL, "--resolution", "24", "--save", path]
        )
        assert code == 0
        assert os.path.exists(path)


class TestRunCommand:
    def test_run_inline(self, capsys):
        code = main(["run"] + ENV + [EQ_SQL, "--resolution", "24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "result:" in out and "rows" in out
        assert "IC1" in out

    def test_run_with_concurrent_crossing(self, capsys):
        code = main(
            ["run"] + ENV + [EQ_SQL, "--resolution", "24", "--crossing", "concurrent"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "result:" in out
        assert "concurrent" in out and "elapsed" in out

    def test_run_from_saved_artifact(self, capsys, tmp_path):
        path = os.path.join(tmp_path, "b.json")
        assert (
            main(["compile"] + ENV + [EQ_SQL, "--resolution", "24", "--save", path])
            == 0
        )
        capsys.readouterr()
        code = main(["run"] + ENV + [EQ_SQL, "--load", path, "--mode", "basic"])
        assert code == 0
        assert "result:" in capsys.readouterr().out

    def test_deterministic_across_invocations(self, capsys):
        main(["run"] + ENV + [EQ_SQL, "--resolution", "24"])
        first = capsys.readouterr().out
        main(["run"] + ENV + [EQ_SQL, "--resolution", "24"])
        second = capsys.readouterr().out
        assert first == second


class TestTraceCommand:
    def test_run_writes_trace_and_summarizes(self, capsys, tmp_path):
        path = os.path.join(tmp_path, "trace.jsonl")
        code = main(
            ["run"] + ENV + [EQ_SQL, "--resolution", "24", "--trace", path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out
        assert os.path.exists(path)
        code = main(["trace", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-contour execution account" in out
        assert "optimizer." in out
        assert "IC" in out

    def test_missing_trace_file_fails_gracefully(self, capsys, tmp_path):
        code = main(["trace", os.path.join(tmp_path, "nope.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestAdviseCommand:
    def test_recommends_bouquet_for_hard_query(self, capsys):
        # A many-to-many (non-FK) join is high-uncertainty.
        code = main(
            ["advise"]
            + ENV
            + ["select * from lineitem, partsupp where l_suppkey = ps_suppkey"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended mode: bouquet" in out

    def test_update_flag_recommends_native(self, capsys):
        code = main(["advise"] + ENV + [EQ_SQL, "--update"])
        assert code == 0
        assert "recommended mode: native" in capsys.readouterr().out
