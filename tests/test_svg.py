"""Tests for the SVG plotting backend."""

import numpy as np

from repro.bench.svg import SvgCanvas, diagram_map, grouped_log_bars, loglog_chart


class TestCanvas:
    def test_render_well_formed(self):
        canvas = SvgCanvas(100, 80)
        canvas.line(0, 0, 10, 10)
        canvas.text(5, 5, "a < b & c")
        svg = canvas.render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "a &lt; b &amp; c" in svg  # escaping

    def test_save(self, tmp_path):
        path = str(tmp_path / "x.svg")
        SvgCanvas().save(path)
        with open(path) as handle:
            assert "<svg" in handle.read()

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET

        canvas = SvgCanvas()
        canvas.rect(1, 2, 3, 4, fill="#000", title="cell (1,2)")
        canvas.circle(5, 5, 2, "#123456")
        canvas.polyline([(0, 0), (1, 1)], "#abc")
        ET.fromstring(canvas.render())  # raises on malformed XML


class TestCharts:
    def test_loglog_chart_contains_series(self):
        svg = loglog_chart(
            {"PIC": ([1e-4, 1e-2, 1.0], [10.0, 100.0, 1000.0])},
            "t", "x", "y", hlines=[50.0, 500.0],
        ).render()
        assert "polyline" in svg
        assert svg.count("stroke-dasharray") == 2  # the two hlines
        import xml.etree.ElementTree as ET

        ET.fromstring(svg)

    def test_grouped_log_bars(self):
        svg = grouped_log_bars(
            ["q1", "q2"], {"NAT": [100.0, 2000.0], "BOU": [3.0, 10.0]},
            "t", "MSO",
        ).render()
        # 4 bars plus background and legend rects.
        assert svg.count("<rect") >= 5
        assert "q1" in svg and "NAT" in svg

    def test_grouped_bars_skip_nonpositive(self):
        svg = grouped_log_bars(["q"], {"A": [0.0], "B": [5.0]}, "t", "y").render()
        assert "B: 5" in svg

    def test_diagram_map(self):
        plan_ids = np.array([[1, 1, 2], [1, 2, 2], [3, 3, 3]])
        svg = diagram_map(plan_ids, "map", contour_cells={(1, 1)}).render()
        assert "P1" in svg and "P3" in svg
        assert "<circle" in svg  # the contour marker
        import xml.etree.ElementTree as ET

        ET.fromstring(svg)
