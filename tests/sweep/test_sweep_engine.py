"""The sweep engine must be an exact, faster replica of the reference
per-location optimized driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulation import optimized_cost_field, simulate_at
from repro.sweep import (
    SweepEngine,
    optimized_field_array,
    run_residue,
    sweep_cost_field,
)
from repro.sweep.memo import sweep_cache

RTOL = 1e-9


def _reference_field(bouquet):
    ref = optimized_cost_field(bouquet, engine="reference")
    shape = bouquet.space.shape
    out = np.empty(shape)
    for loc, total in ref.items():
        out[loc] = total
    return out


@pytest.fixture(scope="module")
def q3d(lab):
    return lab.build("3D_H_Q5")


class TestFieldEquality:
    def test_1d_matches_reference(self, eq_bouquet):
        field = SweepEngine(eq_bouquet).cost_field()
        np.testing.assert_allclose(
            field, _reference_field(eq_bouquet), rtol=RTOL, atol=0.0
        )

    def test_3d_matches_reference(self, q3d):
        field = SweepEngine(q3d.bouquet).cost_field()
        np.testing.assert_allclose(
            field, _reference_field(q3d.bouquet), rtol=RTOL, atol=0.0
        )

    def test_subset_locations_dict_contract(self, q3d):
        locations = [(0, 0, 0), (2, 4, 6), (6, 6, 6), (3, 1, 5)]
        swept = sweep_cost_field(q3d.bouquet, locations=locations)
        assert set(swept) == set(locations)
        for loc in locations:
            ref = simulate_at(q3d.bouquet, loc, mode="optimized").total_cost
            assert swept[loc] == pytest.approx(ref, rel=RTOL)

    def test_default_engine_is_sweep_and_matches_reference(self, q3d):
        swept = optimized_cost_field(q3d.bouquet)
        ref = optimized_cost_field(q3d.bouquet, engine="reference")
        assert set(swept) == set(ref)
        for loc, total in ref.items():
            assert swept[loc] == pytest.approx(total, rel=RTOL)

    def test_residue_only_path_matches_batched(self, q3d):
        batched = SweepEngine(q3d.bouquet).cost_field()
        residue = SweepEngine(q3d.bouquet, residue_min=10**9)
        residue.cache.invalidate()
        np.testing.assert_allclose(
            residue.cost_field(), batched, rtol=RTOL, atol=0.0
        )


class TestEngineMechanics:
    def test_totals_memo_short_circuits(self, q3d):
        engine = SweepEngine(q3d.bouquet)
        first = engine.cost_field()
        cache = sweep_cache(q3d.bouquet)
        costings_after_first = cache.coster.batched_costings
        second = engine.cost_field()
        assert np.array_equal(first, second)
        # The second sweep is answered from the totals memo: no new
        # batched costings at all.
        assert cache.coster.batched_costings == costings_after_first

    def test_refresh_invalidates_totals(self, q3d):
        engine = SweepEngine(q3d.bouquet)
        first = engine.cost_field()
        second = engine.cost_field(refresh=True)
        # The memoized field may have been produced by the reference
        # residue path in an earlier test; a refreshed batched sweep
        # agrees to rounding, not bit-exactly.
        np.testing.assert_allclose(first, second, rtol=RTOL, atol=0.0)

    def test_crossing_knob_reaches_residue(self, q3d):
        field = SweepEngine(q3d.bouquet, crossing="concurrent").cost_field()
        loc = (3, 3, 3)
        ref = simulate_at(
            q3d.bouquet, loc, mode="optimized", crossing="concurrent"
        ).total_cost
        assert field[loc] == pytest.approx(ref, rel=RTOL)

    def test_crossing_memos_are_isolated(self, q3d):
        sequential = SweepEngine(q3d.bouquet).cost_field()
        concurrent = SweepEngine(q3d.bouquet, crossing="concurrent").cost_field()
        again = SweepEngine(q3d.bouquet).cost_field()
        np.testing.assert_array_equal(sequential, again)
        # Concurrent crossing reschedules executions, so the fields differ
        # somewhere (and must not leak into the sequential memo).
        assert not np.allclose(sequential, concurrent, rtol=1e-6)

    def test_sharded_residue_matches_serial(self, q3d):
        locations = [(0, 0, 0), (1, 2, 3), (6, 6, 6), (4, 4, 0), (2, 5, 1)]
        serial = run_residue(q3d.bouquet, locations)
        sharded = run_residue(q3d.bouquet, locations, workers=2)
        assert set(serial) == set(sharded)
        for loc in locations:
            assert sharded[loc] == pytest.approx(serial[loc], rel=RTOL)

    def test_array_entry_point_shape(self, q3d):
        field = optimized_field_array(q3d.bouquet)
        assert field.shape == q3d.space.shape
        assert (field > 0).all()


class TestPropertyEquality:
    """Hypothesis: engine totals == per-location simulate_at totals for
    arbitrary location samples, with the cohort machinery forced on
    (residue_min=1) so every location flows through batching."""

    @given(data=st.data(), dims=st.sampled_from([1, 3]))
    @settings(max_examples=10, deadline=None)
    def test_engine_matches_simulate_at(self, lab, eq_bouquet, data, dims):
        bouquet = eq_bouquet if dims == 1 else lab.build("3D_H_Q5").bouquet
        shape = bouquet.space.shape
        locations = data.draw(
            st.lists(
                st.tuples(
                    *(st.integers(min_value=0, max_value=r - 1) for r in shape)
                ),
                min_size=1,
                max_size=8,
                unique=True,
            )
        )
        engine = SweepEngine(bouquet, residue_min=1)
        engine.cache.invalidate()
        totals = engine.totals(locations)
        for loc, total in zip(locations, totals):
            ref = simulate_at(bouquet, loc, mode="optimized").total_cost
            assert total == pytest.approx(ref, rel=RTOL)
