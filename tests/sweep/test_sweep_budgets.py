"""Cohort batching must preserve the λ-inflated budget semantics:
every failed execution charges exactly ``(1+λ) * IC_k`` — the contour
budget, not the raw contour cost (Figure 7 discipline, carried over to
the Figure 13 driver)."""

import dataclasses

import numpy as np
import pytest

from repro.core import identify_bouquet
from repro.core.simulation import optimized_cost_field, simulate_at
from repro.sweep import SweepEngine

RTOL = 1e-9


def _with_lambda(bouquet, lambda_):
    """Same contours/plans, rescaled budgets (isolates budget semantics
    from the anorexic-reduction structural changes λ normally drives)."""
    budgets = [(1.0 + lambda_) * contour.cost for contour in bouquet.contours]
    return dataclasses.replace(bouquet, budgets=budgets, lambda_=lambda_)


@pytest.mark.parametrize("lambda_", [0.0, 0.5])
def test_engine_matches_reference_under_lambda(eq_bouquet, lambda_):
    bouquet = _with_lambda(eq_bouquet, lambda_)
    swept = optimized_cost_field(bouquet)
    ref = optimized_cost_field(bouquet, engine="reference")
    for loc, total in ref.items():
        assert swept[loc] == pytest.approx(total, rel=RTOL)


def test_failed_charges_are_inflated_budgets(eq_bouquet):
    """White box: decompose each total into final-plan cost plus a sum
    of whole contour budgets, and check the engine reproduces it."""
    lambda_ = 0.5
    bouquet = _with_lambda(eq_bouquet, lambda_)
    engine = SweepEngine(bouquet)
    field = engine.cost_field()
    checked_failures = 0
    # record.contour_index carries the contour's paper-facing label
    # (Contour.index), not its position in the (reduced) ladder.
    budget_of = {
        contour.index: budget
        for contour, budget in zip(bouquet.contours, bouquet.budgets)
    }
    for loc in bouquet.space.locations():
        result = simulate_at(bouquet, loc, mode="optimized")
        failed_spend = 0.0
        for record in result.executions:
            if not record.completed:
                # Every failed execution charges its contour's inflated
                # budget exactly.
                expected = budget_of[record.contour_index]
                assert record.cost_spent == pytest.approx(expected, rel=RTOL)
                assert record.budget == pytest.approx(expected, rel=RTOL)
                failed_spend += record.cost_spent
                checked_failures += 1
        assert field[loc] == pytest.approx(result.total_cost, rel=RTOL)
        assert result.total_cost >= failed_spend - RTOL * abs(failed_spend)
    # The EQ grid is wide enough that some locations climb: the check
    # above must have exercised real failures, not vacuously passed.
    assert checked_failures > 0


def test_lambda_zero_and_inflated_fields_differ_only_by_budget_charges(
    eq_bouquet,
):
    """With identical contours, λ only changes what failures cost; a
    location that completes on the first attempt costs the same in both
    fields."""
    flat = _with_lambda(eq_bouquet, 0.0)
    inflated = _with_lambda(eq_bouquet, 0.5)
    field_flat = SweepEngine(flat).cost_field()
    field_inflated = SweepEngine(inflated).cost_field()
    no_failures = np.array(
        [
            simulate_at(flat, loc, mode="optimized").partial_executions == 0
            and simulate_at(inflated, loc, mode="optimized").partial_executions
            == 0
            for loc in flat.space.locations()
        ]
    ).reshape(flat.space.shape)
    assert no_failures.any()
    np.testing.assert_allclose(
        field_flat[no_failures], field_inflated[no_failures], rtol=RTOL
    )
