"""Sensitivity-driven ESS dimensioning: properties + Table-2 regression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ess import (
    candidate_error_dimensions,
    measure_error_sensitivity,
    sensitivity_error_dimensions,
)
from repro.optimizer import actual_selectivities
from repro.query.workload import tpch_workload
from repro.wlgen import QueryGenerator, dimension_query


@pytest.fixture(scope="module")
def generator(schema, database):
    return QueryGenerator(schema, database)


class TestCandidates:
    @given(index=st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_candidates_cover_exactly_the_predicates(self, generator, index):
        query = generator.generate(55, index).query
        candidates = candidate_error_dimensions(query)
        assert [dim.pid for dim in candidates] == list(query.predicate_ids)
        for dim in candidates:
            assert 0.0 < dim.lo < dim.hi <= 1.0


class TestSensitivitySelection:
    @given(index=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_ranked_dims_are_a_predicate_subset(
        self, generator, optimizer, database, index
    ):
        """Satellite property: sensitivity-ranked dims ⊆ query predicates."""
        query = generator.generate(55, index).query
        result = dimension_query(optimizer, query, database)
        pids = set(query.predicate_ids)
        assert set(result.pids) <= pids
        assert 1 <= len(result.dimensions) <= 3
        # The full score table covers every predicate, ranked by penalty.
        assert {s.dimension.pid for s in result.scores} == pids
        penalties = [s.penalty for s in result.scores]
        assert penalties == sorted(penalties, reverse=True)
        for score in result.scores:
            assert score.penalty >= 1.0

    def test_deterministic(self, generator, optimizer, database):
        query = generator.generate(4, 2).query
        a = dimension_query(optimizer, query, database)
        b = dimension_query(optimizer, query, database)
        assert a.pids == b.pids
        assert [s.penalty for s in a.scores] == [s.penalty for s in b.scores]

    def test_always_keeps_at_least_one_dimension(
        self, generator, optimizer, database
    ):
        query = generator.generate(4, 0).query
        base = actual_selectivities(query, database)
        # An absurd penalty floor must still leave the top dimension.
        dims, _ = sensitivity_error_dimensions(
            optimizer, query, base, min_penalty=1e12
        )
        assert len(dims) == 1

    def test_serializes(self, generator, optimizer, database):
        query = generator.generate(4, 1).query
        payload = dimension_query(optimizer, query, database).to_dict()
        assert payload["dimensions"]
        assert payload["scores"][0]["penalty"] >= payload["scores"][-1]["penalty"]
        assert set(payload["base_assignment"]) == set(query.predicate_ids)


class TestTable2Regression:
    """The automatic strategy must recover — or cost-dominate — the
    paper-derived hand-picked dimension lists of ``query/workload.py``."""

    @pytest.fixture(scope="class")
    def scored_workload(self, schema, database, optimizer):
        out = {}
        for wq in tpch_workload(schema).values():
            base = actual_selectivities(wq.query, database)
            candidates = candidate_error_dimensions(wq.query)
            scores = measure_error_sensitivity(
                optimizer, wq.query, candidates, base
            )
            by_pid = {s.dimension.pid: s.penalty for s in scores}
            hand = [dim.pid for dim in wq.dimensions()]
            chosen, _ = sensitivity_error_dimensions(
                optimizer, wq.query, base, max_dims=len(hand), min_penalty=1.0
            )
            out[wq.name] = (hand, [d.pid for d in chosen], by_pid)
        return out

    def test_hand_picked_dims_are_always_candidates(self, scored_workload):
        for name, (hand, _chosen, by_pid) in scored_workload.items():
            missing = [pid for pid in hand if pid not in by_pid]
            assert not missing, f"{name}: {missing} not scored"

    def test_chosen_set_cost_dominates_hand_picked(self, scored_workload):
        """Rank-for-rank, the k chosen dims carry at least the penalty of
        the k hand-picked dims."""
        for name, (hand, chosen, by_pid) in scored_workload.items():
            hand_sorted = sorted((by_pid[p] for p in hand), reverse=True)
            chosen_sorted = sorted((by_pid[p] for p in chosen), reverse=True)
            assert len(chosen) == len(hand), name
            for rank, (c, h) in enumerate(zip(chosen_sorted, hand_sorted)):
                assert c >= h - 1e-9, (
                    f"{name}: rank-{rank} chosen penalty {c:.3f} below "
                    f"hand-picked {h:.3f}"
                )

    def test_chosen_set_overlaps_hand_picked(self, scored_workload):
        for name, (hand, chosen, _by_pid) in scored_workload.items():
            assert set(chosen) & set(hand), f"{name}: disjoint from Table 2"

    def test_pure_selection_workloads_recovered_exactly(self, scored_workload):
        """Where Table 2 picked selection dims only, the automatic ranking
        lands on the identical set (an empirical anchor, not a law)."""
        for name in ("EQ", "2D_H_Q8a", "3D_H_Q5b", "4D_H_Q8b"):
            hand, chosen, _ = scored_workload[name]
            assert set(chosen) == set(hand), name
