"""Property tests for the seeded random-query generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer import actual_selectivities
from repro.query.sql import parse_query
from repro.wlgen import GeneratorConfig, QueryGenerator
from repro.wlgen.generator import GeneratorError

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
INDICES = st.integers(min_value=0, max_value=500)


@pytest.fixture(scope="module")
def generator(schema, database):
    return QueryGenerator(schema, database)


class TestGeneratedStructure:
    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=60, deadline=None)
    def test_join_graph_is_acyclic(self, generator, seed, index):
        query = generator.generate(seed, index).query
        assert not query.join_graph.has_cycle()

    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=60, deadline=None)
    def test_references_only_catalog_objects(self, generator, schema, seed, index):
        query = generator.generate(seed, index).query
        for table in query.tables:
            assert table in schema.table_names
        for sel in query.selections:
            assert sel.table in query.tables
            assert schema.table(sel.table).has_column(sel.column)
        for join in query.joins:
            for side in join.tables:
                assert side in query.tables
        for table, column in query.group_by:
            assert schema.table(table).has_column(column)

    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=40, deadline=None)
    def test_joins_follow_declared_foreign_keys(self, generator, schema, seed, index):
        query = generator.generate(seed, index).query
        fks = {
            (fk.child_table, fk.child_column, fk.parent_table, fk.parent_column)
            for fk in schema.foreign_keys
        }
        for join in query.joins:
            forward = (join.left_table, join.left_column,
                       join.right_table, join.right_column)
            backward = (join.right_table, join.right_column,
                        join.left_table, join.left_column)
            assert forward in fks or backward in fks

    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=30, deadline=None)
    def test_sql_parses_back(self, generator, schema, seed, index):
        generated = generator.generate(seed, index)
        reparsed = parse_query(generated.sql, schema)
        assert reparsed.predicate_ids == generated.query.predicate_ids


class TestDeterminism:
    @given(seed=SEEDS, index=INDICES)
    @settings(max_examples=30, deadline=None)
    def test_same_coordinates_same_query(self, schema, database, seed, index):
        a = QueryGenerator(schema, database).generate(seed, index)
        b = QueryGenerator(schema, database).generate(seed, index)
        assert a.sql == b.sql
        assert a.query.predicate_ids == b.query.predicate_ids

    def test_stream_is_prefix_stable(self, generator):
        first = [g.sql for g in generator.generate_many(9, 10)]
        second = [g.sql for g in generator.generate_many(9, 5)]
        assert first[:5] == second

    def test_different_seeds_differ(self, generator):
        # Not a tautology, but astronomically unlikely to collide across
        # ten draws if the seed actually enters the stream.
        a = [g.sql for g in generator.generate_many(1, 10)]
        b = [g.sql for g in generator.generate_many(2, 10)]
        assert a != b


class TestExecutability:
    @given(index=st.integers(min_value=0, max_value=60))
    @settings(max_examples=15, deadline=None)
    def test_executes_on_generated_database(
        self, generator, optimizer, database, index
    ):
        """Every generated query optimizes and runs on the datagen DB."""
        from repro.executor import ExecutionEngine

        query = generator.generate(1234, index).query
        truth = actual_selectivities(query, database)
        plan = optimizer.optimize(query, assignment=truth).plan
        result = ExecutionEngine(database).execute(query, plan)
        assert result.completed
        assert result.rows >= 0

    @given(index=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_selectivities_are_valid(self, generator, database, index):
        query = generator.generate(77, index).query
        truth = actual_selectivities(query, database)
        assert set(truth) == set(query.predicate_ids)
        for value in truth.values():
            assert 0.0 < value <= 1.0


class TestConfigValidation:
    def test_bad_join_bounds_rejected(self):
        with pytest.raises(GeneratorError):
            GeneratorConfig(min_joins=3, max_joins=1)

    def test_bad_weights_rejected(self):
        with pytest.raises(GeneratorError):
            GeneratorConfig(equality_weight=0.0, range_weight=0.0, in_weight=0.0)

    def test_round_trips_through_dict(self):
        config = GeneratorConfig(max_joins=6, in_weight=0.5)
        assert GeneratorConfig.from_dict(config.to_dict()) == config

    def test_join_budget_respected(self, schema, database):
        generator = QueryGenerator(
            schema, database, GeneratorConfig(min_joins=2, max_joins=3)
        )
        for index in range(20):
            query = generator.generate(3, index).query
            assert 2 <= len(query.joins) <= 3


class TestTemplateInstancing:
    @pytest.fixture(scope="class")
    def templated(self, schema, database):
        from repro.bench.template import TEMPLATED_WORKLOAD_CONFIG

        return QueryGenerator(schema, database, TEMPLATED_WORKLOAD_CONFIG)

    def test_binding_zero_is_the_exemplar(self, templated):
        a = templated.generate(11, 3).query
        b = templated.instantiate(11, 3, 0).query
        assert a.name == b.name
        assert a.fingerprint == b.fingerprint

    @given(index=st.integers(min_value=0, max_value=60),
           binding=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_bindings_preserve_structure(self, templated, index, binding):
        exemplar = templated.instantiate(11, index, 0).query
        instance = templated.instantiate(11, index, binding).query
        assert instance.tables == exemplar.tables
        assert instance.joins == exemplar.joins
        assert instance.group_by == exemplar.group_by
        assert instance.aggregate == exemplar.aggregate
        assert [(s.table, s.column, s.op) for s in instance.selections] == [
            (s.table, s.column, s.op) for s in exemplar.selections
        ]

    @given(index=st.integers(min_value=0, max_value=60),
           binding=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_bindings_share_a_template_signature(self, templated, index, binding):
        from repro.template import template_signature

        exemplar = templated.instantiate(11, index, 0).query
        instance = templated.instantiate(11, index, binding).query
        assert (
            template_signature(exemplar).digest
            == template_signature(instance).digest
        )

    def test_instancing_is_deterministic(self, templated):
        a = templated.instantiate(11, 2, 5).query
        b = templated.instantiate(11, 2, 5).query
        assert a.fingerprint == b.fingerprint

    def test_generate_template_returns_exemplar_first(self, templated):
        items = templated.generate_template(11, 2, 4)
        assert len(items) == 4
        assert items[0].query.name == "W11_2"
        assert items[1].query.name == "W11_2b1"

    def test_negative_binding_rejected(self, templated):
        with pytest.raises(GeneratorError):
            templated.instantiate(11, 2, -1)
        with pytest.raises(GeneratorError):
            templated.generate_template(11, 2, 0)
