"""Campaign harness: bound validation, determinism, failure capture."""

import json

import pytest

from repro import fuzz
from repro.wlgen import (
    CampaignConfig,
    CampaignReport,
    QueryOutcome,
    build_env,
    run_campaign,
    run_query,
)
from repro.wlgen.campaign import CampaignError

#: One small campaign shared by the whole module (~1 s).
CONFIG = CampaignConfig(count=8, seed=13)


@pytest.fixture(scope="module")
def report():
    return run_campaign(CONFIG)


class TestCampaignVerdict:
    def test_zero_crashes_zero_violations(self, report):
        assert report.ok, report.describe()
        assert not report.crashes
        assert not report.violations

    def test_every_mso_within_guarantee(self, report):
        for outcome in report.outcomes:
            assert outcome.mso is not None
            assert outcome.bound == pytest.approx(
                4.0 * (1.0 + CONFIG.lambda_) * outcome.rho
            )
            assert outcome.mso <= outcome.bound * (1.0 + 1e-6)

    def test_outcomes_cover_the_stream(self, report):
        assert [o.index for o in report.outcomes] == list(range(CONFIG.count))
        assert all(o.sql for o in report.outcomes)
        assert all(o.dimensions for o in report.outcomes)

    def test_summary_accounting(self, report):
        summary = report.summary()
        assert summary["queries"] == CONFIG.count
        assert summary["ok"] == CONFIG.count
        assert summary["violations"] == 0 and summary["crashes"] == 0
        assert summary["mso_max"] >= summary["mso_p95"] >= summary["mso_median"]
        assert 0.0 < summary["worst_bound_margin"] <= 1.0 + 1e-6
        assert sum(summary["geometries"].values()) == CONFIG.count


class TestDeterminism:
    def test_rerun_is_bit_identical(self, report):
        again = run_campaign(CONFIG)
        a = json.dumps(report.to_dict(), sort_keys=True)
        b = json.dumps(again.to_dict(), sort_keys=True)
        assert a == b

    def test_seed_is_recorded_for_replay(self, report):
        payload = report.to_dict()
        assert payload["config"]["seed"] == CONFIG.seed
        assert payload["config"]["generator"]["max_joins"] == 4
        replayed = CampaignConfig.from_dict(payload["config"])
        assert replayed == CONFIG

    def test_results_sorted_by_index(self, report):
        indices = [r["index"] for r in report.to_dict()["results"]]
        assert indices == sorted(indices)


class TestSpillAccountingRegression:
    """Campaign-found driver bug (seed 42, indices 143/185 at count=200):
    a spill whose subtree was essentially the whole plan used to run to
    completion, discard its output, and re-run the same plan fully —
    double-charging the final contour and breaking the 4(1+λ)ρ bound.
    Spill-to-store resume keeps every (contour, plan) pair down to one
    budget-capped charge."""

    def test_formerly_violating_queries_stay_within_bound(self):
        config = CampaignConfig(count=200, seed=42)
        env = build_env(config)
        for index in (143, 185):
            outcome = run_query(env, config, index)
            assert outcome.status == "ok", outcome.error
            assert outcome.mso <= outcome.bound * (1.0 + 1e-6)


class TestHarnessMechanics:
    def test_progress_callback_sees_every_query(self):
        seen = []
        config = CampaignConfig(count=3, seed=99)
        run_campaign(config, progress=seen.append)
        assert [o.index for o in seen] == [0, 1, 2]
        assert all(isinstance(o, QueryOutcome) for o in seen)

    def test_crash_is_captured_not_raised(self):
        env = build_env(CampaignConfig(count=1, seed=1))
        env.optimizer = None  # sabotage: dimensioning will blow up
        outcome = run_query(env, CampaignConfig(count=1, seed=1), 0)
        assert outcome.status == "crash"
        assert not outcome.ok
        assert "Traceback" in outcome.error
        assert outcome.sql  # the failure artifact still carries the query

    def test_failures_listed_in_payload(self):
        crashed = QueryOutcome(index=0, name="W1_0", status="crash", error="boom")
        fine = QueryOutcome(
            index=1, name="W1_1", status="ok", mso=2.0, aso=1.5, bound=9.6, rho=2
        )
        payload = CampaignReport(
            config=CampaignConfig(count=2, seed=1), outcomes=[fine, crashed]
        ).to_dict()
        assert [f["name"] for f in payload["failures"]] == ["W1_0"]
        assert len(payload["results"]) == 2

    def test_config_validation(self):
        with pytest.raises(CampaignError):
            CampaignConfig(count=0)
        with pytest.raises(CampaignError):
            CampaignConfig(benchmark="sysbench")

    def test_api_fuzz_facade(self):
        report = fuzz(count=2, seed=21)
        assert isinstance(report, CampaignReport)
        assert report.ok
        with pytest.raises(Exception):
            fuzz(CampaignConfig(count=1), count=2)
