"""Guard that the README / package-docstring code snippets actually run."""

README_SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


class TestReadmeSnippets:
    def test_api_quickstart_snippet(self):
        from repro import BouquetConfig, Catalog, Database, tpch_schema
        from repro import compile_bouquet, execute, simulate
        from repro.catalog import tpch_generator_spec

        schema = tpch_schema(0.002)
        db = Database.generate(schema, tpch_generator_spec(0.002), seed=42)
        catalog = Catalog(
            schema, statistics=db.build_statistics(sample_size=500), database=db
        )
        compiled = compile_bouquet(
            README_SQL,
            catalog,
            config=BouquetConfig(resolution=16, lambda_=0.2, ratio=2.0),
        )
        assert compiled.bouquet.describe()
        assert compiled.mso_bound > 0
        result = simulate(compiled, [0.6])
        assert result.completed
        real = execute(compiled, db)
        assert real.result_rows is not None
        assert real.execution_count >= 1

    def test_concurrent_crossing_snippet(self):
        from repro import BouquetConfig, Catalog, Database, tpch_schema
        from repro import compile_bouquet, execute
        from repro.catalog import tpch_generator_spec

        schema = tpch_schema(0.002)
        db = Database.generate(schema, tpch_generator_spec(0.002), seed=42)
        catalog = Catalog(
            schema, statistics=db.build_statistics(sample_size=500), database=db
        )
        compiled = compile_bouquet(
            README_SQL, catalog, config=BouquetConfig(resolution=16)
        )
        fast = execute(compiled, db, crossing="concurrent")
        assert fast.completed
        assert fast.crossing == "concurrent"
        assert fast.elapsed_cost <= fast.total_cost * (1 + 1e-9)
        assert fast.ledger.describe()
        # The config-knob spelling from the README also resolves.
        configured = BouquetConfig(crossing="concurrent")
        assert configured.crossing == "concurrent"

    def test_artifact_store_snippet(self, tmp_path):
        from repro import BouquetArtifactStore, BouquetServer, Catalog, Database
        from repro import ServeRequest, tpch_schema
        from repro.api import BouquetConfig
        from repro.catalog import tpch_generator_spec

        schema = tpch_schema(0.002)
        db = Database.generate(schema, tpch_generator_spec(0.002), seed=42)
        catalog = Catalog(
            schema, statistics=db.build_statistics(sample_size=500), database=db
        )
        store = BouquetArtifactStore(root=str(tmp_path))
        with BouquetServer(
            catalog,
            config=BouquetConfig(resolution=16),
            store=store,
            compile_timeout=30.0,
        ) as server:
            served = server.serve(ServeRequest(query=README_SQL, budget=1e9))
            assert served.status == "ok"
            assert served.cache == "compiled"
            assert served.rows is not None
            dropped = server.refresh_statistics(
                db.build_statistics(sample_size=1000)
            )
            assert dropped == 1

    def test_quickstart_snippet(self):
        from repro import Lab, simulate_at

        lab = Lab(
            tpch_scale=0.002,
            tpcds_scale=0.002,
            stats_sample=500,
            resolutions={3: 8},
        )
        ql = lab.build("3D_DS_Q96")
        assert ql.bouquet.describe()
        assert ql.bouquet.mso_bound > 0
        result = simulate_at(ql.bouquet, (4, 7, 2), mode="optimized")
        assert result.completed
        assert result.total_cost / ql.diagram.cost_at((4, 7, 2)) >= 1.0

    def test_real_execution_snippet(self):
        from repro import ExecutionEngine, Lab, RealExecutionService
        from repro.core import BouquetRunner

        lab = Lab(
            tpch_scale=0.002,
            tpcds_scale=0.002,
            stats_sample=500,
            resolutions={3: 8},
        )
        ql = lab.build("3D_DS_Q96")
        engine = ExecutionEngine(lab.ds_db)
        service = RealExecutionService(ql.bouquet, engine)
        result = BouquetRunner(ql.bouquet, service, mode="optimized").run()
        assert result.completed
        assert result.result_rows is not None

    def test_batch_compile_snippet(self):
        from repro import BouquetConfig, Catalog, Database, tpch_schema
        from repro import compile_bouquet
        from repro.catalog import tpch_generator_spec

        schema = tpch_schema(0.002)
        db = Database.generate(schema, tpch_generator_spec(0.002), seed=42)
        catalog = Catalog(
            schema, statistics=db.build_statistics(sample_size=500), database=db
        )
        compiled = compile_bouquet(
            README_SQL, catalog, config=BouquetConfig(resolution=16)
        )
        reference = compile_bouquet(
            README_SQL,
            catalog,
            config=BouquetConfig(resolution=16, compile_engine="reference"),
        )
        # Identical artifact, whichever engine compiled it.
        assert compiled.config.compile_engine == "batch"
        assert reference.bouquet.cardinality == compiled.bouquet.cardinality
        assert reference.bouquet.budgets == compiled.bouquet.budgets
        assert reference.mso_bound == compiled.mso_bound

    def test_serving_snippet(self):
        """The README's async-serving quickstart: envelope in, typed
        response out, through the gateway's admission control."""
        from repro import (
            BouquetConfig,
            Catalog,
            Database,
            BouquetServer,
            ServeGateway,
            ServeRequest,
            tpch_schema,
        )
        from repro.catalog import tpch_generator_spec

        schema = tpch_schema(0.002)
        db = Database.generate(schema, tpch_generator_spec(0.002), seed=1)
        stats = db.build_statistics(sample_size=500)
        catalog = Catalog(schema, statistics=stats, database=db)
        with BouquetServer(
            catalog, config=BouquetConfig(resolution=16)
        ) as server:
            gateway = ServeGateway(server)
            response = gateway.handle(
                ServeRequest(
                    query="select count(*) from lineitem, orders, part "
                    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
                    "and p_retailprice < 1000 group by p_brand",
                    tenant="readme",
                )
            )
        assert response.ok
        assert response.tenant == "readme"
        assert response.rows is not None
