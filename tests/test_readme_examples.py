"""Guard that the README / package-docstring code snippets actually run."""


class TestReadmeSnippets:
    def test_quickstart_snippet(self):
        from repro import Lab, simulate_at

        lab = Lab(
            tpch_scale=0.002,
            tpcds_scale=0.002,
            stats_sample=500,
            resolutions={3: 8},
        )
        ql = lab.build("3D_DS_Q96")
        assert ql.bouquet.describe()
        assert ql.bouquet.mso_bound > 0
        result = simulate_at(ql.bouquet, (4, 7, 2), mode="optimized")
        assert result.completed
        assert result.total_cost / ql.diagram.cost_at((4, 7, 2)) >= 1.0

    def test_real_execution_snippet(self):
        from repro import ExecutionEngine, Lab, RealExecutionService
        from repro.core import BouquetRunner

        lab = Lab(
            tpch_scale=0.002,
            tpcds_scale=0.002,
            stats_sample=500,
            resolutions={3: 8},
        )
        ql = lab.build("3D_DS_Q96")
        engine = ExecutionEngine(lab.ds_db)
        service = RealExecutionService(ql.bouquet, engine)
        result = BouquetRunner(ql.bouquet, service, mode="optimized").run()
        assert result.completed
        assert result.result_rows is not None

    def test_session_snippet(self):
        from repro import BouquetSession, Database, tpch_schema
        from repro.catalog import tpch_generator_spec

        schema = tpch_schema(0.002)
        db = Database.generate(schema, tpch_generator_spec(0.002), seed=1)
        stats = db.build_statistics(sample_size=500)
        session = BouquetSession(schema, statistics=stats, database=db)
        compiled = session.compile(
            "select count(*) from lineitem, orders, part "
            "where p_partkey = l_partkey and l_orderkey = o_orderkey "
            "and p_retailprice < 1000 group by p_brand",
            resolution=16,
        )
        result = compiled.execute()
        assert result.completed
