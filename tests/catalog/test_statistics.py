"""Unit + property tests for column statistics and selectivity estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import (
    ColumnStatistics,
    DatabaseStatistics,
    TableStatistics,
)
from repro.exceptions import CatalogError


def uniform_stats(n=10_000, lo=0.0, hi=100.0, seed=0):
    rng = np.random.default_rng(seed)
    return ColumnStatistics.from_array(rng.uniform(lo, hi, size=n))


class TestFromArray:
    def test_min_max_distinct(self):
        stats = ColumnStatistics.from_array(np.array([3.0, 1.0, 2.0, 2.0]))
        assert stats.min_value == 1.0
        assert stats.max_value == 3.0
        assert stats.n_distinct == 3

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            ColumnStatistics.from_array(np.array([]))

    def test_sampling_reduces_fidelity_deterministically(self):
        data = np.random.default_rng(1).zipf(1.5, size=50_000).astype(float)
        data = data[data < 1000]
        a = ColumnStatistics.from_array(data, sample_size=500, seed=9)
        b = ColumnStatistics.from_array(data, sample_size=500, seed=9)
        assert a.n_distinct == b.n_distinct  # deterministic
        full = ColumnStatistics.from_array(data)
        assert a.n_distinct <= full.n_distinct

    def test_mcv_detects_heavy_hitters(self):
        data = np.concatenate([np.full(900, 7.0), np.arange(100, dtype=float)])
        stats = ColumnStatistics.from_array(data)
        assert 7.0 in stats.mcv_values
        idx = stats.mcv_values.index(7.0)
        # 900 injected + 1 from the arange = 901 of 1000 rows.
        assert stats.mcv_fractions[idx] == pytest.approx(0.901)


class TestRangeSelectivity:
    def test_uniform_midpoint(self):
        stats = uniform_stats()
        assert stats.range_selectivity("<", 50.0) == pytest.approx(0.5, abs=0.05)

    def test_bounds(self):
        stats = uniform_stats()
        assert stats.range_selectivity("<", -10.0) <= 1e-6
        assert stats.range_selectivity("<", 1000.0) == pytest.approx(1.0)
        assert stats.range_selectivity(">", 1000.0) <= 1e-6

    def test_complementarity(self):
        stats = uniform_stats()
        below = stats.range_selectivity("<", 30.0)
        above = stats.range_selectivity(">=", 30.0)
        assert below + above == pytest.approx(1.0, abs=0.02)

    def test_unknown_operator(self):
        with pytest.raises(CatalogError):
            uniform_stats().range_selectivity("!=", 1.0)

    @given(st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_value(self, value):
        stats = uniform_stats()
        smaller = stats.range_selectivity("<", value)
        larger = stats.range_selectivity("<", min(100.0, value + 5.0))
        assert larger >= smaller - 1e-9


class TestEqualitySelectivity:
    def test_mcv_exact(self):
        data = np.concatenate([np.full(500, 1.0), np.arange(2, 502, dtype=float)])
        stats = ColumnStatistics.from_array(data)
        assert stats.equality_selectivity(1.0) == pytest.approx(0.5)

    def test_non_mcv_uses_distinct(self):
        data = np.arange(1000, dtype=float)
        stats = ColumnStatistics.from_array(data)
        assert stats.equality_selectivity(123.0) == pytest.approx(1 / 1000, rel=0.2)


class TestDatabaseStatistics:
    def test_missing_lookups_return_none(self):
        stats = DatabaseStatistics()
        assert stats.table("nope") is None
        assert stats.column("nope", "x") is None
        assert stats.row_count("nope") is None

    def test_roundtrip(self):
        tstats = TableStatistics("t", 42)
        tstats.set_column("a", uniform_stats(100))
        db_stats = DatabaseStatistics()
        db_stats.set_table(tstats)
        assert db_stats.row_count("t") == 42
        assert db_stats.column("t", "a") is not None
        assert db_stats.table_names == ["t"]
