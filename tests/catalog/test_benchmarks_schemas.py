"""Tests for the TPC-H / TPC-DS schema definitions."""

from repro.catalog import (
    tpcds_generator_spec,
    tpcds_row_counts,
    tpcds_schema,
    tpch_generator_spec,
    tpch_row_counts,
    tpch_schema,
)


class TestTpchSchema:
    def test_cardinality_ratios(self):
        rows = tpch_row_counts(0.1)
        assert rows["lineitem"] == 4 * rows["orders"]
        assert rows["region"] == 5 and rows["nation"] == 25  # fixed tables

    def test_scaling(self):
        small, large = tpch_row_counts(0.01), tpch_row_counts(0.1)
        assert large["lineitem"] == 10 * small["lineitem"]

    def test_schema_fks_valid(self):
        schema = tpch_schema(0.01)
        assert len(schema.foreign_keys) == 8
        for fk in schema.foreign_keys:
            parent = schema.table(fk.parent_table)
            assert parent.primary_key == fk.parent_column

    def test_generator_spec_covers_all_columns(self):
        schema = tpch_schema(0.01)
        spec = tpch_generator_spec(0.01)
        for name, table in schema.tables.items():
            assert name in spec
            for column in table.column_names:
                assert column in spec[name], f"{name}.{column} missing generator"


class TestTpcdsSchema:
    def test_fact_tables_scale(self):
        small, large = tpcds_row_counts(0.01), tpcds_row_counts(0.1)
        assert large["store_sales"] == 10 * small["store_sales"]

    def test_schema_fks_valid(self):
        schema = tpcds_schema(0.01)
        for fk in schema.foreign_keys:
            parent = schema.table(fk.parent_table)
            assert parent.primary_key == fk.parent_column

    def test_generator_spec_covers_all_columns(self):
        schema = tpcds_schema(0.01)
        spec = tpcds_generator_spec(0.01)
        for name, table in schema.tables.items():
            for column in table.column_names:
                assert column in spec[name], f"{name}.{column} missing generator"

    def test_qualified_column_names_globally_unique(self):
        """The executor relies on column names being unique across tables."""
        for schema in (tpch_schema(0.01), tpcds_schema(0.01)):
            seen = {}
            for name, table in schema.tables.items():
                for column in table.column_names:
                    assert column not in seen, (
                        f"column {column} in both {seen.get(column)} and {name}"
                    )
                    seen[column] = name
