"""Unit tests for the schema objects."""

import pytest

from repro.catalog.schema import Column, ForeignKey, IndexInfo, Schema, Table
from repro.exceptions import CatalogError


def make_table(name="t", rows=100, pk="a"):
    return Table(name, [Column("a"), Column("b", "float")], rows, primary_key=pk)


class TestColumn:
    def test_width_by_dtype(self):
        assert Column("x", "int").width == 8
        assert Column("x", "string").width == 24

    def test_rejects_unknown_dtype(self):
        with pytest.raises(CatalogError):
            Column("x", "blob")


class TestTable:
    def test_basic_properties(self):
        table = make_table(rows=1000)
        assert table.row_count == 1000
        assert table.row_width == 16
        assert table.column("a").name == "a"
        assert table.has_column("b") and not table.has_column("c")

    def test_pages_scale_with_rows(self):
        small = make_table(rows=100)
        large = make_table(rows=100_000)
        assert large.pages > small.pages
        assert small.pages >= 1

    def test_rejects_duplicate_columns(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a"), Column("a")], 10)

    def test_rejects_bad_primary_key(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a")], 10, primary_key="zzz")

    def test_rejects_nonpositive_rows(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a")], 0)

    def test_rejects_empty_columns(self):
        with pytest.raises(CatalogError):
            Table("t", [], 10)


class TestSchema:
    def test_lookup_and_indexes(self):
        schema = Schema("s", [make_table()])
        assert schema.table("t").name == "t"
        assert schema.has_index("t", "a")  # all columns indexed by default
        with pytest.raises(CatalogError):
            schema.table("missing")

    def test_restricted_indexes(self):
        schema = Schema("s", [make_table()], indexed_columns=[("t", "a")])
        assert schema.has_index("t", "a")
        assert not schema.has_index("t", "b")

    def test_foreign_key_lookup_both_directions(self):
        parent = Table("p", [Column("id")], 10, primary_key="id")
        child = Table("c", [Column("pid")], 100)
        fk = ForeignKey("c", "pid", "p", "id")
        schema = Schema("s", [parent, child], [fk])
        assert schema.foreign_key_between("c", "pid", "p", "id") is fk
        assert schema.foreign_key_between("p", "id", "c", "pid") is fk
        assert schema.foreign_key_between("c", "pid", "c", "pid") is None

    def test_fk_must_target_primary_key(self):
        parent = Table("p", [Column("id"), Column("other")], 10, primary_key="id")
        child = Table("c", [Column("pid")], 100)
        with pytest.raises(CatalogError):
            Schema("s", [parent, child], [ForeignKey("c", "pid", "p", "other")])

    def test_rejects_duplicate_tables(self):
        with pytest.raises(CatalogError):
            Schema("s", [make_table(), make_table()])


class TestIndexInfo:
    def test_leaf_pages_grow_with_rows(self):
        small = IndexInfo.for_table(make_table(rows=100), "a")
        large = IndexInfo.for_table(make_table(rows=1_000_000), "a")
        assert large.leaf_pages > small.leaf_pages
        assert small.height == 3
