"""Integration: a traced facade run summarizes back to its run result."""

import pytest

from repro.api import BouquetConfig, Catalog, compile_bouquet, execute, simulate
from repro.obs import JsonlSink, MemorySink, Tracer, read_trace, summarize_trace

EQ_SQL = (
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000"
)


@pytest.fixture(scope="module")
def traced_run(schema, database, statistics, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("obs") / "trace.jsonl")
    tracer = Tracer(JsonlSink(path))
    catalog = Catalog(schema, statistics=statistics, database=database)
    compiled = compile_bouquet(
        EQ_SQL, catalog, config=BouquetConfig(resolution=24), tracer=tracer
    )
    result = execute(compiled, database, tracer=tracer)
    tracer.close()
    return path, compiled, result


class TestTracedSession:
    def test_summary_matches_run_result(self, traced_run):
        path, _, result = traced_run
        summary = summarize_trace(read_trace(path))
        assert summary.execution_count == result.execution_count
        assert summary.total_cost == pytest.approx(result.total_cost)
        assert summary.completed == result.completed
        assert summary.final_plan_id == result.final_plan_id
        per_contour = {a.contour: a.executions for a in summary.contours}
        assert per_contour == result.executions_per_contour()

    def test_budgets_and_spills_match(self, traced_run):
        path, compiled, result = traced_run
        summary = summarize_trace(read_trace(path))
        budgets = dict(
            zip((c.index for c in compiled.bouquet.contours), compiled.bouquet.budgets)
        )
        spilled = {}
        for record in result.executions:
            spilled[record.contour_index] = (
                spilled.get(record.contour_index, 0) + int(record.spilled)
            )
        for acct in summary.contours:
            assert acct.budget == pytest.approx(budgets[acct.contour])
            assert acct.spilled == spilled[acct.contour]

    def test_compile_and_execute_span_roots(self, traced_run):
        path, _, _ = traced_run
        summary = summarize_trace(read_trace(path))
        roots = [s["name"] for s in summary.spans if s["parent"] == 0]
        assert "api.compile" in roots and "api.execute" in roots
        compile_span = next(
            s for s in summary.spans if s["name"] == "api.compile"
        )
        assert compile_span["attrs"]["grid"] == 24
        assert compile_span["attrs"]["cardinality"] >= 1

    def test_optimizer_account_present(self, traced_run):
        path, _, _ = traced_run
        summary = summarize_trace(read_trace(path))
        # The batch compile engine accounts whole slabs of locations per
        # DP run rather than one optimizer.calls tick per location.
        optimized = summary.counters.get("optimizer.calls", 0) + summary.counters.get(
            "optimizer.batched_locations", 0
        )
        assert optimized >= 24
        latency_samples = summary.timings.get("optimizer.latency", {}).get(
            "count", 0
        ) + summary.timings.get("optimizer.batch_latency", {}).get("count", 0)
        assert latency_samples >= 1

    def test_describe_renders_account(self, traced_run):
        path, _, _ = traced_run
        text = summarize_trace(read_trace(path)).describe()
        assert "per-contour execution account" in text
        assert "optimizer." in text

    def test_simulate_is_traced(self, schema, database, statistics):
        tracer = Tracer(MemorySink())
        catalog = Catalog(schema, statistics=statistics, database=database)
        compiled = compile_bouquet(
            EQ_SQL, catalog, config=BouquetConfig(resolution=24), tracer=tracer
        )
        result = simulate(compiled, [0.4], tracer=tracer)
        events = tracer.sink.events("runtime.execution")
        assert len(events) == result.execution_count
        assert tracer.sink.spans("api.simulate")

    def test_untraced_compile_stays_silent(self, schema, database, statistics):
        catalog = Catalog(schema, statistics=statistics, database=database)
        compiled = compile_bouquet(
            EQ_SQL, catalog, config=BouquetConfig(resolution=24)
        )
        simulate(compiled, [0.4])
        optimizer = compiled.bouquet.cost_cache.optimizer
        assert optimizer.tracer.counters == {}


class TestLabTracing:
    def test_lab_trace_summary(self, lab):
        lab.build("EQ")
        text = lab.trace_summary()
        assert "optimizer." in text
        assert "lab.build" in text or "root spans" in text
