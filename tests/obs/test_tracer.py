"""Unit tests for the tracing + metrics subsystem."""

import json
import pickle

import pytest

from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    NullTracer,
    Tracer,
    read_trace,
    summarize_trace,
)
from repro.obs.tracer import TimingStats


class TestSpans:
    def test_span_nesting_parent_links(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id == inner.span_id
            assert tracer.current_span_id == outer.span_id
        assert tracer.current_span_id == 0
        ends = {r["name"]: r for r in sink.spans()}
        assert ends["inner"]["parent"] == ends["outer"]["span"]
        assert ends["outer"]["parent"] == 0

    def test_span_attrs_and_duration(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work", phase="compile") as span:
            span.set(items=3)
        record = sink.spans("work")[0]
        assert record["attrs"] == {"phase": "compile", "items": 3}
        assert record["dur"] >= 0

    def test_span_records_error_kind(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert sink.spans("doomed")[0]["attrs"]["error"] == "ValueError"
        assert tracer.current_span_id == 0

    def test_events_attach_to_current_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("run") as span:
            tracer.event("step", k=1)
        assert sink.events("step")[0]["span"] == span.span_id
        assert sink.events("step")[0]["attrs"] == {"k": 1}

    def test_explicit_end(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        span = tracer.span("manual")
        span.set(done=True)
        span.end()
        assert sink.spans("manual")[0]["attrs"] == {"done": True}
        assert tracer.current_span_id == 0


class TestMetrics:
    def test_counter_aggregation(self):
        tracer = Tracer(MemorySink())
        tracer.count("calls")
        tracer.count("calls", 2)
        tracer.count("tuples", 100)
        assert tracer.counters == {"calls": 3, "tuples": 100}

    def test_timing_histogram(self):
        tracer = Tracer(MemorySink())
        for value in (0.5, 1.5, 1.0):
            tracer.observe("lat", value)
        stats = tracer.timings["lat"]
        assert stats.count == 3
        assert stats.total == pytest.approx(3.0)
        assert stats.min == 0.5 and stats.max == 1.5
        assert stats.mean == pytest.approx(1.0)

    def test_empty_timing_stats(self):
        stats = TimingStats()
        assert stats.mean == 0.0
        assert stats.as_dict()["min"] == 0.0

    def test_flush_metrics_emits_records(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.count("n", 4)
        tracer.observe("t", 0.25)
        tracer.flush_metrics()
        kinds = {(r["type"], r["name"]) for r in sink.records}
        assert ("counter", "n") in kinds and ("timing", "t") in kinds

    def test_snapshot(self):
        tracer = Tracer(MemorySink())
        tracer.count("a")
        tracer.observe("b", 2.0)
        snap = tracer.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["timings"]["b"]["count"] == 1


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlSink(path))
        with tracer.span("root", grid=64):
            tracer.event("runtime.execution", contour=1, plan=2, spilled=False,
                         budget=10.0, cost_spent=4.0, completed=True, learned=[])
        tracer.count("optimizer.calls", 7)
        tracer.close()
        records = read_trace(path)
        types = [r["type"] for r in records]
        assert types == ["span_start", "event", "span_end", "counter"]
        summary = summarize_trace(records)
        assert summary.execution_count == 1
        assert summary.completed and summary.final_plan_id == 2
        assert summary.counters["optimizer.calls"] == 7

    def test_non_json_values_degrade(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlSink(path))
        tracer.event("odd", value=np.float64(1.5), arr=np.int64(3))
        tracer.close()
        record = read_trace(path)[0]
        assert record["attrs"]["value"] == 1.5
        assert record["attrs"]["arr"] == 3

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(JsonlSink(path))
        tracer.close()
        tracer.sink.close()
        assert json.loads(open(path).read() or "{}") == {}


class TestNullTracer:
    def test_null_sink_is_noop(self):
        NullSink().emit({"type": "event"})  # must not raise or store

    def test_null_tracer_noops(self):
        tracer = NullTracer()
        with tracer.span("x", a=1) as span:
            span.set(b=2)
            tracer.event("e")
            tracer.count("c")
            tracer.observe("t", 1.0)
        assert tracer.counters == {} and tracer.timings == {}
        assert not tracer.enabled

    def test_singleton_shared_span(self):
        a = NULL_TRACER.span("one")
        b = NULL_TRACER.span("two")
        assert a is b  # the shared no-op span

    def test_tracer_pickles_to_null(self, tmp_path):
        tracer = Tracer(JsonlSink(str(tmp_path / "p.jsonl")))
        restored = pickle.loads(pickle.dumps(tracer))
        assert restored is NULL_TRACER
