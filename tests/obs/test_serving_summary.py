"""ServingSummary / summarize_serving: the `repro serve-stats` account."""

from __future__ import annotations

import pytest

from repro.obs import summarize_serving
from repro.obs.summary import ServingSummary

RECORDS = [
    {"type": "counter", "name": "serve.requests", "value": 4},
    {"type": "counter", "name": "serve.cache.hit_memory", "value": 2},
    {"type": "counter", "name": "serve.cache.hit_disk", "value": 1},
    {"type": "counter", "name": "serve.cache.miss", "value": 1},
    {"type": "counter", "name": "serve.cache.store", "value": 1},
    {"type": "counter", "name": "serve.singleflight.coalesced", "value": 2},
    {"type": "counter", "name": "optimizer.calls", "value": 32},
    # Noise that must NOT be folded into the serving account:
    {"type": "counter", "name": "runtime.executions", "value": 9},
    {"type": "span_end", "name": "serve.compile", "dur": 0.5},
    {"type": "span_end", "name": "serve.compile", "dur": 0.25},
    {"type": "span_end", "name": "serve.execute", "dur": 0.125},
    {"type": "span_end", "name": "api.compile", "dur": 99.0},
    {"type": "span_start", "name": "serve.compile"},
]


def test_summarize_serving_harvests_counters_and_spans():
    summary = summarize_serving(RECORDS)
    assert summary.requests == 4
    assert summary.lookups == 4
    assert summary.hit_rate == pytest.approx(0.75)
    assert summary.counters["optimizer.calls"] == 32
    assert "runtime.executions" not in summary.counters
    assert summary.compile_spans == 2
    assert summary.compile_seconds == pytest.approx(0.75)
    assert summary.execute_spans == 1
    assert summary.execute_seconds == pytest.approx(0.125)


def test_empty_stream_is_a_zero_summary():
    summary = summarize_serving([])
    assert summary.requests == 0
    assert summary.lookups == 0
    assert summary.hit_rate == 0.0
    assert summary.compile_spans == 0


def test_describe_renders_the_ladder():
    text = summarize_serving(RECORDS).describe()
    for needle in ("memory hits", "hit rate", "75%", "coalesced", "requests"):
        assert needle in text


def test_summary_from_live_counters():
    summary = ServingSummary(
        counters={"serve.cache.hit_memory": 3, "serve.cache.miss": 1}
    )
    assert summary.hit_rate == pytest.approx(0.75)
    assert isinstance(summary.describe(), str)


def test_front_end_counters_get_their_own_table():
    summary = summarize_serving(
        [
            {"type": "counter", "name": "serve.front.requests", "value": 10},
            {"type": "counter", "name": "serve.front.admitted", "value": 7},
            {"type": "counter", "name": "serve.front.shed.quota", "value": 2},
            {"type": "counter", "name": "serve.front.shed.queue", "value": 1},
            {"type": "counter", "name": "serve.front.completed.ok", "value": 6},
            {
                "type": "counter",
                "name": "serve.front.completed.degraded",
                "value": 1,
            },
        ]
    )
    assert summary.front_requests == 10
    assert summary.front_shed == 3
    text = summary.describe()
    for needle in (
        "admission / shedding",
        "shed (quota)",
        "completed ok",
        "completed degraded",
    ):
        assert needle in text


def test_front_end_table_absent_when_gateway_unused():
    assert "admission" not in summarize_serving(RECORDS).describe()


def test_parallel_substrate_counters_get_their_own_table():
    summary = summarize_serving(
        [
            {"type": "counter", "name": "par.pool.starts", "value": 1},
            {"type": "counter", "name": "par.pool.runs", "value": 5},
            {"type": "counter", "name": "par.pool.reuse", "value": 4},
            {"type": "counter", "name": "par.tasks", "value": 40},
            {"type": "counter", "name": "par.payload.ships", "value": 2},
            {"type": "counter", "name": "par.payload.cache_hits", "value": 8},
            {"type": "counter", "name": "par.shm.exports", "value": 3},
        ]
    )
    assert summary.pool_runs == 5
    assert summary.pool_reuse_rate == pytest.approx(0.8)
    assert summary.payload_cache_hit_rate == pytest.approx(0.8)
    text = summary.describe()
    for needle in (
        "parallel substrate",
        "pool reuse rate",
        "payload cache hits",
        "shm planes exported",
    ):
        assert needle in text


def test_parallel_substrate_table_absent_when_pool_unused():
    assert "parallel substrate" not in summarize_serving(RECORDS).describe()
