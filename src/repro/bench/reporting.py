"""Plain-text reporting helpers for the benchmark harness.

Every benchmark prints the same rows/series as the corresponding paper
table or figure; these helpers keep that output consistent and aligned.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.2e}"
        if magnitude >= 100:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)


def format_series(
    xs: Sequence[float], ys: Sequence[float], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series as two aligned columns."""
    return format_table([x_label, y_label], list(zip(xs, ys)))


def log_bar(value: float, unit: float = 1.0, width: int = 40) -> str:
    """A crude log-scale ASCII bar, for figure-flavoured output."""
    import math

    if value <= 0:
        return ""
    n = int(min(width, max(1, round(math.log10(value / unit + 1.0) * 10))))
    return "#" * n
