"""Serving-layer smoke bench: compile-cache a canned workload twice.

The canonical deployment check for :mod:`repro.serve`: run a small
canned workload through a :class:`~repro.serve.BouquetServer` cold, then
run the identical workload again and verify the §4.2 amortization
actually materialized — every second-pass request must be answered from
the artifact cache, the optimizer must not be invoked at all, and the
warm pass must be at least ``min_speedup``× faster end to end.

A third pass then injects a small statistics drift and calls
:meth:`~repro.serve.BouquetServer.refresh_statistics`: the patch path
must carry every cached artifact across the fingerprint change
(``serve.cache.patched``), so the post-refresh pass is again all cache
hits with zero optimizer work.

A final taxonomy pass drives one request down each arm of the outcome
ladder — answered (``ok``), admission-rejected (``shed``), NAT-degraded
(``degraded``), and unparseable (``failed``) — and asserts the four
stay *distinct* statuses with their expected ``error_code``\\ s.
``make serve-smoke`` / ``repro serve-smoke`` gate on all of it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..api import BouquetConfig, Catalog
from ..catalog.tpch import tpch_generator_spec, tpch_schema
from ..datagen.database import Database
from ..drift import perturb_statistics
from ..obs.tracer import MemorySink, Tracer
from ..runtime import SimulatedRuntime
from ..serve.admission import TenantQuota
from ..serve.cache import BouquetArtifactStore
from ..serve.envelope import ServeRequest
from ..serve.front import ServeGateway
from ..serve.server import BouquetServer

__all__ = ["CANNED_WORKLOAD", "ServeSmokeReport", "run_serve_smoke"]


def _optimized_locations(tracer: Tracer) -> float:
    """ESS locations the optimizer planned, whichever compile engine ran.

    The reference engine ticks ``optimizer.calls`` once per location; the
    batch engine accounts the same work as ``optimizer.batched_locations``.
    """
    return tracer.counters.get("optimizer.calls", 0) + tracer.counters.get(
        "optimizer.batched_locations", 0
    )

#: The canned workload: a handful of distinct SPJ shapes over TPC-H.
CANNED_WORKLOAD = [
    "select * from lineitem, orders, part "
    "where p_partkey = l_partkey and l_orderkey = o_orderkey "
    "and p_retailprice < 1000",
    "select * from lineitem, orders "
    "where l_orderkey = o_orderkey and o_totalprice < 150000",
    "select count(*) from lineitem, part "
    "where p_partkey = l_partkey and p_retailprice < 1200 "
    "group by p_brand",
]


@dataclass
class ServeSmokeReport:
    """Outcome of one serve-smoke run (cold pass vs. warm pass)."""

    queries: int
    cold_seconds: float
    warm_seconds: float
    cold_optimizer_calls: float
    warm_optimizer_calls: float
    warm_sources: List[str] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    min_speedup: float = 5.0
    refresh_optimizer_calls: float = 0.0
    refresh_sources: List[str] = field(default_factory=list)
    patched_artifacts: float = 0.0
    #: taxonomy pass: scenario -> (status, error_code) actually observed
    taxonomy: Dict[str, List[Optional[str]]] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.cold_seconds / max(self.warm_seconds, 1e-12)

    @property
    def all_warm_hits(self) -> bool:
        return bool(self.warm_sources) and all(
            source in ("memory", "disk") for source in self.warm_sources
        )

    @property
    def all_refresh_hits(self) -> bool:
        return bool(self.refresh_sources) and all(
            source in ("memory", "disk") for source in self.refresh_sources
        )

    @property
    def taxonomy_ok(self) -> bool:
        """The four outcome arms must be observed as *distinct* statuses
        with their contracted error codes."""
        expected = {
            "ok": ("ok", None),
            "shed": ("shed", "shed-quota"),
            "degraded": ("degraded", "cached-only-miss"),
            "failed": ("failed", "parse-error"),
        }
        return all(
            tuple(self.taxonomy.get(name, (None, None))) == want
            for name, want in expected.items()
        )

    @property
    def ok(self) -> bool:
        return (
            self.all_warm_hits
            and self.warm_optimizer_calls == 0
            and self.speedup >= self.min_speedup
            and self.all_refresh_hits
            and self.refresh_optimizer_calls == 0
            and self.patched_artifacts >= self.queries
            and self.taxonomy_ok
        )

    def describe(self) -> str:
        from .reporting import format_table

        rows = [
            ["queries", self.queries],
            ["cold pass", f"{self.cold_seconds:.4f}s"],
            ["warm pass", f"{self.warm_seconds:.4f}s"],
            ["speedup", f"{self.speedup:.1f}x (need >= {self.min_speedup:g}x)"],
            ["cold optimizer calls", f"{self.cold_optimizer_calls:g}"],
            ["warm optimizer calls", f"{self.warm_optimizer_calls:g}"],
            ["warm sources", ",".join(self.warm_sources)],
            ["patched artifacts", f"{self.patched_artifacts:g}"],
            ["post-refresh optimizer calls", f"{self.refresh_optimizer_calls:g}"],
            ["post-refresh sources", ",".join(self.refresh_sources)],
            [
                "status taxonomy",
                "; ".join(
                    f"{name}={status}/{code or '-'}"
                    for name, (status, code) in sorted(self.taxonomy.items())
                )
                + (" (distinct)" if self.taxonomy_ok else " (NOT distinct)"),
            ],
            ["verdict", "OK" if self.ok else "FAIL"],
        ]
        return format_table(["serve smoke", "value"], rows, title="serve smoke")


def run_serve_smoke(
    scale: float = 0.002,
    seed: int = 7,
    stats_sample: int = 800,
    resolution: int = 32,
    store_root: Optional[str] = None,
    min_speedup: float = 5.0,
    tracer: Optional[Tracer] = None,
) -> ServeSmokeReport:
    """Compile-cache :data:`CANNED_WORKLOAD` twice and report the gap."""
    tracer = tracer if tracer is not None else Tracer(MemorySink())
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=seed)
    statistics = database.build_statistics(sample_size=stats_sample, seed=seed)
    catalog = Catalog(schema, statistics=statistics, database=database)
    config = BouquetConfig(resolution=resolution)
    store = BouquetArtifactStore(root=store_root, tracer=tracer)
    with BouquetServer(
        catalog, config=config, store=store, tracer=tracer
    ) as server:
        calls0 = _optimized_locations(tracer)
        t0 = time.perf_counter()
        for sql in CANNED_WORKLOAD:
            server.compile(sql)
        cold_seconds = time.perf_counter() - t0
        calls1 = _optimized_locations(tracer)

        warm_sources = []
        t0 = time.perf_counter()
        for sql in CANNED_WORKLOAD:
            _, source = server.compile(sql)
            warm_sources.append(source)
        warm_seconds = time.perf_counter() - t0
        calls2 = _optimized_locations(tracer)

        # Statistics drift: the fingerprint changes, but with a live
        # database the compile inputs do not — the refresh must patch
        # every artifact across rather than recompile it.
        drifted = perturb_statistics(
            statistics, "part", "p_retailprice", scale=1.05
        )
        server.refresh_statistics(drifted)
        refresh_sources = []
        for sql in CANNED_WORKLOAD:
            _, source = server.compile(sql)
            refresh_sources.append(source)
        calls3 = _optimized_locations(tracer)

        # Taxonomy pass: one request down each outcome arm, through a
        # gateway whose frozen virtual clock makes admission
        # deterministic (burst 1, no refill -> the second request is
        # guaranteed to shed).
        gateway = ServeGateway(
            server,
            runtime=SimulatedRuntime(),
            default_quota=TenantQuota(rate=1.0, burst=1.0, max_queue=4),
            tracer=tracer,
        )
        probes = {
            "ok": gateway.handle(CANNED_WORKLOAD[0]),
            "shed": gateway.handle(CANNED_WORKLOAD[1]),
            "degraded": server.serve_request(
                ServeRequest(
                    query="select * from part where p_retailprice < 777",
                    cached_only=True,
                )
            ),
            "failed": server.serve_request(
                ServeRequest(query="definitely not sql (")
            ),
        }
        taxonomy = {
            name: [response.status, response.error_code]
            for name, response in probes.items()
        }
    return ServeSmokeReport(
        queries=len(CANNED_WORKLOAD),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        cold_optimizer_calls=calls1 - calls0,
        warm_optimizer_calls=calls2 - calls1,
        warm_sources=warm_sources,
        counters=dict(tracer.counters),
        min_speedup=min_speedup,
        refresh_optimizer_calls=calls3 - calls2,
        refresh_sources=refresh_sources,
        patched_artifacts=tracer.counters.get("serve.cache.patched", 0),
        taxonomy=taxonomy,
    )
