"""Scheduler bench: contour-crossing strategies head to head.

Sweeps every actual location of a 2D ESS (the §6.7 run-time query
2D_H_Q8a) through the basic bouquet driver once per crossing strategy
and records the observed worst-case sub-optimality in each strategy's
native currency:

* ``sequential`` — work MSO, guaranteed ``rho * (1+lambda) * r^2/(r-1)``;
* ``concurrent`` — elapsed (critical-path cost-time) MSO, guaranteed
  ``(1+lambda) * r^2/(r-1)`` — the rho factor collapses because a
  contour's plans run on separate cores (§3.3);
* ``timesliced`` — work MSO again (one core, round-robin), plus a
  bit-identical repeat check: same seed, same schedule, same account.

``make bench-sched`` runs this and writes ``BENCH_sched.json``; the
process exits non-zero when an acceptance criterion fails (concurrent
not strictly better than sequential, a bound violated, or the
time-sliced repeat diverging).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..catalog.tpch import tpch_generator_spec, tpch_schema
from ..core.bouquet import identify_bouquet
from ..core.runtime import AbstractExecutionService, BouquetRunner
from ..datagen.database import Database
from ..ess.diagram import PlanDiagram
from ..ess.space import SelectivitySpace
from ..obs.tracer import NULL_TRACER, Tracer
from ..optimizer.cost_model import POSTGRES_COST_MODEL
from ..optimizer.optimizer import Optimizer
from ..optimizer.selectivity import actual_selectivities
from ..query.workload import tpch_workload
from ..robustness.metrics import crossing_mso_bound

__all__ = ["SchedBenchReport", "StrategySweep", "run_sched_bench", "main"]

STRATEGIES = ("sequential", "concurrent", "timesliced")


@dataclass
class StrategySweep:
    """One strategy's full-grid sweep account."""

    strategy: str
    mso_work: float
    mso_elapsed: float
    aso_work: float
    aso_elapsed: float
    executions: int
    cancellations: int
    wall_seconds: float
    #: Per-location digest (used for the determinism check).
    signature: Tuple = field(default=(), repr=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "mso_work": self.mso_work,
            "mso_elapsed": self.mso_elapsed,
            "aso_work": self.aso_work,
            "aso_elapsed": self.aso_elapsed,
            "executions": self.executions,
            "cancellations": self.cancellations,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class SchedBenchReport:
    """The bench verdict: per-strategy sweeps plus the analytical bounds."""

    query: str
    grid: int
    rho: int
    ratio: float
    lambda_: float
    sweeps: Dict[str, StrategySweep]
    sequential_bound: float
    concurrent_bound: float
    timesliced_deterministic: bool

    @property
    def concurrent_beats_sequential(self) -> bool:
        """Concurrent elapsed MSO strictly below sequential work MSO."""
        return (
            self.sweeps["concurrent"].mso_elapsed
            < self.sweeps["sequential"].mso_work
        )

    @property
    def within_bounds(self) -> bool:
        return (
            self.sweeps["sequential"].mso_work <= self.sequential_bound
            and self.sweeps["concurrent"].mso_elapsed <= self.concurrent_bound
            and self.sweeps["timesliced"].mso_work <= self.sequential_bound
        )

    @property
    def ok(self) -> bool:
        return (
            self.concurrent_beats_sequential
            and self.within_bounds
            and self.timesliced_deterministic
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "grid": self.grid,
            "rho": self.rho,
            "ratio": self.ratio,
            "lambda": self.lambda_,
            "strategies": {
                name: sweep.to_dict() for name, sweep in self.sweeps.items()
            },
            "bounds": {
                "sequential": self.sequential_bound,
                "concurrent": self.concurrent_bound,
            },
            "checks": {
                "concurrent_beats_sequential": self.concurrent_beats_sequential,
                "within_bounds": self.within_bounds,
                "timesliced_deterministic": self.timesliced_deterministic,
                "ok": self.ok,
            },
        }

    def describe(self) -> str:
        from .reporting import format_table

        rows = []
        for name in STRATEGIES:
            sweep = self.sweeps[name]
            rows.append(
                [
                    name,
                    f"{sweep.mso_work:.2f}",
                    f"{sweep.mso_elapsed:.2f}",
                    f"{sweep.aso_elapsed:.2f}",
                    sweep.executions,
                    sweep.cancellations,
                    f"{sweep.wall_seconds:.3f}s",
                ]
            )
        rows.append(
            [
                "bound",
                f"{self.sequential_bound:.2f}",
                f"{self.concurrent_bound:.2f}",
                "",
                "",
                "",
                "",
            ]
        )
        table = format_table(
            ["crossing", "MSO(work)", "MSO(elapsed)", "ASO(elapsed)",
             "execs", "cancels", "wall"],
            rows,
            title=f"contour crossing — {self.query} "
            f"(grid={self.grid}, rho={self.rho})",
        )
        verdict = "OK" if self.ok else "FAIL"
        return f"{table}\nverdict: {verdict}"


def _sweep(bouquet, space, pic, crossing: str, tracer: Tracer) -> StrategySweep:
    """Drive every grid location through one crossing strategy."""
    worst_work = worst_elapsed = 0.0
    sum_work = sum_elapsed = 0.0
    executions = cancellations = 0
    signature: List[Tuple] = []
    locations = list(space.locations())
    t0 = time.perf_counter()
    for location in locations:
        qa_values = space.selectivities_at(location)
        service = AbstractExecutionService(bouquet, qa_values)
        result = BouquetRunner(
            bouquet, service, mode="basic", crossing=crossing, tracer=tracer
        ).run()
        if not result.completed:
            raise RuntimeError(
                f"{crossing} crossing failed to complete at {location}"
            )
        optimal = float(pic[location])
        work = result.total_cost / optimal
        elapsed = (
            result.elapsed_cost if result.elapsed_cost is not None
            else result.total_cost
        ) / optimal
        worst_work = max(worst_work, work)
        worst_elapsed = max(worst_elapsed, elapsed)
        sum_work += work
        sum_elapsed += elapsed
        executions += result.execution_count
        if result.ledger is not None:
            cancellations += result.ledger.cancellations
        signature.append(
            (
                location,
                round(result.total_cost, 6),
                round(result.elapsed_cost or 0.0, 6),
                tuple(
                    (r.contour_index, r.plan_id, round(r.cost_spent, 6))
                    for r in result.executions
                ),
            )
        )
    wall = time.perf_counter() - t0
    count = len(locations)
    return StrategySweep(
        strategy=crossing,
        mso_work=worst_work,
        mso_elapsed=worst_elapsed,
        aso_work=sum_work / count,
        aso_elapsed=sum_elapsed / count,
        executions=executions,
        cancellations=cancellations,
        wall_seconds=wall,
        signature=tuple(signature),
    )


def run_sched_bench(
    scale: float = 0.002,
    seed: int = 7,
    stats_sample: int = 800,
    resolution: int = 10,
    lambda_: float = 0.2,
    ratio: float = 2.0,
    tracer: Optional[Tracer] = None,
) -> SchedBenchReport:
    """Build the 2D lab environment and sweep all three strategies."""
    tracer = tracer if tracer is not None else NULL_TRACER
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=seed)
    statistics = database.build_statistics(sample_size=stats_sample, seed=seed)
    optimizer = Optimizer(schema, statistics, POSTGRES_COST_MODEL, tracer=tracer)
    workload = tpch_workload(schema)["2D_H_Q8a"]
    base = actual_selectivities(workload.query, database)
    space = SelectivitySpace(
        workload.query, workload.dimensions(), resolution, base
    )
    diagram = PlanDiagram.exhaustive(optimizer, space)
    bouquet = identify_bouquet(diagram, lambda_=lambda_, ratio=ratio)
    pic = diagram.costs

    sweeps = {
        name: _sweep(bouquet, space, pic, name, tracer) for name in STRATEGIES
    }
    # Determinism: an identical re-run of the time-sliced sweep must be
    # bit-identical — same schedule, same charges, same records.
    repeat = _sweep(bouquet, space, pic, "timesliced", tracer)
    deterministic = repeat.signature == sweeps["timesliced"].signature

    return SchedBenchReport(
        query=workload.name,
        grid=space.size,
        rho=bouquet.rho,
        ratio=ratio,
        lambda_=lambda_,
        sweeps=sweeps,
        sequential_bound=crossing_mso_bound(ratio, lambda_, bouquet.rho),
        concurrent_bound=crossing_mso_bound(
            ratio, lambda_, bouquet.rho, concurrent=True
        ),
        timesliced_deterministic=deterministic,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.sched",
        description="benchmark contour-crossing strategies (MSO + wall-clock)",
    )
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--stats-sample", type=int, default=800)
    parser.add_argument("--resolution", type=int, default=10)
    parser.add_argument("--ratio", type=float, default=2.0)
    parser.add_argument("--anorexic-lambda", type=float, default=0.2)
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report as JSON (e.g. BENCH_sched.json)",
    )
    args = parser.parse_args(argv)
    report = run_sched_bench(
        scale=args.scale,
        seed=args.seed,
        stats_sample=args.stats_sample,
        resolution=args.resolution,
        lambda_=args.anorexic_lambda,
        ratio=args.ratio,
    )
    print(report.describe())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
