"""Workload fuzzing bench: random queries vs. the 4(1+λ)ρ guarantee.

Runs a seeded :mod:`repro.wlgen` campaign — hundreds of generated
queries, each with sensitivity-chosen ESS dimensions — through the full
compile + sweep pipeline and checks the acceptance criterion that
matters most: **zero crashes and zero MSO-bound violations**.  The JSON
report (``make bench-workload`` writes ``BENCH_workload.json``) embeds
the campaign config verbatim, so re-running with the same seed
reproduces it byte for byte; wall-clock timing is printed but kept out
of the payload on purpose.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..wlgen import CampaignConfig, GeneratorConfig, run_campaign

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.workload",
        description="fuzz the bouquet pipeline with generated queries and "
        "validate every measured MSO against the 4(1+lambda)rho bound",
    )
    parser.add_argument("--benchmark", choices=("tpch", "tpcds"), default="tpch")
    parser.add_argument("--count", type=int, default=200,
                        help="number of generated queries (default 200)")
    parser.add_argument("--seed", type=int, default=42,
                        help="campaign seed: pins the query stream")
    parser.add_argument("--scale", type=float, default=0.003)
    parser.add_argument("--data-seed", type=int, default=7)
    parser.add_argument("--stats-sample", type=int, default=1500)
    parser.add_argument("--stats-seed", type=int, default=3)
    parser.add_argument("--max-joins", type=int, default=4)
    parser.add_argument("--max-dims", type=int, default=3,
                        help="ESS dimensions kept per query")
    parser.add_argument("--ratio", type=float, default=2.0)
    parser.add_argument("--anorexic-lambda", type=float, default=0.2)
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign shards (processes)")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per fuzzed query")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report as JSON (e.g. BENCH_workload.json)",
    )
    args = parser.parse_args(argv)
    config = CampaignConfig(
        benchmark=args.benchmark,
        scale=args.scale,
        data_seed=args.data_seed,
        stats_sample=args.stats_sample,
        stats_seed=args.stats_seed,
        seed=args.seed,
        count=args.count,
        generator=GeneratorConfig(max_joins=args.max_joins),
        max_dims=args.max_dims,
        ratio=args.ratio,
        lambda_=args.anorexic_lambda,
        workers=args.workers,
    )

    def progress(outcome):
        status = outcome.status.upper() if not outcome.ok else "ok"
        print(
            f"  [{outcome.index:>4}] {outcome.name:<12} {outcome.geometry:<10} "
            f"{status}"
            + (f"  mso={outcome.mso:.3f}/{outcome.bound:.2f}" if outcome.mso else ""),
            flush=True,
        )

    started = time.time()
    report = run_campaign(config, progress=progress if args.progress else None)
    elapsed = time.time() - started
    print(report.describe())
    print(f"  elapsed        : {elapsed:.1f} s "
          f"({elapsed / config.count * 1000:.0f} ms/query, "
          f"{config.workers} worker(s))")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
