"""Sweep-engine bench: vectorized cohort sweeps vs the reference loop.

Builds a 3D lab query, computes the optimized-bouquet cost field twice —
once with the per-location reference driver
(:func:`repro.core.simulation.optimized_cost_field` with
``engine="reference"``) and once with the cohort sweep engine
(:mod:`repro.sweep`) — and checks two acceptance criteria:

* **speed** — the cold engine sweep must beat the reference loop by at
  least ``--min-speedup`` (default 5x) on the full grid;
* **exactness** — on a deterministic location sample the engine's totals
  must match fresh reference runs within ``--tolerance`` relative error
  (default 1e-9; observed differences are float rounding, ~1e-16);
* **memoization** — after invalidating the totals memo (the path a
  statistics refresh takes) a re-sweep must replay cohort decision
  paths through the TraceTrie prefix memo with a nonzero hit rate and
  reproduce the cold field bit-for-bit.

A warm re-sweep is also timed to show the totals-memo path, and the
engine's ``sweep.field`` span telemetry (cohorts, splits, residue)
is folded into the report.

``make bench-sweep`` runs this and writes ``BENCH_sweep.json``; the
process exits non-zero when either criterion fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.simulation import optimized_cost_field, sample_locations
from ..obs.tracer import MemorySink, Tracer
from ..sweep import SweepEngine
from .harness import Lab

__all__ = ["SweepBenchReport", "run_sweep_bench", "main"]


@dataclass
class SweepBenchReport:
    """One engine-vs-reference comparison on a single query grid."""

    query: str
    grid: int
    dimensionality: int
    contours: int
    reference_seconds: float
    sweep_seconds: float
    warm_seconds: float
    trie_warm_seconds: float
    memo_hit_rate: float
    trie_warm_identical: bool
    sample_size: int
    max_rel_error: float
    min_speedup: float
    tolerance: float
    telemetry: Dict[str, float]

    @property
    def speedup(self) -> float:
        if self.sweep_seconds <= 0:
            return float("inf")
        return self.reference_seconds / self.sweep_seconds

    @property
    def fast_enough(self) -> bool:
        return self.speedup >= self.min_speedup

    @property
    def exact_enough(self) -> bool:
        return self.max_rel_error <= self.tolerance

    @property
    def memo_warm(self) -> bool:
        return self.memo_hit_rate > 0.0 and self.trie_warm_identical

    @property
    def ok(self) -> bool:
        return self.fast_enough and self.exact_enough and self.memo_warm

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "grid": self.grid,
            "dimensionality": self.dimensionality,
            "contours": self.contours,
            "reference_seconds": self.reference_seconds,
            "sweep_seconds": self.sweep_seconds,
            "warm_seconds": self.warm_seconds,
            "trie_warm_seconds": self.trie_warm_seconds,
            "memo_hit_rate": self.memo_hit_rate,
            "trie_warm_identical": self.trie_warm_identical,
            "speedup": self.speedup,
            "min_speedup": self.min_speedup,
            "sample_size": self.sample_size,
            "max_rel_error": self.max_rel_error,
            "tolerance": self.tolerance,
            "telemetry": self.telemetry,
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"sweep bench: {self.query} "
            f"({self.grid} locations, {self.contours} contours)",
            f"  reference loop : {self.reference_seconds:8.3f} s",
            f"  cohort sweep   : {self.sweep_seconds:8.3f} s "
            f"({self.speedup:.1f}x, need >= {self.min_speedup:g}x)"
            + ("" if self.fast_enough else "  FAIL"),
            f"  warm re-sweep  : {self.warm_seconds:8.5f} s",
            f"  trie-warm sweep: {self.trie_warm_seconds:8.5f} s "
            f"(memo hit rate {self.memo_hit_rate:.3f}, need > 0; "
            f"field {'bit-identical' if self.trie_warm_identical else 'DIVERGED'})"
            + ("" if self.memo_warm else "  FAIL"),
            f"  field equality : max rel err {self.max_rel_error:.3e} "
            f"on {self.sample_size} sampled locations "
            f"(need <= {self.tolerance:g})"
            + ("" if self.exact_enough else "  FAIL"),
        ]
        if self.telemetry:
            parts = ", ".join(
                f"{key}={value:g}" for key, value in sorted(self.telemetry.items())
            )
            lines.append(f"  engine         : {parts}")
        lines.append(f"  verdict        : {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _sweep_telemetry(tracer: Tracer) -> Dict[str, float]:
    spans = [s for s in tracer.sink.spans() if s.get("name") == "sweep.field"]
    if not spans:
        return {}
    # The first sweep.field span is the cold sweep; later ones are the
    # warm memo-path calls (0 cohorts by construction).
    attrs = spans[0].get("attrs", {})
    keep = (
        "cohorts",
        "splits",
        "residue",
        "batched_costings",
    )
    return {
        key: float(attrs[key]) for key in keep if attrs.get(key) is not None
    }


def _memo_hit_rate(tracer: Tracer) -> float:
    """Hit rate after the last sweep — i.e. including the trie-warm pass."""
    spans = [s for s in tracer.sink.spans() if s.get("name") == "sweep.field"]
    if not spans:
        return 0.0
    return float(spans[-1].get("attrs", {}).get("memo_hit_rate") or 0.0)


def run_sweep_bench(
    query: str = "3D_H_Q5",
    resolution: int = 12,
    scale: float = 0.002,
    stats_sample: int = 1000,
    seed: int = 7,
    lambda_: float = 0.2,
    ratio: float = 2.0,
    sample: int = 64,
    min_speedup: float = 5.0,
    tolerance: float = 1e-9,
    workers: Optional[int] = None,
) -> SweepBenchReport:
    """Build the lab query and race the engine against the reference."""
    tracer = Tracer(MemorySink())
    lab = Lab(
        tpch_scale=scale,
        tpcds_scale=scale,
        stats_sample=stats_sample,
        seed=seed,
        lambda_=lambda_,
        ratio=ratio,
        resolutions={1: resolution, 2: resolution, 3: resolution,
                     4: resolution, 5: resolution},
        tracer=tracer,
    )
    ql = lab.build(query)
    bouquet = ql.bouquet
    space = ql.space

    t0 = time.perf_counter()
    reference = optimized_cost_field(bouquet, engine="reference")
    t1 = time.perf_counter()

    engine = SweepEngine(bouquet, workers=workers)
    t2 = time.perf_counter()
    field = engine.cost_field()
    t3 = time.perf_counter()
    engine.totals(list(space.locations()))  # warm path: totals memo
    t4 = time.perf_counter()

    # Trie-warm pass: drop the totals memo but keep the TraceTrie (this
    # is exactly what a statistics refresh does via cache.invalidate()),
    # then re-sweep — cohorts replay their decision prefixes through the
    # memo instead of re-deriving them, and the field must come back
    # bit-identical.
    warm_field = engine.cost_field(refresh=True)
    t5 = time.perf_counter()
    trie_warm_identical = bool(np.array_equal(warm_field, field))

    # Exactness on a deterministic sample, compared against the dict the
    # reference loop produced for the same locations.
    locations = sample_locations(space, sample, seed=0)
    engine_totals = engine.totals(locations)
    ref_totals = np.array([reference[loc] for loc in locations])
    rel = np.abs(engine_totals - ref_totals) / np.maximum(
        np.abs(ref_totals), 1e-300
    )
    return SweepBenchReport(
        query=query,
        grid=space.size,
        dimensionality=space.dimensionality,
        contours=len(bouquet.contours),
        reference_seconds=t1 - t0,
        sweep_seconds=t3 - t2,
        warm_seconds=t4 - t3,
        trie_warm_seconds=t5 - t4,
        memo_hit_rate=_memo_hit_rate(tracer),
        trie_warm_identical=trie_warm_identical,
        sample_size=len(locations),
        max_rel_error=float(rel.max()) if len(locations) else 0.0,
        min_speedup=min_speedup,
        tolerance=tolerance,
        telemetry=_sweep_telemetry(tracer),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.sweep",
        description="benchmark the cohort sweep engine against the "
        "per-location reference driver",
    )
    parser.add_argument("--query", default="3D_H_Q5")
    parser.add_argument("--resolution", type=int, default=12)
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--stats-sample", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ratio", type=float, default=2.0)
    parser.add_argument("--anorexic-lambda", type=float, default=0.2)
    parser.add_argument("--sample", type=int, default=64)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--tolerance", type=float, default=1e-9)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report as JSON (e.g. BENCH_sweep.json)",
    )
    args = parser.parse_args(argv)
    report = run_sweep_bench(
        query=args.query,
        resolution=args.resolution,
        scale=args.scale,
        stats_sample=args.stats_sample,
        seed=args.seed,
        lambda_=args.anorexic_lambda,
        ratio=args.ratio,
        sample=args.sample,
        min_speedup=args.min_speedup,
        tolerance=args.tolerance,
        workers=args.workers,
    )
    print(report.describe())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
