"""Shared experimental harness ("the lab").

Builds the full evaluation environment of §6 once — TPC-H and TPC-DS
databases, sampled statistics, optimizers — and manufactures per-query
artifacts (ESS, plan diagram, bouquet, baselines) with laptop-scale grid
resolutions.  Used by the benchmark harness, the examples, and the
integration tests so every consumer sees the same world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..catalog.tpcds import tpcds_generator_spec, tpcds_schema
from ..catalog.tpch import tpch_generator_spec, tpch_schema
from ..core.bouquet import PlanBouquet, identify_bouquet
from ..core.simulation import basic_cost_field
from ..datagen.database import Database
from ..ess.diagram import PlanDiagram, coarse_subgrid
from ..ess.space import SelectivitySpace
from ..obs.tracer import MemorySink, Tracer
from ..obs.summary import summarize_trace
from ..optimizer.cost_model import POSTGRES_COST_MODEL, CostModel
from ..optimizer.optimizer import Optimizer
from ..optimizer.selectivity import actual_selectivities
from ..query.workload import (
    TABLE2_NAMES,
    WorkloadQuery,
    full_workload,
)
from ..robustness.nat import NativeOptimizerStrategy
from ..robustness.seer import SeerStrategy

#: Grid points per dimension, by ESS dimensionality.  Plan cost fields
#: are evaluated in one vectorized pass, so full-ESS sweeps stay cheap
#: even at tens of thousands of grid cells; the remaining cost is the
#: optimizer calls that seed the diagrams.
DEFAULT_RESOLUTIONS = {1: 100, 2: 30, 3: 16, 4: 9, 5: 7}

#: Dimensionality at/above which the Picasso-style candidate approximation
#: replaces the exhaustive one-optimization-per-location diagram.
EXHAUSTIVE_UP_TO = 2


@dataclass
class QueryLab:
    """All per-query artifacts for one workload entry."""

    workload: WorkloadQuery
    space: SelectivitySpace
    diagram: PlanDiagram
    bouquet: PlanBouquet
    nat: NativeOptimizerStrategy
    _seer: Optional[SeerStrategy] = None
    _basic_field: Optional[np.ndarray] = None
    _optimized_field: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def seer(self) -> SeerStrategy:
        if self._seer is None:
            self._seer = SeerStrategy(self.diagram)
        return self._seer

    @property
    def bouquet_cost_field(self) -> np.ndarray:
        """Basic-bouquet total cost at every qa (cached)."""
        if self._basic_field is None:
            self._basic_field = basic_cost_field(self.bouquet)
        return self._basic_field

    @property
    def optimized_cost_field(self) -> np.ndarray:
        """Optimized-bouquet total cost at every qa (cached).

        Computed by the vectorized sweep engine (:mod:`repro.sweep`);
        the grid-shaped counterpart of :attr:`bouquet_cost_field` for
        the Figure 13 driver.
        """
        if self._optimized_field is None:
            from ..sweep import optimized_field_array

            self._optimized_field = optimized_field_array(self.bouquet)
        return self._optimized_field

    @property
    def pic(self) -> np.ndarray:
        return self.diagram.costs


class Lab:
    """The full evaluation environment."""

    def __init__(
        self,
        tpch_scale: float = 0.003,
        tpcds_scale: float = 0.003,
        stats_sample: int = 2000,
        seed: int = 42,
        cost_model: CostModel = POSTGRES_COST_MODEL,
        lambda_: float = 0.2,
        ratio: float = 2.0,
        resolutions: Optional[Dict[int, int]] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.lambda_ = lambda_
        self.ratio = ratio
        self.resolutions = dict(DEFAULT_RESOLUTIONS)
        if resolutions:
            self.resolutions.update(resolutions)
        #: Lab-wide telemetry: an in-memory tracer by default so benches
        #: can emit a trace summary next to their results for free.
        self.tracer = tracer if tracer is not None else Tracer(MemorySink())
        self.h_schema = tpch_schema(tpch_scale)
        self.ds_schema = tpcds_schema(tpcds_scale)
        self.h_db = Database.generate(self.h_schema, tpch_generator_spec(tpch_scale), seed=seed)
        self.ds_db = Database.generate(self.ds_schema, tpcds_generator_spec(tpcds_scale), seed=seed + 1)
        self.h_stats = self.h_db.build_statistics(sample_size=stats_sample, seed=seed)
        self.ds_stats = self.ds_db.build_statistics(sample_size=stats_sample, seed=seed)
        self.h_optimizer = Optimizer(self.h_schema, self.h_stats, cost_model, tracer=self.tracer)
        self.ds_optimizer = Optimizer(self.ds_schema, self.ds_stats, cost_model, tracer=self.tracer)
        self.workload = full_workload(self.h_schema, self.ds_schema)
        self._labs: Dict[str, QueryLab] = {}

    # ------------------------------------------------------------------

    def _env_for(self, name: str) -> Tuple[Optimizer, Database]:
        if "DS" in name:
            return self.ds_optimizer, self.ds_db
        return self.h_optimizer, self.h_db

    def resolution_for(self, dimensionality: int) -> int:
        return self.resolutions.get(dimensionality, 5)

    def build(self, name: str, resolution: Optional[int] = None) -> QueryLab:
        """Build (and cache) the per-query lab for one workload entry."""
        cached = self._labs.get(name)
        if cached is not None and resolution is None:
            return cached
        workload = self.workload[name]
        optimizer, database = self._env_for(name)
        dims = workload.dimensions()
        res = resolution or self.resolution_for(len(dims))
        with self.tracer.span("lab.build", query=name, resolution=res):
            base = actual_selectivities(workload.query, database)
            space = SelectivitySpace(workload.query, dims, res, base)
            if space.dimensionality <= EXHAUSTIVE_UP_TO:
                diagram = PlanDiagram.exhaustive(optimizer, space)
            else:
                diagram = PlanDiagram.from_candidates(
                    optimizer, space, coarse_subgrid(space, per_dim=4)
                )
            bouquet = identify_bouquet(diagram, lambda_=self.lambda_, ratio=self.ratio)
        lab = QueryLab(
            workload=workload,
            space=space,
            diagram=diagram,
            bouquet=bouquet,
            nat=NativeOptimizerStrategy(diagram),
        )
        if resolution is None:
            self._labs[name] = lab
        return lab

    def build_all(self, names: Optional[List[str]] = None) -> Dict[str, QueryLab]:
        names = names or TABLE2_NAMES
        return {name: self.build(name) for name in names}

    def trace_summary(self) -> str:
        """Condense the lab tracer's records + metrics into a text report.

        Works only with a memory-sinked tracer (the default); other sinks
        yield a metrics-only summary.
        """
        records = list(getattr(self.tracer.sink, "records", ()))
        snapshot = self.tracer.snapshot()
        for name, value in sorted(snapshot["counters"].items()):
            records.append({"type": "counter", "name": name, "value": value})
        for name, stats in sorted(snapshot["timings"].items()):
            records.append({"type": "timing", "name": name, **stats})
        return summarize_trace(records).describe()


_SHARED_LAB: Optional[Lab] = None


def shared_lab() -> Lab:
    """A process-wide default lab, shared across benches to amortize the
    (deterministic) database generation and diagram construction."""
    global _SHARED_LAB
    if _SHARED_LAB is None:
        _SHARED_LAB = Lab()
    return _SHARED_LAB
