"""Template-cache bench: templated workload, rebind vs. fresh compile.

The perf gate for the cross-query template tier (:mod:`repro.template`):
a seeded wlgen workload of ``templates`` query shapes with ``bindings``
constant-rebindings each is served twice through a
:class:`~repro.serve.BouquetServer` —

* a **baseline pass** with the template tier disabled
  (``BouquetConfig(template=False)``): every instance compiles from
  scratch through the ordinary single-flight path;
* a **template pass** with the tier enabled on a fresh server: the first
  instance of each template compiles and registers the representative,
  every later binding rebinds (:func:`repro.template.rebind_compiled`).

The workload is range-predicate-only on purpose: range selections all
become error dimensions, so two bindings of one template differ *only*
in dimension-pid constants — the rebind's delta refresh takes the
identity path and plans **zero** ESS locations.  That is the whole
economics of the tier; equality/IN constants would move non-dimension
base selectivities and degrade rebinds into partial recompiles.

Acceptance criteria (``make bench-template`` gates on all of it):

* **speedup** — the template pass must be at least ``--min-speedup``
  (default 5x) faster end to end than the baseline pass;
* **coverage** — every non-exemplar instance must be served from the
  template tier (``hits == rebinds == instances - templates``, zero
  fallbacks);
* **equivalence** — every served bouquet must be bit-identical to a
  fresh from-scratch compile of the same instance
  (:func:`repro.drift.bouquets_equal`), zero violations.

``make bench-template`` writes ``BENCH_template.json``;
``make template-smoke`` runs the same gates (minus the 5x bar, which a
tiny grid cannot meaningfully clear) on a smaller workload for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..api import BouquetConfig, Catalog, compile_bouquet
from ..catalog.tpch import tpch_generator_spec, tpch_schema
from ..datagen.database import Database
from ..drift import bouquets_equal
from ..obs.tracer import MemorySink, Tracer
from ..serve.cache import BouquetArtifactStore
from ..serve.server import BouquetServer
from ..wlgen.generator import GeneratorConfig, QueryGenerator

__all__ = ["TemplateBenchReport", "run_template_bench", "main"]

#: Range-only sampling: every selection becomes an error dimension, so
#: rebinding a template instance is an identity delta refresh.
TEMPLATED_WORKLOAD_CONFIG = GeneratorConfig(
    min_joins=2,
    max_joins=2,
    min_predicates=2,
    max_predicates=2,
    equality_weight=0.0,
    range_weight=1.0,
    in_weight=0.0,
    groupby_probability=0.0,
    aggregate_probability=0.0,
)


def _optimized_locations(tracer: Tracer) -> float:
    return tracer.counters.get("optimizer.calls", 0) + tracer.counters.get(
        "optimizer.batched_locations", 0
    )


@dataclass
class TemplateBenchReport:
    """Outcome of one baseline-vs-template workload comparison."""

    templates: int
    bindings: int
    instances: int
    baseline_seconds: float
    template_seconds: float
    baseline_optimizer_locations: float
    template_optimizer_locations: float
    template_hits: float
    template_misses: float
    template_rebinds: float
    template_fallbacks: float
    template_sources: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    min_speedup: float = 5.0
    require_speedup: bool = True
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / max(self.template_seconds, 1e-12)

    @property
    def coverage_ok(self) -> bool:
        """Compile-once-per-template economics actually held.

        Exactly one from-scratch compile per template; every other
        instance came from a rebind or (for bindings whose constants
        collided into the same exact key) the exact cache; the tier was
        exercised at least once and never fell back.
        """
        return (
            self.template_sources.count("compiled") == self.templates
            and self.template_misses == self.templates
            and self.template_hits == self.template_rebinds
            and self.template_rebinds >= 1
            and self.template_fallbacks == 0
            and all(
                source in ("compiled", "template", "memory", "disk")
                for source in self.template_sources
            )
        )

    @property
    def ok(self) -> bool:
        return (
            self.coverage_ok
            and not self.violations
            and (not self.require_speedup or self.speedup >= self.min_speedup)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "templates": self.templates,
            "bindings": self.bindings,
            "instances": self.instances,
            "baseline_seconds": self.baseline_seconds,
            "template_seconds": self.template_seconds,
            "speedup": self.speedup,
            "min_speedup": self.min_speedup,
            "require_speedup": self.require_speedup,
            "baseline_optimizer_locations": self.baseline_optimizer_locations,
            "template_optimizer_locations": self.template_optimizer_locations,
            "template_hits": self.template_hits,
            "template_misses": self.template_misses,
            "template_rebinds": self.template_rebinds,
            "template_fallbacks": self.template_fallbacks,
            "template_sources": self.template_sources,
            "violations": self.violations,
            "coverage_ok": self.coverage_ok,
            "ok": self.ok,
        }

    def describe(self) -> str:
        from .reporting import format_table

        speedup_bar = (
            f"(need >= {self.min_speedup:g}x)"
            if self.require_speedup
            else "(informational)"
        )
        rows = [
            ["workload", f"{self.templates} templates x {self.bindings} bindings"],
            ["baseline pass", f"{self.baseline_seconds:.4f}s"],
            ["template pass", f"{self.template_seconds:.4f}s"],
            ["speedup", f"{self.speedup:.1f}x {speedup_bar}"],
            [
                "optimizer locations",
                f"{self.baseline_optimizer_locations:g} baseline vs "
                f"{self.template_optimizer_locations:g} templated",
            ],
            [
                "template tier",
                f"{self.template_hits:g} hits / {self.template_misses:g} misses "
                f"/ {self.template_rebinds:g} rebinds "
                f"/ {self.template_fallbacks:g} fallbacks",
            ],
            [
                "coverage",
                "one compile per template, rest rebound"
                if self.coverage_ok
                else f"INCOMPLETE ({self.template_sources.count('compiled'):g} "
                f"compiles for {self.templates} templates)",
            ],
            [
                "equivalence",
                "all bit-identical to fresh compiles"
                if not self.violations
                else f"{len(self.violations)} VIOLATIONS",
            ],
            ["verdict", "OK" if self.ok else "FAIL"],
        ]
        return format_table(["template bench", "value"], rows, title="template bench")


def run_template_bench(
    templates: int = 4,
    bindings: int = 16,
    scale: float = 0.002,
    seed: int = 7,
    stats_sample: int = 800,
    resolution: int = 32,
    min_speedup: float = 5.0,
    require_speedup: bool = True,
    tracer: Optional[Tracer] = None,
) -> TemplateBenchReport:
    """Serve a templated wlgen workload with and without the template tier."""
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=seed)
    statistics = database.build_statistics(sample_size=stats_sample, seed=seed)
    catalog = Catalog(schema, statistics=statistics, database=database)
    generator = QueryGenerator(schema, database, TEMPLATED_WORKLOAD_CONFIG)

    # Scan the campaign for template shapes with at least two (range)
    # selections — a selection-free shape has no error dimensions and
    # every binding of it is the *same* query, which exercises the exact
    # cache rather than the template tier.
    workload = []
    chosen = 0
    index = 0
    while chosen < templates:
        if index > 100 * templates:
            raise RuntimeError(
                "template bench: campaign yielded too few usable templates"
            )
        exemplar = generator.generate(seed, index)
        if len(exemplar.query.selections) < 2:
            index += 1
            continue
        workload.extend(
            item.query for item in generator.generate_template(seed, index, bindings)
        )
        chosen += 1
        index += 1

    # Baseline: template tier off, memory-only store, fresh server.
    base_tracer = Tracer(MemorySink())
    base_config = BouquetConfig(resolution=resolution, template=False)
    with BouquetServer(
        catalog,
        config=base_config,
        store=BouquetArtifactStore(tracer=base_tracer),
        tracer=base_tracer,
    ) as server:
        t0 = time.perf_counter()
        for query in workload:
            server.compile(query)
        baseline_seconds = time.perf_counter() - t0
    baseline_locations = _optimized_locations(base_tracer)

    # Template pass: tier on, fresh server so nothing is pre-warmed.
    tracer = tracer if tracer is not None else Tracer(MemorySink())
    config = BouquetConfig(resolution=resolution, template=True)
    sources: List[str] = []
    served = []
    with BouquetServer(
        catalog,
        config=config,
        store=BouquetArtifactStore(tracer=tracer),
        tracer=tracer,
    ) as server:
        t0 = time.perf_counter()
        for query in workload:
            compiled, source = server.compile(query)
            sources.append(source)
            served.append(compiled)
        template_seconds = time.perf_counter() - t0
    template_locations = _optimized_locations(tracer)

    # Equivalence: every served bouquet must match a fresh compile of
    # the same instance, bit for bit (untimed — pure validation).
    violations: List[str] = []
    for query, compiled, source in zip(workload, served, sources):
        reference = compile_bouquet(query, catalog, config=config)
        for problem in bouquets_equal(compiled.bouquet, reference.bouquet):
            violations.append(f"{query.name} (served via {source}): {problem}")

    return TemplateBenchReport(
        templates=templates,
        bindings=bindings,
        instances=len(workload),
        baseline_seconds=baseline_seconds,
        template_seconds=template_seconds,
        baseline_optimizer_locations=baseline_locations,
        template_optimizer_locations=template_locations,
        template_hits=tracer.counters.get("serve.template.hits", 0),
        template_misses=tracer.counters.get("serve.template.misses", 0),
        template_rebinds=tracer.counters.get("serve.template.rebinds", 0),
        template_fallbacks=tracer.counters.get("serve.template.fallbacks", 0),
        template_sources=sources,
        violations=violations,
        min_speedup=min_speedup,
        require_speedup=require_speedup,
        counters=dict(tracer.counters),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.template",
        description="benchmark the cross-query template cache: rebind vs. "
        "fresh compile on a templated wlgen workload",
    )
    parser.add_argument("--templates", type=int, default=4)
    parser.add_argument("--bindings", type=int, default=16)
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--stats-sample", type=int, default=800)
    parser.add_argument("--resolution", type=int, default=32)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI workload; gates on coverage and equivalence but "
        "reports speedup as informational only",
    )
    parser.add_argument("--out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_template_bench(
            templates=2,
            bindings=4,
            scale=args.scale,
            seed=args.seed,
            stats_sample=args.stats_sample,
            resolution=16,
            min_speedup=args.min_speedup,
            require_speedup=False,
        )
    else:
        report = run_template_bench(
            templates=args.templates,
            bindings=args.bindings,
            scale=args.scale,
            seed=args.seed,
            stats_sample=args.stats_sample,
            resolution=args.resolution,
            min_speedup=args.min_speedup,
        )
    print(report.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
