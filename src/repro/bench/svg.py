"""Minimal pure-Python SVG plotting, for regenerating the paper's figures.

No third-party plotting dependency is available offline, so this module
provides exactly what the figures need: log-log line/step charts with
legends (Figures 3/4), grouped log-scale bar charts (Figures 14-18), and
2D cell maps (plan diagrams).  Output is standalone SVG.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: A colour cycle that stays readable on white.
PALETTE = [
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
    "#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2",
    "#1f3b66", "#a33b3b", "#3a7a3a", "#6b4f8f", "#b8860b",
]


class SvgCanvas:
    """Accumulates SVG elements within a fixed viewport."""

    def __init__(self, width: int = 640, height: int = 420):
        self.width = width
        self.height = height
        self._elements: List[str] = []

    def add(self, element: str):
        self._elements.append(element)

    def line(self, x1, y1, x2, y2, color="#555", width=1.0, dash: Optional[str] = None):
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.add(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], color: str, width=2.0):
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.add(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{width}" stroke-linejoin="round"/>'
        )

    def rect(self, x, y, w, h, fill, stroke="none", opacity=1.0, title: Optional[str] = None):
        body = (
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}" opacity="{opacity:g}">'
        )
        if title:
            body += f"<title>{_escape(title)}</title>"
        self.add(body + "</rect>")

    def circle(self, x, y, r, fill):
        self.add(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{fill}"/>')

    def text(self, x, y, content, size=11, anchor="start", color="#222", rotate=None):
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self.add(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="Helvetica, Arial, sans-serif" text-anchor="{anchor}" '
            f'fill="{color}"{transform}>{_escape(content)}</text>'
        )

    def render(self) -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str):
        with open(path, "w") as handle:
            handle.write(self.render())


def _escape(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


# ---------------------------------------------------------------------------
# Axes helpers
# ---------------------------------------------------------------------------

_MARGIN = dict(left=70, right=20, top=40, bottom=55)


class _LogLogAxes:
    def __init__(self, canvas: SvgCanvas, x_range, y_range, title, x_label, y_label):
        self.canvas = canvas
        self.x0 = _MARGIN["left"]
        self.x1 = canvas.width - _MARGIN["right"]
        self.y0 = canvas.height - _MARGIN["bottom"]
        self.y1 = _MARGIN["top"]
        self.lx = (math.log10(x_range[0]), math.log10(x_range[1]))
        self.ly = (math.log10(y_range[0]), math.log10(y_range[1]))
        canvas.text(canvas.width / 2, 20, title, size=13, anchor="middle")
        canvas.text(canvas.width / 2, canvas.height - 12, x_label, anchor="middle")
        canvas.text(16, canvas.height / 2, y_label, anchor="middle", rotate=-90)
        canvas.line(self.x0, self.y0, self.x1, self.y0)
        canvas.line(self.x0, self.y0, self.x0, self.y1)
        self._ticks()

    def _ticks(self):
        for exp in range(math.floor(self.lx[0]), math.floor(self.lx[1]) + 1):
            x = self.px(10.0**exp)
            if self.x0 <= x <= self.x1:
                self.canvas.line(x, self.y0, x, self.y0 + 4)
                self.canvas.text(x, self.y0 + 16, f"1e{exp}", size=9, anchor="middle")
        for exp in range(math.floor(self.ly[0]), math.floor(self.ly[1]) + 1):
            y = self.py(10.0**exp)
            if self.y1 <= y <= self.y0:
                self.canvas.line(self.x0 - 4, y, self.x0, y)
                self.canvas.text(self.x0 - 8, y + 3, f"1e{exp}", size=9, anchor="end")
                self.canvas.line(self.x0, y, self.x1, y, color="#eee")

    def px(self, x: float) -> float:
        f = (math.log10(x) - self.lx[0]) / max(self.lx[1] - self.lx[0], 1e-12)
        return self.x0 + f * (self.x1 - self.x0)

    def py(self, y: float) -> float:
        f = (math.log10(y) - self.ly[0]) / max(self.ly[1] - self.ly[0], 1e-12)
        return self.y0 - f * (self.y0 - self.y1)


def _legend(canvas: SvgCanvas, entries: List[Tuple[str, str]], x=None, y=None):
    x = x if x is not None else _MARGIN["left"] + 10
    y = y if y is not None else _MARGIN["top"] + 8
    for i, (label, color) in enumerate(entries):
        yy = y + i * 15
        canvas.rect(x, yy - 8, 10, 10, fill=color)
        canvas.text(x + 15, yy, label, size=10)


# ---------------------------------------------------------------------------
# Figure-level plots
# ---------------------------------------------------------------------------


def loglog_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str,
    x_label: str,
    y_label: str,
    hlines: Optional[Sequence[float]] = None,
    width: int = 640,
    height: int = 420,
) -> SvgCanvas:
    """A log-log multi-series line chart (Figures 3 and 4's layout).

    ``series`` maps label -> (xs, ys); ``hlines`` draws dashed horizontal
    guides (the isocost steps of Figure 3).
    """
    xs_all = [x for xs, _ in series.values() for x in xs]
    ys_all = [y for _, ys in series.values() for y in ys]
    if hlines:
        ys_all = list(ys_all) + list(hlines)
    canvas = SvgCanvas(width, height)
    axes = _LogLogAxes(
        canvas,
        (min(xs_all), max(xs_all)),
        (min(ys_all) * 0.8, max(ys_all) * 1.2),
        title,
        x_label,
        y_label,
    )
    for level in hlines or ():
        y = axes.py(level)
        canvas.line(axes.x0, y, axes.x1, y, color="#999", dash="5,4")
    entries = []
    for i, (label, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        points = [(axes.px(x), axes.py(y)) for x, y in zip(xs, ys)]
        canvas.polyline(points, color)
        entries.append((label, color))
    _legend(canvas, entries)
    return canvas


def grouped_log_bars(
    categories: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str,
    y_label: str,
    width: int = 720,
    height: int = 420,
) -> SvgCanvas:
    """Grouped bar chart with a log y axis (Figures 14/15/18's layout)."""
    canvas = SvgCanvas(width, height)
    values = [v for vs in series.values() for v in vs if v > 0]
    axes = _LogLogAxes(
        canvas,
        (1.0, 10.0),  # x is categorical; the log x scale is unused
        (min(values) * 0.8, max(values) * 1.3),
        title,
        "",
        y_label,
    )
    n_cat = len(categories)
    n_series = len(series)
    slot = (axes.x1 - axes.x0) / max(n_cat, 1)
    bar = slot * 0.8 / max(n_series, 1)
    entries = []
    for s_idx, (label, vals) in enumerate(series.items()):
        color = PALETTE[s_idx % len(PALETTE)]
        entries.append((label, color))
        for c_idx, value in enumerate(vals):
            if value <= 0:
                continue
            x = axes.x0 + c_idx * slot + slot * 0.1 + s_idx * bar
            y = axes.py(value)
            canvas.rect(
                x, y, bar * 0.92, axes.y0 - y, fill=color,
                title=f"{categories[c_idx]} {label}: {value:.3g}",
            )
    for c_idx, category in enumerate(categories):
        x = axes.x0 + (c_idx + 0.5) * slot
        canvas.text(x, axes.y0 + 16, category, size=8, anchor="middle", rotate=-30)
    _legend(canvas, entries, x=axes.x1 - 130)
    return canvas


def diagram_map(
    plan_ids,
    title: str,
    contour_cells: Optional[set] = None,
    width: int = 520,
    height: int = 520,
) -> SvgCanvas:
    """2D plan-diagram cell map (Figure 6's geometry), dimension 0 upward."""
    rows, cols = plan_ids.shape
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 20, title, size=13, anchor="middle")
    x0, y0 = 40, 40
    cell_w = (width - 60) / cols
    cell_h = (height - 80) / rows
    distinct = sorted({int(p) for p in plan_ids.ravel()})
    color_of = {p: PALETTE[i % len(PALETTE)] for i, p in enumerate(distinct)}
    for i in range(rows):
        for j in range(cols):
            x = x0 + j * cell_w
            y = y0 + (rows - 1 - i) * cell_h
            plan = int(plan_ids[i, j])
            canvas.rect(
                x, y, cell_w + 0.5, cell_h + 0.5, fill=color_of[plan],
                title=f"({i},{j}) P{plan}",
            )
            if contour_cells and (i, j) in contour_cells:
                canvas.circle(x + cell_w / 2, y + cell_h / 2, min(cell_w, cell_h) / 5, "black")
    # Horizontal legend strip along the bottom edge.
    lx = x0
    for p in distinct[:12]:
        canvas.rect(lx, height - 26, 10, 10, fill=color_of[p])
        canvas.text(lx + 13, height - 17, f"P{p}", size=9)
        lx += 48
    if contour_cells:
        canvas.circle(lx + 5, height - 21, 4, "black")
        canvas.text(lx + 13, height - 17, "contour", size=9)
    return canvas
