"""Serving load harness: replay thousands of concurrent sessions
against the multi-tenant front-end and account every outcome.

Two execution modes share one workload generator, one gateway stack,
and one report shape:

* **simulated** (the CI fast path, ``make serve-load-smoke``): a
  discrete-event simulation on a
  :class:`~repro.runtime.simulated.SimulatedRuntime` — arrivals, queue
  waits, and service completions are events on a virtual clock, so
  thousands of concurrent sessions replay deterministically in
  milliseconds of wall time.  The *real*
  :class:`~repro.serve.front.ServeGateway` and
  :class:`~repro.serve.admission.AdmissionController` run unmodified;
  only the bouquet backend is a service-time model.
* **asyncio** (the benchmark path, ``make bench-serve``): the real
  :class:`~repro.serve.http.BouquetFrontEnd` on a loopback socket,
  sessions as asyncio tasks driving
  :class:`~repro.serve.http.AsyncServeClient` over keep-alive HTTP —
  optionally against a genuine :class:`~repro.serve.BouquetServer`
  (``--real-server``) for end-to-end numbers.

The hard gate, in every mode: **zero silent drops** — every request
issued receives exactly one typed :class:`~repro.serve.ServeResponse`
(shed counts as a response; a missing or untyped one fails the run).
``make bench-serve`` writes the percentiles, shed/degrade counts, and
cache-hit rates to ``BENCH_serve.json`` and exits non-zero if any gate
fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..exceptions import ReproError
from ..obs.tracer import MemorySink, Tracer
from ..runtime import AsyncioRuntime, SimulatedRuntime
from ..serve.admission import TenantQuota
from ..serve.envelope import STATUSES, ServeRequest, ServeResponse
from ..serve.front import ServeGateway
from ..serve.http import AsyncServeClient, BouquetFrontEnd

__all__ = [
    "LoadSpec",
    "ServeLoadReport",
    "SimulatedBouquetBackend",
    "main",
    "run_async_load",
    "run_simulated_load",
]


# ----------------------------------------------------------------------
# Workload + backend model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one load run (both modes consume the same spec)."""

    sessions: int = 2400
    requests_per_session: int = 3
    templates: int = 8
    tenants: Mapping[str, float] = field(
        default_factory=lambda: {"alpha": 0.72, "beta": 0.28}
    )
    ramp_seconds: float = 0.25  # all sessions start inside this window
    think_seconds: float = 0.2  # mean gap between a session's requests
    workers: int = 48  # backend service slots
    seed: int = 42

    def __post_init__(self):
        if self.sessions < 1 or self.requests_per_session < 1:
            raise ReproError("load spec: needs at least one session/request")
        if self.templates < 1:
            raise ReproError("load spec: needs at least one query template")
        if not self.tenants:
            raise ReproError("load spec: needs at least one tenant")

    def template_sql(self, index: int) -> str:
        """Distinct SPJ template texts — distinct artifact-cache keys.

        Indexes below ``templates`` are the hot set; the workload
        generator also draws a long tail of cold indexes above it."""
        return (
            "select * from lineitem, orders "
            "where l_orderkey = o_orderkey "
            f"and o_totalprice < {100000 + 5000 * index}"
        )


class SimulatedBouquetBackend:
    """A service-time model of :class:`~repro.serve.BouquetServer`.

    Reproduces the serving ladder's *shape* — first request per template
    pays a compile, repeats hit the artifact cache, ``cached_only``
    misses degrade to the NAT path — with virtual durations instead of
    real bouquet work.  Deterministic: the only state is the template
    cache and a request counter (``fail_every`` injects periodic
    ``execute-failed`` responses so the failed status stays exercised).
    """

    def __init__(
        self,
        *,
        compile_seconds: float = 0.5,
        hit_seconds: float = 0.004,
        nat_seconds: float = 0.02,
        fail_every: int = 0,
        budget_floor: float = 40.0,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.compile_seconds = compile_seconds
        self.hit_seconds = hit_seconds
        self.nat_seconds = nat_seconds
        self.fail_every = fail_every
        self.budget_floor = budget_floor
        self._sleep = sleep
        self.compiled: set = set()
        self.hits = 0
        self.misses = 0
        self.requests = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def simulate(self, request: ServeRequest) -> Tuple[float, ServeResponse]:
        """Returns (virtual service seconds, typed response)."""
        self.requests += 1
        sql = request.sql or ""
        name = sql[:40]
        if self.fail_every and self.requests % self.fail_every == 0:
            return self.hit_seconds, ServeResponse(
                status="failed",
                query_name=name,
                error="injected execution fault",
                error_code="execute-failed",
            )
        if request.budget is not None and request.budget < self.budget_floor:
            return self.hit_seconds, ServeResponse(
                status="budget-exhausted",
                query_name=name,
                error=f"budget {request.budget:g} below plan cost floor",
                error_code="budget-exhausted",
            )
        if sql in self.compiled:
            self.hits += 1
            return self.hit_seconds, ServeResponse(
                status="ok", cache="memory", query_name=name, rows=100
            )
        if request.cached_only:
            # The overload ladder: no compile allowed, degrade to NAT.
            self.misses += 1
            return self.nat_seconds, ServeResponse(
                status="degraded",
                query_name=name,
                error="cached-only miss under overload",
                error_code="cached-only-miss",
                rows=100,
            )
        self.misses += 1
        self.compiled.add(sql)
        return self.compile_seconds, ServeResponse(
            status="ok", cache="none", query_name=name, rows=100
        )

    def serve_request(self, request: ServeRequest) -> ServeResponse:
        """Backend protocol for :class:`ServeGateway` — blocks for the
        service time when a real sleeper was injected (asyncio mode)."""
        seconds, response = self.simulate(request)
        if self._sleep is not None:
            self._sleep(seconds)
        return response


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
    return ordered[index]


@dataclass
class ServeLoadReport:
    """Outcome of one load run; shape is identical across modes."""

    mode: str
    sessions: int
    requests: int
    responses: int
    peak_sessions: int
    statuses: Dict[str, int] = field(default_factory=dict)
    error_codes: Dict[str, int] = field(default_factory=dict)
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    hit_rate: float = 0.0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    untyped: int = 0  # non-ok responses missing an error_code
    counters: Dict[str, float] = field(default_factory=dict)
    min_concurrent: int = 0  # gate: peak concurrent sessions required

    @property
    def silent_drops(self) -> int:
        return self.requests - self.responses

    @property
    def answered(self) -> int:
        return self.statuses.get("ok", 0) + self.statuses.get("degraded", 0)

    @property
    def shed(self) -> int:
        return self.statuses.get("shed", 0)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.responses if self.responses else 0.0

    @property
    def ok(self) -> bool:
        return (
            self.silent_drops == 0
            and self.untyped == 0
            and self.responses > 0
            and self.answered > 0
            and all(status in STATUSES for status in self.statuses)
            and self.peak_sessions >= self.min_concurrent
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "sessions": self.sessions,
            "requests": self.requests,
            "responses": self.responses,
            "silent_drops": self.silent_drops,
            "untyped": self.untyped,
            "peak_sessions": self.peak_sessions,
            "min_concurrent": self.min_concurrent,
            "statuses": dict(sorted(self.statuses.items())),
            "error_codes": dict(sorted(self.error_codes.items())),
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "shed_rate": self.shed_rate,
            "hit_rate": self.hit_rate,
            "wall_seconds": self.wall_seconds,
            "virtual_seconds": self.virtual_seconds,
            "counters": dict(sorted(self.counters.items())),
            "ok": self.ok,
        }

    def describe(self) -> str:
        from .reporting import format_table

        statuses = ", ".join(
            f"{name}={count}" for name, count in sorted(self.statuses.items())
        )
        rows = [
            ["mode", self.mode],
            ["sessions (peak concurrent)", f"{self.sessions} ({self.peak_sessions})"],
            ["requests -> responses", f"{self.requests} -> {self.responses}"],
            ["silent drops", self.silent_drops],
            ["statuses", statuses],
            ["latency p50/p95/p99",
             f"{self.latency_p50 * 1e3:.1f} / {self.latency_p95 * 1e3:.1f} / "
             f"{self.latency_p99 * 1e3:.1f} ms"],
            ["shed rate", f"{self.shed_rate:.1%}"],
            ["cache hit rate", f"{self.hit_rate:.1%}"],
            ["wall clock", f"{self.wall_seconds:.3f}s"],
            ["virtual clock", f"{self.virtual_seconds:.3f}s"],
            ["verdict", "OK" if self.ok else "FAIL"],
        ]
        return format_table(
            ["serve load", "value"], rows, title=f"serve load ({self.mode})"
        )


def _build_report(
    mode: str,
    spec: LoadSpec,
    requests: int,
    responses: List[ServeResponse],
    peak_sessions: int,
    hit_rate: float,
    wall_seconds: float,
    virtual_seconds: float,
    tracer: Tracer,
    min_concurrent: int,
) -> ServeLoadReport:
    statuses: Dict[str, int] = {}
    error_codes: Dict[str, int] = {}
    untyped = 0
    latencies: List[float] = []
    for response in responses:
        statuses[response.status] = statuses.get(response.status, 0) + 1
        if response.status != "ok":
            if response.error_code is None:
                untyped += 1
            else:
                error_codes[response.error_code] = (
                    error_codes.get(response.error_code, 0) + 1
                )
        if response.answered:
            latencies.append(response.latency_seconds)
    return ServeLoadReport(
        mode=mode,
        sessions=spec.sessions,
        requests=requests,
        responses=len(responses),
        peak_sessions=peak_sessions,
        statuses=statuses,
        error_codes=error_codes,
        latency_p50=_percentile(latencies, 50),
        latency_p95=_percentile(latencies, 95),
        latency_p99=_percentile(latencies, 99),
        hit_rate=hit_rate,
        wall_seconds=wall_seconds,
        virtual_seconds=virtual_seconds,
        untyped=untyped,
        counters={
            name: value
            for name, value in sorted(tracer.counters.items())
            if name.startswith("serve.front.")
        },
        min_concurrent=min_concurrent,
    )


def _session_scripts(
    spec: LoadSpec,
) -> List[Tuple[str, float, List[Tuple[int, float, Optional[float]]]]]:
    """Pre-generate every session up front (tenant, start time, and the
    per-request (template, think-gap, budget) script), so randomness is
    consumed in a fixed order regardless of event interleaving.

    90% of requests draw from the hot template set; 10% draw a cold
    long-tail template (cache misses keep happening under load, so the
    overload ladder's cached-only path is actually exercised).  2% of
    requests carry a deliberately tight cost budget."""
    rng = random.Random(spec.seed)
    names = list(spec.tenants)
    weights = [spec.tenants[name] for name in names]
    scripts = []
    for _ in range(spec.sessions):
        tenant = rng.choices(names, weights=weights, k=1)[0]
        start = rng.uniform(0.0, spec.ramp_seconds)
        steps = []
        for _ in range(spec.requests_per_session):
            if rng.random() < 0.1:
                template = spec.templates + rng.randrange(spec.templates * 4)
            else:
                template = rng.randrange(spec.templates)
            budget = 30.0 if rng.random() < 0.02 else None
            steps.append(
                (template, spec.think_seconds * rng.uniform(0.5, 1.5), budget)
            )
        scripts.append((tenant, start, steps))
    return scripts


# ----------------------------------------------------------------------
# Simulated mode (discrete-event, virtual clock)
# ----------------------------------------------------------------------


def run_simulated_load(
    spec: Optional[LoadSpec] = None,
    *,
    quotas: Optional[Mapping[str, TenantQuota]] = None,
    default_quota: Optional[TenantQuota] = None,
    degrade_at: float = 0.7,
    degraded_budget: Optional[float] = 50.0,
    backend: Optional[SimulatedBouquetBackend] = None,
    min_concurrent: int = 0,
    tracer: Optional[Tracer] = None,
) -> ServeLoadReport:
    """Replay the workload as a deterministic discrete-event simulation.

    The real gateway/admission stack runs on a virtual clock; a given
    (spec, quotas) pair replays bit-identically on any machine.
    """
    spec = spec if spec is not None else LoadSpec()
    tracer = tracer if tracer is not None else Tracer(MemorySink())
    runtime = SimulatedRuntime()
    backend = (
        backend
        if backend is not None
        else SimulatedBouquetBackend(fail_every=211)
    )
    gateway = ServeGateway(
        backend,
        runtime=runtime,
        quotas=quotas,
        default_quota=default_quota,
        degrade_at=degrade_at,
        degraded_budget=degraded_budget,
        tracer=tracer,
    )
    scripts = _session_scripts(spec)

    responses: List[ServeResponse] = []
    pending: deque = deque()  # admitted tickets waiting for a slot
    state = {
        "free": spec.workers,
        "issued": 0,
        "active": 0,
        "peak": 0,
        "left": [len(steps) for _, _, steps in scripts],
    }

    def pump() -> None:
        while state["free"] > 0 and pending:
            state["free"] -= 1
            ticket, sid = pending.popleft()
            ticket.started_at = runtime.now()
            seconds, response = backend.simulate(
                gateway.effective_request(ticket)
            )
            runtime.schedule(seconds, complete, ticket, response, sid)

    def settle(sid: int) -> None:
        state["left"][sid] -= 1
        if state["left"][sid] == 0:
            state["active"] -= 1

    def complete(ticket, response: ServeResponse, sid: int) -> None:
        responses.append(gateway.finish(ticket, response))
        state["free"] += 1
        settle(sid)
        pump()

    def issue(sid: int, step: int) -> None:
        tenant, _, steps = scripts[sid]
        if step == 0:
            state["active"] += 1
            state["peak"] = max(state["peak"], state["active"])
        template, think, budget = steps[step]
        if step + 1 < len(steps):
            runtime.schedule(think, issue, sid, step + 1)
        state["issued"] += 1
        request = ServeRequest(
            query=spec.template_sql(template),
            tenant=tenant,
            request_id=f"s{sid:05d}.r{step}",
            budget=budget,
        )
        ticket, shed = gateway.admit(request)
        if shed is not None:
            responses.append(shed)
            settle(sid)
            return
        pending.append((ticket, sid))
        pump()

    for sid, (_, start, _) in enumerate(scripts):
        runtime.schedule(start, issue, sid, 0)

    wall_start = time.perf_counter()
    runtime.run_until_idle()
    wall_seconds = time.perf_counter() - wall_start
    return _build_report(
        mode="simulated",
        spec=spec,
        requests=state["issued"],
        responses=responses,
        peak_sessions=state["peak"],
        hit_rate=backend.hit_rate,
        wall_seconds=wall_seconds,
        virtual_seconds=runtime.now(),
        tracer=tracer,
        min_concurrent=min_concurrent,
    )


# ----------------------------------------------------------------------
# Asyncio mode (real clock, real sockets)
# ----------------------------------------------------------------------


def _build_real_server(tracer: Tracer):
    """A small but genuine BouquetServer for end-to-end load numbers."""
    from ..api import BouquetConfig, Catalog
    from ..catalog.tpch import tpch_generator_spec, tpch_schema
    from ..datagen.database import Database
    from ..serve.cache import BouquetArtifactStore
    from ..serve.server import BouquetServer

    scale = 0.002
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=7)
    statistics = database.build_statistics(sample_size=800, seed=7)
    catalog = Catalog(schema, statistics=statistics, database=database)
    store = BouquetArtifactStore(root=None, tracer=tracer)
    return BouquetServer(
        catalog, config=BouquetConfig(resolution=16), store=store, tracer=tracer
    )


async def _async_load(
    spec: LoadSpec,
    gateway: ServeGateway,
    runtime: AsyncioRuntime,
    think_scale: float,
) -> Tuple[int, List[ServeResponse], int]:
    front = BouquetFrontEnd(gateway, runtime=runtime)
    scripts = _session_scripts(spec)
    responses: List[ServeResponse] = []
    state = {"issued": 0, "active": 0, "peak": 0}

    async def session(sid: int) -> None:
        tenant, start, steps = scripts[sid]
        await asyncio.sleep(start)
        state["active"] += 1
        state["peak"] = max(state["peak"], state["active"])
        try:
            async with AsyncServeClient(front.host, front.port) as client:
                for step, (template, think, budget) in enumerate(steps):
                    state["issued"] += 1
                    response = await client.serve(
                        ServeRequest(
                            query=spec.template_sql(template),
                            tenant=tenant,
                            request_id=f"s{sid:05d}.r{step}",
                            budget=budget,
                        )
                    )
                    responses.append(response)
                    if step + 1 < len(steps):
                        await asyncio.sleep(think * think_scale)
        finally:
            state["active"] -= 1

    async with front:
        await asyncio.gather(*(session(sid) for sid in range(spec.sessions)))
    return state["issued"], responses, state["peak"]


def run_async_load(
    spec: Optional[LoadSpec] = None,
    *,
    real_server: bool = False,
    quotas: Optional[Mapping[str, TenantQuota]] = None,
    default_quota: Optional[TenantQuota] = None,
    degrade_at: float = 0.7,
    degraded_budget: Optional[float] = 50.0,
    min_concurrent: int = 0,
    tracer: Optional[Tracer] = None,
) -> ServeLoadReport:
    """Replay the workload over real sockets on a real event loop.

    ``real_server=False`` serves from the service-time model (scaled to
    milliseconds) and measures the front-end itself; ``real_server=True``
    runs a genuine BouquetServer behind the gateway for end-to-end
    numbers (much slower — compiles are real).
    """
    spec = spec if spec is not None else LoadSpec(sessions=200)
    tracer = tracer if tracer is not None else Tracer(MemorySink())
    runtime = AsyncioRuntime(max_workers=min(spec.workers, 32))
    backend_model: Optional[SimulatedBouquetBackend] = None
    server = None
    if real_server:
        server = _build_real_server(tracer)
        backend = server
    else:
        backend_model = SimulatedBouquetBackend(
            compile_seconds=0.02,
            hit_seconds=0.001,
            nat_seconds=0.002,
            fail_every=211,
            sleep=time.sleep,
        )
        backend = backend_model
    gateway = ServeGateway(
        backend,
        runtime=runtime,
        quotas=quotas,
        default_quota=default_quota,
        degrade_at=degrade_at,
        degraded_budget=degraded_budget,
        tracer=tracer,
    )
    wall_start = time.perf_counter()
    try:
        issued, responses, peak = asyncio.run(
            _async_load(spec, gateway, runtime, think_scale=0.1)
        )
    finally:
        runtime.shutdown()
        if server is not None:
            server.close()
    wall_seconds = time.perf_counter() - wall_start
    if backend_model is not None:
        hit_rate = backend_model.hit_rate
    else:
        hits = tracer.counters.get("serve.cache.hit_memory", 0) + (
            tracer.counters.get("serve.cache.hit_disk", 0)
        )
        hit_rate = hits / issued if issued else 0.0
    return _build_report(
        mode="asyncio-real" if real_server else "asyncio-model",
        spec=spec,
        requests=issued,
        responses=responses,
        peak_sessions=peak,
        hit_rate=hit_rate,
        wall_seconds=wall_seconds,
        virtual_seconds=0.0,
        tracer=tracer,
        min_concurrent=min_concurrent,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

#: Default asymmetric tenant quotas: ``alpha`` is provisioned for the
#: offered load; ``beta`` is deliberately tight so the shed path and
#: the degrade ladder both fire under the default spec.
DEFAULT_QUOTAS = {
    "alpha": TenantQuota(rate=4000.0, burst=1500.0, max_queue=1200),
    "beta": TenantQuota(rate=400.0, burst=120.0, max_queue=160),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.serve_load",
        description="Load-test the multi-tenant serving front-end.",
    )
    parser.add_argument("--sessions", type=int, default=2400)
    parser.add_argument("--requests", type=int, default=3)
    parser.add_argument("--workers", type=int, default=48)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--min-concurrent",
        type=int,
        default=2000,
        help="gate: peak concurrent simulated sessions required",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="simulated mode only (the fast CI gate)",
    )
    parser.add_argument(
        "--real-server",
        action="store_true",
        help="also run the asyncio pass against a genuine BouquetServer",
    )
    parser.add_argument("--out", default=None, help="write BENCH_serve.json here")
    options = parser.parse_args(argv)

    spec = LoadSpec(
        sessions=options.sessions,
        requests_per_session=options.requests,
        workers=options.workers,
        seed=options.seed,
    )
    reports = [
        run_simulated_load(
            spec, quotas=DEFAULT_QUOTAS, min_concurrent=options.min_concurrent
        )
    ]
    if not options.smoke:
        async_spec = LoadSpec(
            sessions=min(options.sessions, 200),
            requests_per_session=options.requests,
            workers=options.workers,
            seed=options.seed,
        )
        reports.append(run_async_load(async_spec, quotas=DEFAULT_QUOTAS))
        if options.real_server:
            real_spec = LoadSpec(
                sessions=12,
                requests_per_session=options.requests,
                templates=3,
                workers=8,
                seed=options.seed,
            )
            reports.append(run_async_load(real_spec, real_server=True))
    for report in reports:
        print(report.describe())
    if options.out:
        payload = {
            "format": "repro.bench.serve.v1",
            "passes": [report.to_dict() for report in reports],
            "ok": all(report.ok for report in reports),
        }
        with open(options.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {options.out}")
    if not all(report.ok for report in reports):
        print("serve load: FAILED gates", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
