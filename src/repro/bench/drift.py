"""Drift bench: delta refresh vs. from-scratch rebuild after stats drift.

Builds a 3D lab query's bouquet under ETL-style statistics (no database,
so the base assignment is *estimated* and statistics drift actually
moves the compile inputs), injects a localized perturbation into one
column's statistics, and refreshes the bouquet both ways:

* the **delta engine** (:func:`repro.drift.refresh.delta_refresh`)
  re-costs the incumbent frontier, probes a coarse subgrid, and re-plans
  only the drift-suspect locations;
* the **reference engine** rebuilds the exhaustive diagram from scratch.

Acceptance criteria (``make bench-drift`` gates on all three):

* **locality** — the delta engine must plan at most
  ``--max-replan-fraction`` (default 20%) of the grid;
* **savings** — the full rebuild must plan at least ``--min-savings``
  (default 5x) more locations than the delta engine;
* **exactness** — the two bouquets must be bit-identical: same plan ids
  at every location, bitwise-equal costs, structurally identical plans,
  identical contours and budgets (:func:`repro.drift.bouquets_equal`).

``make bench-drift`` writes ``BENCH_drift.json``; ``make drift-smoke``
runs the same gates on a smaller grid for CI.  The process exits
non-zero when any criterion fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..catalog.tpcds import tpcds_schema
from ..catalog.tpch import tpch_generator_spec, tpch_schema
from ..core.bouquet import identify_bouquet
from ..datagen.database import Database
from ..drift import bouquets_equal, delta_refresh, perturb_statistics, statistics_delta
from ..ess.diagram import PlanDiagram
from ..ess.space import SelectivitySpace
from ..obs.tracer import MemorySink, Tracer
from ..optimizer.cost_model import POSTGRES_COST_MODEL
from ..optimizer.optimizer import Optimizer
from ..query.workload import full_workload

__all__ = ["DriftBenchReport", "run_drift_bench", "main"]


@dataclass
class DriftBenchReport:
    """One delta-vs-reference refresh comparison on a single query grid."""

    query: str
    grid: int
    dimensionality: int
    perturbation: str
    moved_pids: List[str]
    strategy: str
    delta_seconds: float
    reference_seconds: float
    delta_planned: int
    reference_planned: int
    suspect_locations: int
    changed_plan_locations: int
    mismatches: List[str]
    max_replan_fraction: float
    min_savings: float
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def replan_fraction(self) -> float:
        return self.delta_planned / max(1, self.grid)

    @property
    def savings(self) -> float:
        if self.delta_planned <= 0:
            return float("inf")
        return self.reference_planned / self.delta_planned

    @property
    def local_enough(self) -> bool:
        return self.replan_fraction <= self.max_replan_fraction

    @property
    def cheap_enough(self) -> bool:
        return self.savings >= self.min_savings

    @property
    def exact(self) -> bool:
        return not self.mismatches

    @property
    def ok(self) -> bool:
        return self.local_enough and self.cheap_enough and self.exact

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "grid": self.grid,
            "dimensionality": self.dimensionality,
            "perturbation": self.perturbation,
            "moved_pids": self.moved_pids,
            "strategy": self.strategy,
            "delta_seconds": self.delta_seconds,
            "reference_seconds": self.reference_seconds,
            "delta_planned": self.delta_planned,
            "reference_planned": self.reference_planned,
            "replan_fraction": self.replan_fraction,
            "max_replan_fraction": self.max_replan_fraction,
            "savings": self.savings,
            "min_savings": self.min_savings,
            "suspect_locations": self.suspect_locations,
            "changed_plan_locations": self.changed_plan_locations,
            "mismatches": self.mismatches,
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"drift bench: {self.query} "
            f"({self.grid} locations, {self.dimensionality}D), "
            f"perturbed {self.perturbation}",
            f"  moved predicates  : {', '.join(self.moved_pids) or 'none'}",
            f"  delta refresh     : {self.delta_seconds:8.3f} s, planned "
            f"{self.delta_planned}/{self.grid} "
            f"({self.replan_fraction:.1%}, need <= {self.max_replan_fraction:.0%})"
            + ("" if self.local_enough else "  FAIL"),
            f"  full rebuild      : {self.reference_seconds:8.3f} s, planned "
            f"{self.reference_planned}/{self.grid}",
            f"  savings           : {self.savings:.1f}x fewer locations planned "
            f"(need >= {self.min_savings:g}x)"
            + ("" if self.cheap_enough else "  FAIL"),
            f"  frontier diff     : {self.suspect_locations} suspect, "
            f"{self.changed_plan_locations} plan changes",
            f"  equivalence       : {len(self.mismatches)} mismatches (need 0)"
            + ("" if self.exact else "  FAIL"),
        ]
        for mismatch in self.mismatches[:5]:
            lines.append(f"    - {mismatch}")
        lines.append(f"  verdict           : {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def run_drift_bench(
    query: str = "3D_H_Q5",
    resolution: int = 12,
    scale: float = 0.002,
    stats_sample: int = 1000,
    seed: int = 7,
    ratio: float = 2.0,
    lambda_: float = 0.2,
    perturb_table: str = "supplier",
    perturb_column: Optional[str] = "s_suppkey",
    perturb_scale: float = 1.0,
    perturb_distinct_scale: Optional[float] = 1.4,
    max_replan_fraction: float = 0.2,
    min_savings: float = 5.0,
) -> DriftBenchReport:
    """Compile the lab query, drift one column's statistics, refresh twice."""
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=seed)
    statistics = database.build_statistics(sample_size=stats_sample, seed=seed)
    workload = full_workload(schema, tpcds_schema(scale))[query]
    dims = workload.dimensions()
    tracer = Tracer(MemorySink())

    # ETL deployment: statistics only, no database — the base assignment
    # is the optimizer's *estimate*, so statistics drift moves it.
    opt_old = Optimizer(schema, statistics, POSTGRES_COST_MODEL)
    base_old = opt_old.estimated_assignment(workload.query)
    space_old = SelectivitySpace(workload.query, dims, resolution, base_old)
    diagram_old = PlanDiagram.exhaustive(opt_old, space_old, engine="batch")
    old_bouquet = identify_bouquet(diagram_old, lambda_=lambda_, ratio=ratio)

    drifted = perturb_statistics(
        statistics,
        perturb_table,
        perturb_column,
        scale=perturb_scale,
        distinct_scale=perturb_distinct_scale,
    )
    delta = statistics_delta(statistics, drifted)
    moved = delta.moved_pids(workload.query)

    opt_delta = Optimizer(schema, drifted, POSTGRES_COST_MODEL, tracer=tracer)
    base_new = opt_delta.estimated_assignment(workload.query)
    space_new = SelectivitySpace(workload.query, dims, resolution, base_new)
    t0 = time.perf_counter()
    result = delta_refresh(
        old_bouquet, opt_delta, space_new, lambda_=lambda_, ratio=ratio
    )
    t1 = time.perf_counter()

    # Reference: from-scratch exhaustive rebuild over the drifted stats.
    opt_ref = Optimizer(schema, drifted, POSTGRES_COST_MODEL)
    space_ref = SelectivitySpace(workload.query, dims, resolution, base_new)
    t2 = time.perf_counter()
    diagram_ref = PlanDiagram.exhaustive(opt_ref, space_ref, engine="batch")
    reference = identify_bouquet(diagram_ref, lambda_=lambda_, ratio=ratio)
    t3 = time.perf_counter()

    mismatches = bouquets_equal(result.bouquet, reference)
    column = f".{perturb_column}" if perturb_column else ""
    knobs = f"values x{perturb_scale:g}"
    if perturb_distinct_scale is not None:
        knobs += f", ndv x{perturb_distinct_scale:g}"
    return DriftBenchReport(
        query=query,
        grid=space_new.size,
        dimensionality=space_new.dimensionality,
        perturbation=f"{perturb_table}{column} ({knobs})",
        moved_pids=moved,
        strategy=result.strategy,
        delta_seconds=t1 - t0,
        reference_seconds=t3 - t2,
        delta_planned=result.planned_locations,
        reference_planned=space_ref.size,
        suspect_locations=result.suspect_locations,
        changed_plan_locations=result.changed_plan_locations,
        mismatches=mismatches,
        max_replan_fraction=max_replan_fraction,
        min_savings=min_savings,
        counters=dict(tracer.counters),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.drift",
        description="benchmark the delta refresh engine against a "
        "from-scratch bouquet rebuild under localized statistics drift",
    )
    parser.add_argument("--query", default="3D_H_Q5")
    parser.add_argument("--resolution", type=int, default=12)
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--stats-sample", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ratio", type=float, default=2.0)
    parser.add_argument("--lambda", dest="lambda_", type=float, default=0.2)
    parser.add_argument("--perturb-table", default="supplier")
    parser.add_argument("--perturb-column", default="s_suppkey")
    parser.add_argument("--perturb-scale", type=float, default=1.0)
    parser.add_argument(
        "--perturb-distinct-scale", type=float, default=1.4,
        help="scale the perturbed column's distinct counts (0 disables)",
    )
    parser.add_argument("--max-replan-fraction", type=float, default=0.2)
    parser.add_argument("--min-savings", type=float, default=5.0)
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report as JSON (e.g. BENCH_drift.json)",
    )
    args = parser.parse_args(argv)
    report = run_drift_bench(
        query=args.query,
        resolution=args.resolution,
        scale=args.scale,
        stats_sample=args.stats_sample,
        seed=args.seed,
        ratio=args.ratio,
        lambda_=args.lambda_,
        perturb_table=args.perturb_table,
        perturb_column=args.perturb_column or None,
        perturb_scale=args.perturb_scale,
        perturb_distinct_scale=args.perturb_distinct_scale or None,
        max_replan_fraction=args.max_replan_fraction,
        min_savings=args.min_savings,
    )
    print(report.describe())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
