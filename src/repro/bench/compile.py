"""Compile-kernel bench: slab-batched DP enumeration vs the scalar loop.

Builds a 3D lab query's ESS and generates its exhaustive plan diagram
twice — once with the one-optimization-per-location reference engine and
once with the batch kernel (:mod:`repro.batchopt`), which runs the
DPsize enumeration once per slab of locations with a numpy cost axis —
and checks two acceptance criteria:

* **speed** — the batch compile must beat the reference compile by at
  least ``--min-speedup`` (default 4x) on the full grid;
* **exactness** — the two diagrams must agree at *every* location, both
  the chosen plan (compared structurally, by canonical signature) and
  its cost (bitwise: the engines execute the same IEEE-754 operations).

The contour-focused band exploration (§4.2) is raced the same way: both
engines must produce byte-identical ``ContourBandResult.optimized``
maps, and the batch band time is reported alongside.

``make bench-compile`` runs this and writes ``BENCH_compile.json``; the
process exits non-zero when any criterion fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..catalog.tpcds import tpcds_schema
from ..catalog.tpch import tpch_generator_spec, tpch_schema
from ..core.contours import contour_costs
from ..datagen.database import Database
from ..ess.diagram import PlanDiagram
from ..ess.posp import contour_focused_posp
from ..ess.space import SelectivitySpace
from ..obs.tracer import MemorySink, Tracer
from ..optimizer.cost_model import POSTGRES_COST_MODEL
from ..optimizer.optimizer import Optimizer
from ..optimizer.selectivity import actual_selectivities
from ..query.workload import full_workload

__all__ = ["CompileBenchReport", "run_compile_bench", "main"]


@dataclass
class CompileBenchReport:
    """One batch-vs-reference compile comparison on a single query grid."""

    query: str
    grid: int
    dimensionality: int
    reference_seconds: float
    batch_seconds: float
    plan_mismatches: int
    cost_mismatches: int
    band_reference_seconds: float
    band_batch_seconds: float
    band_locations: int
    band_mismatches: int
    min_speedup: float
    min_band_speedup: float = 0.0
    slabs: int = 0
    batched_locations: int = 0
    frontier_plans: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.batch_seconds <= 0:
            return float("inf")
        return self.reference_seconds / self.batch_seconds

    @property
    def band_speedup(self) -> float:
        if self.band_batch_seconds <= 0:
            return float("inf")
        return self.band_reference_seconds / self.band_batch_seconds

    @property
    def fast_enough(self) -> bool:
        return self.speedup >= self.min_speedup

    @property
    def band_fast_enough(self) -> bool:
        return self.band_speedup >= self.min_band_speedup

    @property
    def exact(self) -> bool:
        return (
            self.plan_mismatches == 0
            and self.cost_mismatches == 0
            and self.band_mismatches == 0
        )

    @property
    def ok(self) -> bool:
        return self.fast_enough and self.band_fast_enough and self.exact

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "grid": self.grid,
            "dimensionality": self.dimensionality,
            "reference_seconds": self.reference_seconds,
            "batch_seconds": self.batch_seconds,
            "speedup": self.speedup,
            "min_speedup": self.min_speedup,
            "plan_mismatches": self.plan_mismatches,
            "cost_mismatches": self.cost_mismatches,
            "band_reference_seconds": self.band_reference_seconds,
            "band_batch_seconds": self.band_batch_seconds,
            "band_speedup": self.band_speedup,
            "min_band_speedup": self.min_band_speedup,
            "band_locations": self.band_locations,
            "band_mismatches": self.band_mismatches,
            "slabs": self.slabs,
            "batched_locations": self.batched_locations,
            "frontier_plans": self.frontier_plans,
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"compile bench: {self.query} "
            f"({self.grid} locations, {self.dimensionality}D)",
            f"  reference compile : {self.reference_seconds:8.3f} s",
            f"  batch compile     : {self.batch_seconds:8.3f} s "
            f"({self.speedup:.1f}x, need >= {self.min_speedup:g}x)"
            + ("" if self.fast_enough else "  FAIL"),
            f"  diagram equality  : {self.plan_mismatches} plan / "
            f"{self.cost_mismatches} cost mismatches (need 0)"
            + ("" if self.plan_mismatches == self.cost_mismatches == 0 else "  FAIL"),
            f"  contour band      : {self.band_reference_seconds:.3f} s ref, "
            f"{self.band_batch_seconds:.3f} s batch ({self.band_speedup:.1f}x, "
            f"need >= {self.min_band_speedup:g}x) "
            f"over {self.band_locations} band locations, "
            f"{self.band_mismatches} mismatches"
            + ("" if self.band_mismatches == 0 and self.band_fast_enough else "  FAIL"),
        ]
        if self.slabs:
            lines.append(
                f"  batch telemetry   : {self.slabs} slabs, "
                f"{self.batched_locations} batched locations, "
                f"{self.frontier_plans:g} frontier plans"
            )
        lines.append(f"  verdict           : {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _signature_map(diagram: PlanDiagram) -> Dict[int, object]:
    """plan_id -> canonical structural signature, for one registry."""
    return {
        plan_id: diagram.registry.plan(plan_id).canonical_signature()
        for plan_id in np.unique(diagram.plan_ids)
    }


def _diagram_mismatches(
    reference: PlanDiagram, batch: PlanDiagram
) -> Tuple[int, int]:
    """(plan, cost) disagreement counts between the two diagrams.

    Plans are compared structurally: the two compiles own independent
    registries, so ids are only comparable through canonical signatures.
    Costs are compared bitwise — both engines execute the same float64
    formula stream, so any difference at all is a divergence.
    """
    ref_sigs = _signature_map(reference)
    batch_sigs = _signature_map(batch)
    plan_bad = 0
    for ref_id, batch_id in zip(reference.plan_ids.ravel(), batch.plan_ids.ravel()):
        if ref_sigs[int(ref_id)] != batch_sigs[int(batch_id)]:
            plan_bad += 1
    cost_bad = int(np.count_nonzero(reference.costs != batch.costs))
    return plan_bad, cost_bad


def run_compile_bench(
    query: str = "3D_H_Q5",
    resolution: int = 12,
    scale: float = 0.002,
    stats_sample: int = 1000,
    seed: int = 7,
    ratio: float = 2.0,
    min_speedup: float = 4.0,
    min_band_speedup: float = 4.0,
) -> CompileBenchReport:
    """Build the lab query's ESS and race the two compile engines."""
    schema = tpch_schema(scale)
    database = Database.generate(schema, tpch_generator_spec(scale), seed=seed)
    statistics = database.build_statistics(sample_size=stats_sample, seed=seed)
    workload = full_workload(schema, tpcds_schema(scale))[query]
    dims = workload.dimensions()
    base = actual_selectivities(workload.query, database)
    space = SelectivitySpace(workload.query, dims, resolution, base)

    tracer = Tracer(MemorySink())

    def fresh_optimizer(traced: bool = False) -> Optimizer:
        return Optimizer(
            schema,
            statistics,
            POSTGRES_COST_MODEL,
            tracer=tracer if traced else None,
        )

    opt_ref = fresh_optimizer()
    t0 = time.perf_counter()
    diagram_ref = PlanDiagram.exhaustive(opt_ref, space, engine="reference")
    t1 = time.perf_counter()

    opt_batch = fresh_optimizer(traced=True)
    t2 = time.perf_counter()
    diagram_batch = PlanDiagram.exhaustive(opt_batch, space, engine="batch")
    t3 = time.perf_counter()

    plan_bad, cost_bad = _diagram_mismatches(diagram_ref, diagram_batch)

    # Contour-band race: the §4.2 exploration with the IC cost ladder the
    # reference diagram implies.  Byte-identical ``optimized`` maps are
    # required — same locations, same costs, structurally same plans.
    costs = contour_costs(diagram_ref.cmin, diagram_ref.cmax, ratio=ratio)
    band_opt_ref = fresh_optimizer()
    t4 = time.perf_counter()
    band_ref = contour_focused_posp(band_opt_ref, space, costs, engine="reference")
    t5 = time.perf_counter()
    band_opt_batch = fresh_optimizer()
    t6 = time.perf_counter()
    band_batch = contour_focused_posp(band_opt_batch, space, costs, engine="batch")
    t7 = time.perf_counter()

    band_bad = len(set(band_ref.optimized) ^ set(band_batch.optimized))
    ref_registry = band_opt_ref.registry(space.query)
    batch_registry = band_opt_batch.registry(space.query)
    for location in set(band_ref.optimized) & set(band_batch.optimized):
        pid_ref, cost_ref = band_ref.optimized[location]
        pid_batch, cost_batch = band_batch.optimized[location]
        if cost_ref != cost_batch or (
            ref_registry.plan(pid_ref).canonical_signature()
            != batch_registry.plan(pid_batch).canonical_signature()
        ):
            band_bad += 1

    counters = dict(tracer.counters)
    return CompileBenchReport(
        query=query,
        grid=space.size,
        dimensionality=space.dimensionality,
        reference_seconds=t1 - t0,
        batch_seconds=t3 - t2,
        plan_mismatches=plan_bad,
        cost_mismatches=cost_bad,
        band_reference_seconds=t5 - t4,
        band_batch_seconds=t7 - t6,
        band_locations=len(band_ref.optimized),
        band_mismatches=band_bad,
        min_speedup=min_speedup,
        min_band_speedup=min_band_speedup,
        slabs=int(counters.get("batchopt.slabs", 0)),
        batched_locations=int(counters.get("optimizer.batched_locations", 0)),
        frontier_plans=counters.get("batchopt.frontier_plans", 0.0),
        counters=counters,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compile",
        description="benchmark the slab-batched compile kernel against the "
        "scalar per-location optimizer",
    )
    parser.add_argument("--query", default="3D_H_Q5")
    parser.add_argument("--resolution", type=int, default=12)
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--stats-sample", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ratio", type=float, default=2.0)
    parser.add_argument("--min-speedup", type=float, default=4.0)
    parser.add_argument(
        "--min-band-speedup", type=float, default=None,
        help="contour-band floor (defaults to --min-speedup)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report as JSON (e.g. BENCH_compile.json)",
    )
    args = parser.parse_args(argv)
    report = run_compile_bench(
        query=args.query,
        resolution=args.resolution,
        scale=args.scale,
        stats_sample=args.stats_sample,
        seed=args.seed,
        ratio=args.ratio,
        min_speedup=args.min_speedup,
        min_band_speedup=(
            args.min_band_speedup
            if args.min_band_speedup is not None
            else args.min_speedup
        ),
    )
    print(report.describe())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
