"""Parallel-substrate bench: persistent pool vs the per-call pools it replaced.

Runs a windowed MSO fuzzing campaign — the serving pattern where queries
arrive a few at a time, so the pre-substrate code paid a fresh
``ctx.Pool`` (fork + interpreter warm-up) *and* a full campaign
environment rebuild in every worker for every window — twice:

* **baseline** — a faithful reimplementation of the replaced code: one
  ephemeral ``multiprocessing.Pool`` per window with an initializer that
  rebuilds the campaign environment in every worker;
* **persistent** — the same windows through the shared
  :func:`repro.par.get_pool` pool, where workers survive across windows
  and the environment is built once per worker per config digest
  (:meth:`~repro.par.WorkerContext.memo`) and then only reused.

Acceptance criteria (``make bench-par`` writes ``BENCH_par.json`` and
exits non-zero on any failure):

* **speed** — the persistent substrate must beat the baseline end-to-end
  by at least ``--min-speedup`` (default 2x);
* **bit-identity** — the index-sorted outcome roster must be *equal* to
  the baseline's, and equal across persistent runs at every worker
  count in ``--equiv-workers`` (default 1, 2, 8) — work-stealing must
  never leak into results;
* **shared memory** — a sweep-residue phase ships a bouquet whose grid
  planes live in shm (:func:`repro.par.export_array`); its sharded
  totals must equal the serial reference, and after
  :func:`repro.par.shutdown_pools` the ``/dev/shm`` scan
  (:func:`repro.par.leaked_segments`) must come back empty.

The report also folds in the campaign's MSO distribution (the fuzzing
campaign doubles as bound validation) and the ``par.*`` telemetry the
pool emitted (payload ships vs. cache hits, task latency, shm exports).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.simulation import sample_locations
from ..obs.tracer import NULL_TRACER, MemorySink, Tracer
from ..par import get_pool, leaked_segments, shutdown_pools
from ..sweep.shard import run_residue
from ..wlgen.campaign import (
    CampaignConfig,
    QueryOutcome,
    _run_chunk,
    build_env,
    run_query,
)
from .harness import Lab

__all__ = ["ParBenchReport", "run_par_bench", "main"]


# ---------------------------------------------------------------------------
# Baseline: the per-call pool this PR replaced
# ---------------------------------------------------------------------------

_BASELINE_STATE: Dict[str, object] = {}


def _baseline_init(config: CampaignConfig) -> None:
    """Initializer of the replaced per-call pools.

    Every worker of every window rebuilds the campaign environment from
    scratch — exactly the cost structure the payload-cache memo removes.
    """
    _BASELINE_STATE["config"] = config
    _BASELINE_STATE["env"] = build_env(config, tracer=NULL_TRACER)


def _baseline_chunk(indices: List[int]) -> List[QueryOutcome]:
    env = _BASELINE_STATE["env"]
    config = _BASELINE_STATE["config"]
    return [run_query(env, config, index) for index in indices]


def _windows(count: int, window: int) -> List[List[int]]:
    return [
        list(range(lo, min(lo + window, count)))
        for lo in range(0, count, window)
    ]


def _baseline_campaign(
    config: CampaignConfig, windows: Sequence[List[int]]
) -> List[QueryOutcome]:
    """One ephemeral pool per window, env rebuilt in every worker."""
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    outcomes: List[QueryOutcome] = []
    for window in windows:
        with ctx.Pool(
            processes=config.workers,
            initializer=_baseline_init,
            initargs=(config,),
        ) as pool:
            for chunk in pool.imap(_baseline_chunk, [[i] for i in window]):
                outcomes.extend(chunk)
    return outcomes


def _persistent_campaign(
    config: CampaignConfig,
    windows: Sequence[List[int]],
    workers: int,
    tracer: Tracer,
) -> List[QueryOutcome]:
    """The same windows through the shared persistent pool."""
    outcomes: List[QueryOutcome] = []
    for window in windows:
        pool = get_pool(workers, tracer=tracer)
        for chunk in pool.run(
            _run_chunk, config, [[i] for i in window], tracer=tracer
        ):
            outcomes.extend(chunk)
    return outcomes


def _roster(outcomes: Sequence[QueryOutcome]) -> List[Dict[str, object]]:
    """Index-sorted outcome dicts — the bit-identity comparison unit."""
    return [o.to_dict() for o in sorted(outcomes, key=lambda o: o.index)]


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class ParBenchReport:
    """Persistent-substrate-vs-ephemeral-pools verdict for one campaign."""

    benchmark: str
    queries: int
    workers: int
    window: int
    baseline_seconds: float
    persistent_seconds: float
    min_speedup: float
    identical_to_baseline: bool
    equivalence_workers: List[int]
    equivalence_identical: bool
    violations: int
    crashes: int
    mso_distribution: Dict[str, Optional[float]]
    residue_locations: int
    residue_identical: bool
    shm_planes_exported: int
    leaked: List[str]
    pool_stats: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    task_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.persistent_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.persistent_seconds

    @property
    def fast_enough(self) -> bool:
        return self.speedup >= self.min_speedup

    @property
    def bit_identical(self) -> bool:
        return self.identical_to_baseline and self.equivalence_identical

    @property
    def shm_clean(self) -> bool:
        return self.residue_identical and not self.leaked

    @property
    def ok(self) -> bool:
        return self.fast_enough and self.bit_identical and self.shm_clean

    def to_dict(self) -> Dict[str, object]:
        return {
            "bench": "par",
            "benchmark": self.benchmark,
            "queries": self.queries,
            "workers": self.workers,
            "window": self.window,
            "baseline_seconds": self.baseline_seconds,
            "persistent_seconds": self.persistent_seconds,
            "speedup": self.speedup,
            "min_speedup": self.min_speedup,
            "identical_to_baseline": self.identical_to_baseline,
            "equivalence_workers": list(self.equivalence_workers),
            "equivalence_identical": self.equivalence_identical,
            "violations": self.violations,
            "crashes": self.crashes,
            "mso_distribution": dict(self.mso_distribution),
            "residue_locations": self.residue_locations,
            "residue_identical": self.residue_identical,
            "shm_planes_exported": self.shm_planes_exported,
            "leaked_segments": list(self.leaked),
            "pool_stats": dict(self.pool_stats),
            "counters": dict(self.counters),
            "task_seconds": dict(self.task_seconds),
            "ok": self.ok,
        }

    def describe(self) -> str:
        mso = self.mso_distribution
        dist = ", ".join(
            f"{key}={mso[key]:.3f}"
            for key in ("p50", "p90", "p95", "p99", "max")
            if mso.get(key) is not None
        )
        lines = [
            f"par bench: {self.benchmark} campaign, {self.queries} queries "
            f"in windows of {self.window}, {self.workers} workers",
            f"  per-call pools    : {self.baseline_seconds:8.3f} s "
            "(fresh pool + env rebuild per window)",
            f"  persistent pool   : {self.persistent_seconds:8.3f} s "
            f"({self.speedup:.1f}x, need >= {self.min_speedup:g}x)"
            + ("" if self.fast_enough else "  FAIL"),
            f"  vs baseline       : "
            f"{'bit-identical' if self.identical_to_baseline else 'DIVERGED'}"
            + ("" if self.identical_to_baseline else "  FAIL"),
            f"  across workers    : "
            + "/".join(str(w) for w in self.equivalence_workers)
            + (
                " bit-identical"
                if self.equivalence_identical
                else " DIVERGED  FAIL"
            ),
            f"  campaign verdict  : {self.violations} violations, "
            f"{self.crashes} crashes; MSO {dist}",
            f"  residue via shm   : {self.residue_locations} locations, "
            f"{self.shm_planes_exported} planes exported, totals "
            + (
                "identical"
                if self.residue_identical
                else "DIVERGED  FAIL"
            ),
            f"  shm after shutdown: "
            + (
                "clean"
                if not self.leaked
                else f"LEAKED {self.leaked}  FAIL"
            ),
        ]
        stats = self.pool_stats
        if stats:
            lines.append(
                f"  pool telemetry    : {stats.get('runs', 0)} runs "
                f"(reuse rate {stats.get('reuse_rate', 0.0):.3f}), "
                f"{stats.get('tasks', 0)} tasks, "
                f"{stats.get('payload_ships', 0)} payload ships / "
                f"{stats.get('payload_hits', 0)} cache hits, "
                f"{stats.get('ship_bytes', 0)} bytes shipped"
            )
        lines.append(f"  verdict           : {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _mso_distribution(
    outcomes: Sequence[QueryOutcome],
) -> Dict[str, Optional[float]]:
    msos = [o.mso for o in outcomes if o.mso is not None]
    if not msos:
        return {q: None for q in ("p50", "p90", "p95", "p99", "max", "mean")}
    arr = np.asarray(msos, dtype=float)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


# ---------------------------------------------------------------------------
# Bench driver
# ---------------------------------------------------------------------------


def run_par_bench(
    benchmark: str = "tpcds",
    count: int = 1000,
    workers: int = 8,
    window: int = 2,
    equiv_workers: Sequence[int] = (1, 2, 8),
    min_speedup: float = 2.0,
    max_dims: int = 2,
    seed: int = 42,
    residue_sample: int = 24,
) -> ParBenchReport:
    """Race the persistent substrate against per-call pools, end to end."""
    tracer = Tracer(MemorySink())
    config = CampaignConfig(
        benchmark=benchmark,
        count=count,
        seed=seed,
        max_dims=max_dims,
        workers=workers,
    )
    windows = _windows(count, window)

    t0 = time.perf_counter()
    baseline = _baseline_campaign(config, windows)
    t1 = time.perf_counter()
    persistent = _persistent_campaign(config, windows, workers, tracer)
    t2 = time.perf_counter()

    baseline_roster = _roster(baseline)
    persistent_roster = _roster(persistent)
    identical_to_baseline = persistent_roster == baseline_roster

    # Bit-identity across worker counts: the same windowed campaign on
    # pools of every requested size must yield an equal roster — the
    # substrate's index-sorted reassembly erases work-stealing order.
    equivalence_identical = True
    for other in equiv_workers:
        if other == workers:
            continue
        roster = _roster(
            _persistent_campaign(config, windows, other, tracer)
        )
        if roster != persistent_roster:
            equivalence_identical = False

    # Shared-memory phase: ship a bouquet whose grid planes live in shm
    # through the residue sharder and compare against the serial runner.
    residue_workers = min(2, workers) if workers > 1 else 2
    lab = Lab(
        tpch_scale=0.0015,
        tpcds_scale=0.0015,
        stats_sample=600,
        seed=7,
        resolutions={1: 8, 2: 6, 3: 5, 4: 4, 5: 3},
        tracer=NULL_TRACER,
    )
    ql = lab.build("3D_H_Q5")
    locations = sample_locations(ql.space, residue_sample, seed=0)
    serial = run_residue(ql.bouquet, locations, workers=None)
    sharded = run_residue(
        ql.bouquet, locations, workers=residue_workers, tracer=tracer
    )
    residue_identical = serial == sharded

    # Teardown gate: every pool closed, every shm segment unlinked.
    pool = get_pool(workers, tracer=tracer)
    stats = {
        "runs": pool.stats.runs,
        "tasks": pool.stats.tasks,
        "payload_ships": pool.stats.payload_ships,
        "payload_hits": pool.stats.payload_hits,
        "ship_bytes": pool.stats.ship_bytes,
        "reuse_rate": pool.stats.reuse_rate,
    }
    shutdown_pools()
    leaked = leaked_segments()

    counters = {
        key: float(value)
        for key, value in sorted(tracer.counters.items())
        if key.startswith("par.")
    }
    timing = tracer.timings.get("par.task_seconds")
    task_seconds = timing.as_dict() if timing is not None else {}

    return ParBenchReport(
        benchmark=benchmark,
        queries=count,
        workers=workers,
        window=window,
        baseline_seconds=t1 - t0,
        persistent_seconds=t2 - t1,
        min_speedup=min_speedup,
        identical_to_baseline=identical_to_baseline,
        equivalence_workers=list(equiv_workers),
        equivalence_identical=equivalence_identical,
        violations=sum(1 for o in persistent if o.status == "violation"),
        crashes=sum(1 for o in persistent if o.status == "crash"),
        mso_distribution=_mso_distribution(persistent),
        residue_locations=len(locations),
        residue_identical=residue_identical,
        shm_planes_exported=int(counters.get("par.shm.exports", 0)),
        leaked=leaked,
        pool_stats=stats,
        counters=counters,
        task_seconds=task_seconds,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.par",
        description="benchmark the persistent shared-memory worker "
        "substrate against the per-call pools it replaced",
    )
    parser.add_argument("--benchmark", default="tpcds",
                        choices=("tpch", "tpcds"))
    parser.add_argument("--count", type=int, default=1000)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--window", type=int, default=2)
    parser.add_argument(
        "--equiv-workers", default="1,2,8",
        help="comma-separated worker counts for the bit-identity check",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--max-dims", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--residue-sample", type=int, default=24)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (no speedup floor)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report as JSON (e.g. BENCH_par.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.count = min(args.count, 24)
        args.workers = 2
        args.window = 4
        args.equiv_workers = "1,2"
        args.min_speedup = 0.0
        args.residue_sample = 8
    equiv = [int(part) for part in args.equiv_workers.split(",") if part]
    report = run_par_bench(
        benchmark=args.benchmark,
        count=args.count,
        workers=args.workers,
        window=args.window,
        equiv_workers=equiv,
        min_speedup=args.min_speedup,
        max_dims=args.max_dims,
        seed=args.seed,
        residue_sample=args.residue_sample,
    )
    print(report.describe())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
