"""Benchmark harness: shared lab environment and reporting helpers."""

from .harness import DEFAULT_RESOLUTIONS, Lab, QueryLab, shared_lab
from .reporting import format_series, format_table, log_bar

__all__ = [
    "DEFAULT_RESOLUTIONS",
    "Lab",
    "QueryLab",
    "shared_lab",
    "format_series",
    "format_table",
    "log_bar",
]
