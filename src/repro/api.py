"""repro.api — the stable public facade over the bouquet pipeline.

Three nouns and three verbs cover the whole system:

* :class:`Catalog` — the compile-time world view (schema, statistics,
  optionally the data itself);
* :class:`BouquetConfig` — a frozen bundle of every knob the pipeline
  accepts (r, λ, resolution, runtime mode, cost-model δ), replacing the
  keyword sprawl of the legacy constructor chain;
* :class:`CompiledBouquet` — the compile artifact, serializable and
  cacheable (see :mod:`repro.serve`);
* :func:`compile_bouquet` / :func:`execute` / :func:`simulate`.

Typical usage::

    from repro.api import BouquetConfig, Catalog, compile_bouquet, execute

    catalog = Catalog(schema, statistics=stats, database=db)
    compiled = compile_bouquet(sql, catalog, config=BouquetConfig(resolution=24))
    result = execute(compiled, db)

``execute``/``simulate`` also accept the serving layer's
:class:`~repro.serve.envelope.ServeRequest` envelope via ``request=``,
so the in-process API, the asyncio HTTP front-end, and the CLI all
speak one calling convention.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from .catalog.schema import Schema
from .catalog.statistics import DatabaseStatistics
from .core.artifact import bouquet_from_dict, bouquet_to_dict
from .core.bouquet import PlanBouquet, identify_bouquet
from .core.runtime import (
    AbstractExecutionService,
    BouquetRunner,
    BouquetRunResult,
    ExecutionOutcome,
    ExecutionService,
)
from .datagen.database import Database
from .ess.diagram import PlanDiagram, coarse_subgrid
from .ess.dimensioning import Uncertainty, select_error_dimensions
from .ess.posp import COMPILE_ENGINES
from .ess.space import ErrorDimension, SelectivitySpace
from .exceptions import BouquetError, BudgetExceeded
from .obs.tracer import NULL_TRACER, Tracer
from .optimizer.cost_model import COMMERCIAL_COST_MODEL, POSTGRES_COST_MODEL, CostModel
from .optimizer.optimizer import Optimizer
from .optimizer.selectivity import actual_selectivities
from .query.predicates import JoinPredicate
from .query.query import Query
from .query.sql import parse_query
from .query.workload import SELECTION_DIM_RANGE, join_dim_maximum
from .sched.strategy import CROSSING_NAMES, call_full, call_spilled

__all__ = [
    "BouquetConfig",
    "Catalog",
    "CompiledBouquet",
    "DEFAULT_CONFIG",
    "compile_bouquet",
    "default_error_dimensions",
    "execute",
    "fuzz",
    "generate_workload",
    "simulate",
]

#: Format tag of the self-describing artifact envelope (config + SQL +
#: the v1 bouquet payload from :mod:`repro.core.artifact`).
ARTIFACT_FORMAT = "repro.bouquet.artifact.v2"

#: Default grid points per dimension, by ESS dimensionality.
DEFAULT_RESOLUTIONS = {1: 64, 2: 24, 3: 10, 4: 6, 5: 5}

#: Grids larger than this use the candidate (Picasso-style) diagram.
EXHAUSTIVE_LIMIT = 4096

_COST_MODELS: Dict[str, CostModel] = {
    "postgres": POSTGRES_COST_MODEL,
    "commercial": COMMERCIAL_COST_MODEL,
}

_MODES = ("basic", "optimized")


@dataclass(frozen=True)
class BouquetConfig:
    """Every pipeline knob, frozen and hashable.

    ``ratio`` (the paper's *r*), ``lambda_`` (anorexic λ), and
    ``resolution`` are the compile knobs — they determine the compiled
    artifact and participate in cache keys (see
    :func:`repro.serve.fingerprint.artifact_key`).  The rest are runtime
    knobs: ``mode`` toggles the spill/AxisPlans optimized driver vs. the
    basic Figure 7 driver, ``crossing`` picks the contour-crossing
    scheduler (:mod:`repro.sched` — ``sequential``, ``concurrent``, or
    ``timesliced``), ``equivalence_threshold`` sizes the
    cost-equivalence groups, and ``model_error_delta`` is the §3.4
    bounded cost-model-error δ (budgets inflate by 1+δ).

    ``compile_engine`` selects how POSP generation costs the ESS grid:
    ``"batch"`` (default) runs the DPsize enumeration once per slab of
    locations with array-valued costs, ``"reference"`` optimizes one
    location at a time.  Both produce byte-identical artifacts, so the
    engine is deliberately **not** a compile knob — it never enters the
    artifact cache key.

    ``patch`` governs statistics-refresh maintenance: when enabled
    (default) a refresh first offers every cached artifact to the
    delta-refresh engine (:mod:`repro.drift`) before falling back to
    invalidation.  Like the engine and crossing knobs it is a runtime
    knob — never part of the artifact cache key.

    ``template`` governs the cross-query template cache
    (:mod:`repro.template`): when enabled (default) the serving layer
    and :func:`compile_bouquet` (given a ``templates=`` store) answer a
    miss on the exact-key artifact store by rebinding a compiled bouquet
    from another instance of the same query template.  Rebinds are
    validated structurally and fall back to a full compile on any
    mismatch, so the knob only trades compile latency — it never changes
    the artifact.  Like ``patch`` it is a runtime knob, never part of
    the artifact cache key.
    """

    ratio: float = 2.0
    lambda_: float = 0.2
    resolution: Optional[int] = None
    mode: str = "optimized"
    crossing: str = "sequential"
    equivalence_threshold: float = 0.2
    model_error_delta: float = 0.0
    cost_model: str = "postgres"
    compile_engine: str = "batch"
    patch: bool = True
    template: bool = True

    def __post_init__(self):
        if self.ratio <= 1.0:
            raise BouquetError("config: ratio (r) must exceed 1")
        if self.lambda_ < 0.0:
            raise BouquetError("config: lambda must be non-negative")
        if self.resolution is not None and self.resolution < 2:
            raise BouquetError("config: resolution must be at least 2")
        if self.mode not in _MODES:
            raise BouquetError(f"config: unknown runtime mode {self.mode!r}")
        if self.crossing not in CROSSING_NAMES:
            raise BouquetError(
                f"config: unknown crossing strategy {self.crossing!r} "
                f"(expected one of {list(CROSSING_NAMES)})"
            )
        if self.model_error_delta < 0.0:
            raise BouquetError("config: model_error_delta must be non-negative")
        if self.cost_model not in _COST_MODELS:
            raise BouquetError(
                f"config: unknown cost model {self.cost_model!r} "
                f"(expected one of {sorted(_COST_MODELS)})"
            )
        if self.compile_engine not in COMPILE_ENGINES:
            raise BouquetError(
                f"config: unknown compile engine {self.compile_engine!r} "
                f"(expected one of {list(COMPILE_ENGINES)})"
            )
        if not isinstance(self.patch, bool):
            raise BouquetError("config: patch must be a bool")
        if not isinstance(self.template, bool):
            raise BouquetError("config: template must be a bool")

    @property
    def cost_model_object(self) -> CostModel:
        return _COST_MODELS[self.cost_model]

    def compile_knobs(self) -> Dict[str, object]:
        """The knobs that determine the compiled artifact (cache-key part)."""
        return {
            "ratio": self.ratio,
            "lambda": self.lambda_,
            "resolution": self.resolution,
            "cost_model": self.cost_model,
        }

    def resolution_for(self, dimensionality: int) -> int:
        if self.resolution is not None:
            return self.resolution
        return DEFAULT_RESOLUTIONS.get(dimensionality, 5)

    def with_(self, **changes) -> "BouquetConfig":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ratio": self.ratio,
            "lambda_": self.lambda_,
            "resolution": self.resolution,
            "mode": self.mode,
            "crossing": self.crossing,
            "equivalence_threshold": self.equivalence_threshold,
            "model_error_delta": self.model_error_delta,
            "cost_model": self.cost_model,
            "compile_engine": self.compile_engine,
            "patch": self.patch,
            "template": self.template,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "BouquetConfig":
        # Artifacts written before the batch engine (``compile_engine``),
        # the maintenance knob (``patch``), or the template-cache knob
        # (``template``) existed omit those keys; the dataclass defaults
        # cover them.
        return BouquetConfig(**dict(data))


DEFAULT_CONFIG = BouquetConfig()


@dataclass
class Catalog:
    """The compile-time environment: schema, statistics, optional data.

    ``statistics`` may be ``None`` (the ETL/no-stats scenario: magic
    numbers everywhere); ``database`` enables ground-truth base
    assignments at compile time and is the default execution target.
    """

    schema: Schema
    statistics: Optional[DatabaseStatistics] = None
    database: Optional[Database] = None

    def optimizer(
        self, config: BouquetConfig = DEFAULT_CONFIG, tracer: Optional[Tracer] = None
    ) -> Optimizer:
        return Optimizer(
            self.schema,
            self.statistics,
            config.cost_model_object,
            tracer=tracer if tracer is not None else NULL_TRACER,
        )


@dataclass
class CompiledBouquet:
    """The compile-time artifact: a bouquet plus the config that built it."""

    query: Query
    bouquet: PlanBouquet
    config: BouquetConfig
    sql: Optional[str] = None

    @property
    def space(self) -> SelectivitySpace:
        return self.bouquet.space

    @property
    def mso_bound(self) -> float:
        return self.bouquet.mso_bound

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "format": ARTIFACT_FORMAT,
            "sql": self.sql,
            "config": self.config.to_dict(),
            "bouquet": bouquet_to_dict(self.query, self.bouquet),
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    @staticmethod
    def from_dict(
        data: Dict,
        catalog: Catalog,
        query: Optional[Union[str, Query]] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> "CompiledBouquet":
        from .core.artifact import BOUQUET_FORMAT

        if data.get("format") == BOUQUET_FORMAT:
            # Legacy bare-bouquet payload (session-era save files): wrap
            # it in a v2 envelope, recovering the knobs it does carry.
            data = {
                "format": ARTIFACT_FORMAT,
                "sql": None,
                "config": BouquetConfig(
                    ratio=data["ratio"], lambda_=data["lambda"]
                ).to_dict(),
                "bouquet": data,
            }
        if data.get("format") != ARTIFACT_FORMAT:
            raise BouquetError("unrecognized bouquet artifact format")
        config = BouquetConfig.from_dict(data["config"])
        sql = data.get("sql")
        if query is None:
            if not sql:
                raise BouquetError(
                    "artifact stores no SQL; supply the query explicitly"
                )
            query = sql
        if isinstance(query, str):
            query = parse_query(query, catalog.schema)
        if optimizer is None:
            optimizer = catalog.optimizer(config)
        bouquet = bouquet_from_dict(data["bouquet"], optimizer, query)
        return CompiledBouquet(query=query, bouquet=bouquet, config=config, sql=sql)

    @staticmethod
    def load(
        path: str,
        catalog: Catalog,
        query: Optional[Union[str, Query]] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> "CompiledBouquet":
        with open(path) as handle:
            data = json.load(handle)
        return CompiledBouquet.from_dict(data, catalog, query, optimizer)


# ---------------------------------------------------------------------------
# Error-dimension selection (§4.1)
# ---------------------------------------------------------------------------


def default_error_dimensions(
    query: Query, schema: Schema, statistics: Optional[DatabaseStatistics]
) -> List[ErrorDimension]:
    """Cascade through the §4.1 mechanisms: high-uncertainty predicates
    first, then anything estimable-but-fallible, then the paper's
    fallback — every predicate whose selectivity is evaluated at all."""
    pids: List[str] = []
    for threshold in (Uncertainty.MEDIUM, Uncertainty.LOW, Uncertainty.NONE):
        pids = select_error_dimensions(query, statistics, threshold)
        if pids:
            break
    dims = []
    for pid in pids:
        pred = query.predicate(pid)
        if isinstance(pred, JoinPredicate):
            hi = join_dim_maximum(schema, pred)
            lo = hi / 1000.0
            label = f"{pred.left_table}x{pred.right_table}"
        else:
            lo, hi = SELECTION_DIM_RANGE
            label = f"{pred.table}.{pred.column}"
        dims.append(ErrorDimension(pid=pid, lo=lo, hi=hi, label=label))
    return dims


# ---------------------------------------------------------------------------
# Compile
# ---------------------------------------------------------------------------


def compile_bouquet(
    query: Union[str, Query],
    catalog: Catalog,
    *,
    config: Optional[BouquetConfig] = None,
    dimensions: Optional[Sequence[ErrorDimension]] = None,
    base_assignment: Optional[Mapping[str, float]] = None,
    tracer: Optional[Tracer] = None,
    workers: Optional[int] = None,
    cache: Optional["object"] = None,
    optimizer: Optional[Optimizer] = None,
    templates: Optional["object"] = None,
) -> CompiledBouquet:
    """Run the compile-time phase (Figure 8, left half).

    ``query`` may be SQL text (the SPJ fragment) or a ``Query``.  Error
    dimensions default to the §4.1 uncertainty rules; the base assignment
    defaults to ground truth when the catalog carries a database
    (non-error selectivities are assumed accurately estimable, §8) and to
    statistics-based estimates otherwise.

    ``cache`` may be a :class:`repro.serve.BouquetArtifactStore`; when the
    (query, statistics, compile-knobs) content hash is already cached the
    compiled artifact is returned without a single optimizer call.
    ``templates`` may be a :class:`repro.template.TemplateStore`; when the
    exact key misses but another instance of the same query *template*
    was compiled before, the artifact is rebound from it
    (:mod:`repro.template.rebind`) instead of recompiled — falling back
    to the full compile on any structural mismatch.  Explicit
    ``dimensions``/``base_assignment`` overrides bypass both caches
    (they are not part of either key).

    ``workers > 1`` parallelizes exhaustive POSP generation across
    processes (§4.2) via the hardened fork/spawn pool.
    """
    config = config if config is not None else DEFAULT_CONFIG
    tracer = tracer if tracer is not None else NULL_TRACER
    sql = query if isinstance(query, str) else None
    if isinstance(query, str):
        query = parse_query(query, catalog.schema)
    if dimensions is not None or base_assignment is not None:
        return _compile_pipeline(
            query, catalog, config, dimensions, base_assignment, tracer, workers,
            optimizer, sql, span_name="api.compile",
        )
    if cache is not None:
        from .serve.fingerprint import artifact_key

        key = artifact_key(query, catalog.statistics, config)
        hit = cache.get(key, catalog, query=query, tracer=tracer)
        if hit is not None:
            return hit
        compiled = _template_or_compile(
            query, catalog, config, tracer, workers, optimizer, sql, templates
        )
        cache.put(key, compiled, tracer=tracer)
        return compiled
    return _template_or_compile(
        query, catalog, config, tracer, workers, optimizer, sql, templates
    )


def _template_or_compile(
    query: Query,
    catalog: Catalog,
    config: BouquetConfig,
    tracer: Tracer,
    workers: Optional[int],
    optimizer: Optional[Optimizer],
    sql: Optional[str],
    templates: Optional["object"],
) -> CompiledBouquet:
    """Answer from the template tier when possible, else full-compile
    (and register the result as the template's representative)."""
    if templates is None or not config.template:
        return _compile_pipeline(
            query, catalog, config, None, None, tracer, workers, optimizer, sql,
            span_name="api.compile",
        )
    from .exceptions import TemplateError
    from .serve.fingerprint import config_fingerprint, statistics_fingerprint
    from .template import rebind_compiled, template_signature

    sig = template_signature(query, catalog.schema, catalog.statistics)
    stats_digest = statistics_fingerprint(catalog.statistics)
    cfg_digest = config_fingerprint(config)
    entry = templates.lookup(sig, stats_digest, cfg_digest)
    if entry is not None:
        tracer.count("template.hits")
        try:
            outcome = rebind_compiled(
                entry.compiled, entry.signature, query, catalog,
                instance_sig=sig, sql=sql, tracer=tracer,
            )
        except TemplateError as exc:
            tracer.count("template.fallbacks")
            if tracer.enabled:
                tracer.event(
                    "template.fallback", query=query.name, reason=exc.reason
                )
        else:
            tracer.count("template.rebinds")
            return outcome.compiled
    else:
        tracer.count("template.misses")
    compiled = _compile_pipeline(
        query, catalog, config, None, None, tracer, workers, optimizer, sql,
        span_name="api.compile",
    )
    templates.put(sig, compiled, stats_digest, cfg_digest)
    tracer.count("template.stores")
    return compiled


def _compile_pipeline(
    query: Query,
    catalog: Catalog,
    config: BouquetConfig,
    dimensions: Optional[Sequence[ErrorDimension]],
    base_assignment: Optional[Mapping[str, float]],
    tracer: Tracer,
    workers: Optional[int],
    optimizer: Optional[Optimizer],
    sql: Optional[str],
    span_name: str = "api.compile",
) -> CompiledBouquet:
    """The shared compile core (also entered by the serving layer)."""
    if optimizer is None:
        optimizer = catalog.optimizer(config, tracer=tracer)
    if dimensions is None:
        dimensions = default_error_dimensions(query, catalog.schema, catalog.statistics)
    if not dimensions:
        raise BouquetError(
            "no error-prone dimensions identified; the native optimizer "
            "suffices for this query"
        )
    with tracer.span(span_name, query=query.name) as span:
        if base_assignment is None:
            if catalog.database is not None:
                base_assignment = actual_selectivities(query, catalog.database)
            else:
                base_assignment = optimizer.estimated_assignment(query)
        res = config.resolution_for(len(dimensions))
        space = SelectivitySpace(query, dimensions, res, base_assignment)
        if space.size <= EXHAUSTIVE_LIMIT:
            diagram = PlanDiagram.exhaustive(
                optimizer, space, workers=workers, engine=config.compile_engine
            )
        else:
            diagram = PlanDiagram.from_candidates(
                optimizer,
                space,
                coarse_subgrid(space, per_dim=4),
                engine=config.compile_engine,
            )
        bouquet = identify_bouquet(diagram, lambda_=config.lambda_, ratio=config.ratio)
        span.set(
            dimensions=space.dimensionality,
            grid=space.size,
            cardinality=bouquet.cardinality,
            contours=len(bouquet.contours),
            mso_bound=bouquet.mso_bound,
        )
    return CompiledBouquet(query=query, bouquet=bouquet, config=config, sql=sql)


# ---------------------------------------------------------------------------
# Execute
# ---------------------------------------------------------------------------


class BudgetCappedService(ExecutionService):
    """Caps the cumulative cost a request may spend across all partial
    executions.  When the cap truncates an execution that the bouquet
    protocol expected to run under its full contour budget,
    :class:`~repro.exceptions.BudgetExceeded` is raised — the driver's
    doubling guarantee no longer holds past that point."""

    def __init__(self, inner: ExecutionService, budget: float):
        if budget <= 0:
            raise BouquetError("request budget must be positive")
        self.inner = inner
        self.budget = float(budget)
        self.spent = 0.0
        # Concurrent crossing calls run_full from worker threads; the
        # spent ledger must stay consistent under interleaving.
        self._lock = threading.Lock()

    def _allowed(self, requested: float) -> float:
        with self._lock:
            remaining = self.budget - self.spent
        if remaining <= 0:
            raise BudgetExceeded(
                f"request budget {self.budget:g} exhausted after spending "
                f"{self.spent:g}"
            )
        return min(requested, remaining)

    def _charge(self, outcome: ExecutionOutcome, truncated: bool) -> ExecutionOutcome:
        with self._lock:
            self.spent += outcome.cost_spent
        if truncated and not outcome.completed:
            raise BudgetExceeded(
                f"request budget {self.budget:g} exhausted mid-bouquet "
                f"(spent {self.spent:g})"
            )
        return outcome

    def run_full(
        self, plan_id: int, budget: float, cancel: Optional[object] = None
    ) -> ExecutionOutcome:
        allowed = self._allowed(budget)
        outcome = call_full(self.inner, plan_id, allowed, cancel=cancel)
        return self._charge(outcome, truncated=allowed < budget)

    def run_spilled(
        self,
        plan_id: int,
        budget: float,
        unlearned_pids: FrozenSet[str],
        cancel: Optional[object] = None,
    ) -> ExecutionOutcome:
        allowed = self._allowed(budget)
        outcome = call_spilled(self.inner, plan_id, allowed, unlearned_pids, cancel=cancel)
        return self._charge(outcome, truncated=allowed < budget)


def _apply_envelope(
    request: Optional["object"],
    budget: Optional[float],
    mode: Optional[str],
    crossing: Optional[str],
) -> Tuple[Optional[float], Optional[str], Optional[str]]:
    """Fold a :class:`~repro.serve.envelope.ServeRequest` into the
    per-run knobs.  The envelope and the bare keywords are mutually
    exclusive — one canonical calling convention, no silent merging."""
    if request is None:
        return budget, mode, crossing
    from .serve.envelope import ServeRequest

    if not isinstance(request, ServeRequest):
        raise BouquetError("request must be a repro.serve.ServeRequest")
    if any(v is not None for v in (budget, mode, crossing)):
        raise BouquetError(
            "pass knobs inside the ServeRequest envelope, not as keywords"
        )
    request.validate()
    return request.budget, request.mode, request.crossing


def execute(
    compiled: CompiledBouquet,
    data: Optional[Database] = None,
    *,
    request: Optional["object"] = None,
    budget: Optional[float] = None,
    mode: Optional[str] = None,
    crossing: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    span_name: str = "api.execute",
) -> BouquetRunResult:
    """Run the bouquet for real against ``data`` (or the catalog's database).

    ``request`` may be a :class:`~repro.serve.envelope.ServeRequest` —
    the same envelope the serving layer speaks — in which case the
    budget/mode/crossing knobs are taken from it.  Otherwise: ``budget``
    caps the *total* cost the request may spend across every partial
    execution (exceeding it raises
    :class:`~repro.exceptions.BudgetExceeded`) and ``crossing``
    overrides the config's contour-crossing strategy for this one run
    (see :mod:`repro.sched`).
    """
    from .executor.engine import ExecutionEngine
    from .executor.service import RealExecutionService

    budget, mode, crossing = _apply_envelope(request, budget, mode, crossing)
    if data is None:
        raise BouquetError("no database given; use simulate() instead")
    tracer = tracer if tracer is not None else NULL_TRACER
    config = compiled.config
    run_mode = mode if mode is not None else config.mode
    run_crossing = crossing if crossing is not None else config.crossing
    cost_model = compiled.bouquet.cost_cache.optimizer.cost_model
    with tracer.span(span_name, query=compiled.query.name, mode=run_mode):
        engine = ExecutionEngine(data, cost_model=cost_model, tracer=tracer)
        service: ExecutionService = RealExecutionService(compiled.bouquet, engine)
        if budget is not None:
            service = BudgetCappedService(service, budget)
        return BouquetRunner(
            compiled.bouquet,
            service,
            mode=run_mode,
            crossing=run_crossing,
            equivalence_threshold=config.equivalence_threshold,
            model_error_delta=config.model_error_delta,
            tracer=tracer,
        ).run()


def simulate(
    compiled: CompiledBouquet,
    qa_values: Sequence[float],
    *,
    request: Optional["object"] = None,
    mode: Optional[str] = None,
    crossing: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    span_name: str = "api.simulate",
) -> BouquetRunResult:
    """Cost-model-world run against a hypothetical actual location.

    Accepts the same :class:`~repro.serve.envelope.ServeRequest`
    envelope as :func:`execute` (mode/crossing; a budget on the envelope
    is ignored — simulation is cost-model arithmetic, not spend).
    """
    _budget, mode, crossing = _apply_envelope(request, None, mode, crossing)
    tracer = tracer if tracer is not None else NULL_TRACER
    config = compiled.config
    run_mode = mode if mode is not None else config.mode
    run_crossing = crossing if crossing is not None else config.crossing
    with tracer.span(span_name, query=compiled.query.name, mode=run_mode):
        service = AbstractExecutionService(compiled.bouquet, qa_values)
        return BouquetRunner(
            compiled.bouquet,
            service,
            mode=run_mode,
            crossing=run_crossing,
            equivalence_threshold=config.equivalence_threshold,
            model_error_delta=config.model_error_delta,
            tracer=tracer,
        ).run()


# ---------------------------------------------------------------------------
# Workload generation & fuzzing (the repro.wlgen facade)
# ---------------------------------------------------------------------------


def generate_workload(
    catalog: Catalog,
    count: int,
    seed: int = 42,
    config: Optional["object"] = None,
) -> List["object"]:
    """Sample ``count`` seeded random queries over ``catalog``.

    Returns :class:`~repro.wlgen.generator.GeneratedQuery` objects
    (each carries its ``Query``, its rendered SQL, and its
    ``(seed, index)`` replay coordinates).  The same ``(catalog, seed,
    count, config)`` always yields the same workload — the generator's
    determinism contract.  ``config`` is a
    :class:`~repro.wlgen.generator.GeneratorConfig`.
    """
    from .wlgen.generator import QueryGenerator

    generator = QueryGenerator(catalog.schema, catalog.database, config)
    return generator.generate_many(seed, count)


def fuzz(
    config: Optional["object"] = None,
    *,
    tracer: Optional[Tracer] = None,
    progress=None,
    **overrides,
) -> "object":
    """Run an MSO fuzzing campaign; returns a ``CampaignReport``.

    ``config`` is a :class:`~repro.wlgen.campaign.CampaignConfig`; when
    omitted one is built from ``overrides`` (e.g. ``fuzz(count=50,
    seed=9, workers=4)``).  The report's :meth:`ok` is True iff every
    generated query compiled, swept, and kept its measured MSO within
    the 4(1+λ)ρ guarantee.
    """
    from .wlgen.campaign import CampaignConfig, run_campaign

    if config is None:
        config = CampaignConfig(**overrides)
    elif overrides:
        raise BouquetError("fuzz: pass either a CampaignConfig or overrides, not both")
    return run_campaign(config, tracer=tracer, progress=progress)
