"""NAT — the native optimizer baseline.

NAT optimizes once at the estimated location ``qe`` and executes that
plan at the actual location ``qa``.  Its robustness profile over the ESS
derives directly from the plan diagram: every POSP plan is the choice at
some qe, so the worst case at qa maximizes over the POSP cost fields.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.runtime import BouquetRunResult, ExecutionRecord
from ..datagen.database import Database
from ..ess.diagram import PlanDiagram
from ..ess.space import Location
from ..exceptions import EssError
from ..obs.tracer import NULL_TRACER, Tracer
from ..optimizer.optimizer import Optimizer
from ..query.query import Query
from .metrics import StrategyProfile, aso, mso, subopt_worst_field


def native_profile(diagram: PlanDiagram) -> StrategyProfile:
    """Build NAT's strategy profile from a plan diagram."""
    cache = diagram.cache
    if cache is None:
        raise EssError("diagram lacks a cost cache")
    occupancy = diagram.occupancy()
    cost_fields = {
        plan_id: cache.cost_array(plan_id) for plan_id in occupancy
    }
    return StrategyProfile(
        cost_fields=cost_fields, occupancy=occupancy, pic=diagram.costs
    )


def native_run(
    optimizer: Optimizer,
    query: Query,
    database: Database,
    tracer: Optional[Tracer] = None,
) -> BouquetRunResult:
    """Execute ``query`` the NAT way: one optimizer call at the estimated
    location, one unbounded execution of the chosen plan.

    This is the serving layer's degradation path — when bouquet
    compilation fails or exceeds its deadline, the request still gets an
    answer, just without the MSO guarantee.  The result is reported in
    the same :class:`~repro.core.runtime.BouquetRunResult` shape as a
    bouquet run (a single full, non-spilled execution record with
    ``contour_index=-1``).
    """
    from ..executor.engine import ExecutionEngine

    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("nat.run", query=query.name):
        chosen = optimizer.optimize(query)
        engine = ExecutionEngine(
            database, cost_model=optimizer.cost_model, tracer=tracer
        )
        result = engine.execute(query, chosen.plan)
    record = ExecutionRecord(
        contour_index=-1,
        plan_id=chosen.plan_id,
        spilled=False,
        budget=float("inf"),
        cost_spent=result.spent,
        completed=result.completed,
    )
    return BouquetRunResult(
        total_cost=result.spent,
        executions=[record],
        final_plan_id=chosen.plan_id,
        completed=result.completed,
        result_rows=result.rows if result.completed else None,
    )


class NativeOptimizerStrategy:
    """Per-instance NAT behaviour: plan choice at qe, cost paid at qa."""

    def __init__(self, diagram: PlanDiagram):
        self.diagram = diagram
        if diagram.cache is None:
            raise EssError("diagram lacks a cost cache")
        self._profile = native_profile(diagram)

    def plan_for_estimate(self, qe: Location) -> int:
        return self.diagram.plan_at(qe)

    def cost(self, qe: Location, qa: Location) -> float:
        """Cost NAT pays when it estimates qe but the truth is qa."""
        plan_id = self.plan_for_estimate(qe)
        return self.diagram.cache.cost(plan_id, qa)

    def suboptimality(self, qe: Location, qa: Location) -> float:
        """SubOpt(qe, qa) (Equation 1)."""
        return self.cost(qe, qa) / self.diagram.cost_at(qa)

    def subopt_worst(self) -> np.ndarray:
        return subopt_worst_field(self._profile)

    def mso(self) -> float:
        return mso(self._profile)

    def aso(self) -> float:
        return aso(self._profile)

    @property
    def plan_cardinality(self) -> int:
        """Number of distinct plans NAT may execute (POSP cardinality)."""
        return len(self.diagram.posp_plan_ids)
