"""SEER — robust plan selection via plan-diagram reduction (Harish et al.,
PVLDB 2008), the comparison baseline of §6.

SEER replaces the optimizer's plan at each estimate location with a plan
from a reduced set, under a *global safety* condition: the replacement
must be within ``(1 + λ)`` of the replaced plan's own cost at **every**
ESS location, so it can never materially worsen the native choice
anywhere (which also caps SEER's MaxHarm at λ).  Its comparative
yardstick is therefore ``P_oe`` — the optimal plan at the estimate — not
``P_oa``, which is why SEER barely moves MSO/ASO in high-dimensional
spaces (§6.2-6.3).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ess.diagram import PlanDiagram
from ..ess.space import Location
from ..exceptions import EssError
from .metrics import StrategyProfile, aso, mso, subopt_worst_field


class SeerStrategy:
    """Globally-safe replacement strategy over a plan diagram."""

    def __init__(self, diagram: PlanDiagram, lambda_: float = 0.2):
        if diagram.cache is None:
            raise EssError("diagram lacks a cost cache")
        if lambda_ < 0:
            raise EssError("lambda must be non-negative")
        self.diagram = diagram
        self.lambda_ = lambda_
        self.replacement: Dict[int, int] = self._compute_replacements()
        self._profile = self._build_profile()

    # ------------------------------------------------------------------

    def _compute_replacements(self) -> Dict[int, int]:
        """Greedy global-safety reduction.

        Candidates are ordered by diagram occupancy (plans covering more
        of the ESS first, as in the original heuristic); each plan is
        mapped to the most-occupying candidate that swallows it safely.
        """
        cache = self.diagram.cache
        occupancy = self.diagram.occupancy()
        posp = sorted(occupancy, key=lambda p: (-occupancy[p], p))
        threshold = 1.0 + self.lambda_
        fields = {p: cache.cost_array(p) for p in posp}
        replacement: Dict[int, int] = {}
        for victim in posp:
            chosen = victim
            for candidate in posp:
                if candidate == victim:
                    continue
                # Global safety: candidate within (1+λ) of victim everywhere.
                if np.all(fields[candidate] <= threshold * fields[victim] + 1e-12):
                    chosen = candidate
                    break
            replacement[victim] = chosen
        # Collapse chains (a -> b, b -> c  =>  a -> c).
        for victim in list(replacement):
            seen = {victim}
            target = replacement[victim]
            while replacement.get(target, target) != target and target not in seen:
                seen.add(target)
                target = replacement[target]
            replacement[victim] = target
        return replacement

    def _build_profile(self) -> StrategyProfile:
        cache = self.diagram.cache
        occupancy: Dict[int, int] = {}
        for plan_id, count in self.diagram.occupancy().items():
            target = self.replacement.get(plan_id, plan_id)
            occupancy[target] = occupancy.get(target, 0) + count
        cost_fields = {p: cache.cost_array(p) for p in occupancy}
        return StrategyProfile(
            cost_fields=cost_fields, occupancy=occupancy, pic=self.diagram.costs
        )

    # ------------------------------------------------------------------

    def plan_for_estimate(self, qe: Location) -> int:
        native = self.diagram.plan_at(qe)
        return self.replacement.get(native, native)

    def cost(self, qe: Location, qa: Location) -> float:
        return self.diagram.cache.cost(self.plan_for_estimate(qe), qa)

    def subopt_worst(self) -> np.ndarray:
        return subopt_worst_field(self._profile)

    def mso(self) -> float:
        return mso(self._profile)

    def aso(self) -> float:
        return aso(self._profile)

    @property
    def plan_cardinality(self) -> int:
        """Distinct plans SEER may execute after replacement."""
        return len({self.replacement.get(p, p) for p in self.diagram.posp_plan_ids})
