"""Robustness metrics: SubOpt, MSO, ASO, MaxHarm (§2).

All metrics are defined over the discretized ESS grid under the paper's
uniformity assumption (estimates and actuals equally likely everywhere).

For single-plan strategies (NAT, SEER) the key observation is that

* ``SubOptWorst(qa) = max_P c_P(qa) / c_opt(qa)`` over the plans the
  strategy can choose (each is chosen at *some* qe), and
* ASO aggregates ``Σ_qe c_{P(qe)}(qa)`` = ``Σ_P n_P · c_P(qa)`` where
  ``n_P`` counts the locations where P is chosen,

so both reduce to per-plan cost fields — no quadratic (qe, qa) sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..exceptions import EssError


@dataclass
class StrategyProfile:
    """Everything needed to score one execution strategy over an ESS.

    ``cost_fields`` maps plan id -> that plan's cost at every grid
    location; ``occupancy`` maps plan id -> number of estimate locations
    choosing it.  For bouquet-style strategies (no per-qe plan choice),
    use :func:`bouquet_profile` instead.
    """

    cost_fields: Mapping[int, np.ndarray]
    occupancy: Mapping[int, int]
    pic: np.ndarray

    def __post_init__(self):
        if not self.cost_fields:
            raise EssError("strategy has no plans")
        for array in self.cost_fields.values():
            if array.shape != self.pic.shape:
                raise EssError("cost field shape mismatch")


def subopt_worst_field(profile: StrategyProfile) -> np.ndarray:
    """SubOptWorst(qa) for a single-plan strategy, per grid location."""
    stacked = np.stack([profile.cost_fields[p] for p in sorted(profile.cost_fields)])
    return stacked.max(axis=0) / profile.pic


def mso(profile: StrategyProfile) -> float:
    """Maximum sub-optimality over the whole ESS (Equation 3)."""
    return float(subopt_worst_field(profile).max())


def aso(profile: StrategyProfile) -> float:
    """Average sub-optimality over all (qe, qa) pairs (Equation 4)."""
    total_locations = sum(profile.occupancy.values())
    if total_locations <= 0:
        raise EssError("strategy occupancy is empty")
    weighted = np.zeros_like(profile.pic)
    for plan_id, count in profile.occupancy.items():
        weighted += count * profile.cost_fields[plan_id]
    per_qa = weighted / (total_locations * profile.pic)
    return float(per_qa.mean())


# ---------------------------------------------------------------------------
# Bouquet-side metrics (no qe dependence: SubOpt(*, qa))
# ---------------------------------------------------------------------------


def crossing_mso_bound(
    ratio: float, lambda_: float, rho: int, concurrent: bool = False
) -> float:
    """Analytical MSO ceiling for a contour-crossing discipline.

    Sequential crossing pays every plan of every climbed contour:
    ``rho * (1+lambda) * r^2/(r-1)`` (Theorem 3 + §3.3) — ``4*(1+lambda)*rho``
    at the optimal ``r = 2``.  Concurrent crossing runs a contour's plans
    on separate cores, so the *elapsed* cost-time per contour is one
    budget and the rho factor collapses: ``(1+lambda) * r^2/(r-1)``,
    i.e. ``4*(1+lambda)`` at ``r = 2`` — the 1D bound, regardless of
    contour density.  This is the ledger-side counterpart of
    :class:`repro.sched.BudgetLedger`.
    """
    if ratio <= 1.0:
        raise EssError("crossing bound needs ratio > 1")
    if lambda_ < 0.0:
        raise EssError("crossing bound needs non-negative lambda")
    if rho < 1:
        raise EssError("crossing bound needs rho >= 1")
    base = (1.0 + lambda_) * ratio * ratio / (ratio - 1.0)
    return base if concurrent else base * float(rho)


def optimized_field(bouquet, crossing=None, workers=None) -> np.ndarray:
    """Grid-shaped optimized-bouquet cost field via the sweep engine.

    The ndarray counterpart of
    :func:`repro.core.simulation.optimized_cost_field` — feed it straight
    into :func:`bouquet_mso` / :func:`bouquet_aso` / :func:`max_harm`.
    Results are memoized on the bouquet, so computing several metrics
    costs one sweep.
    """
    from ..sweep import optimized_field_array

    return optimized_field_array(bouquet, crossing=crossing, workers=workers)


def optimized_bouquet_metrics(
    bouquet,
    pic: np.ndarray,
    nat_subopt_worst: np.ndarray = None,
    crossing=None,
    workers=None,
) -> Dict[str, float]:
    """MSO/ASO (and MaxHarm given a native baseline) for the optimized
    bouquet, swept in one pass over the ESS."""
    field = optimized_field(bouquet, crossing=crossing, workers=workers)
    metrics = {
        "mso": bouquet_mso(field, pic),
        "aso": bouquet_aso(field, pic),
    }
    if nat_subopt_worst is not None:
        metrics["max_harm"] = max_harm(field, pic, nat_subopt_worst)
        metrics["harm_fraction"] = harm_fraction(field, pic, nat_subopt_worst)
    return metrics


def bouquet_mso(bouquet_cost_field: np.ndarray, pic: np.ndarray) -> float:
    return float((bouquet_cost_field / pic).max())


def bouquet_aso(bouquet_cost_field: np.ndarray, pic: np.ndarray) -> float:
    return float((bouquet_cost_field / pic).mean())


def max_harm(
    bouquet_cost_field: np.ndarray,
    pic: np.ndarray,
    nat_subopt_worst: np.ndarray,
) -> float:
    """MaxHarm (Equation 5): how much worse the bouquet can be, per
    location, than the native optimizer's *worst* case there.

    Positive values mean the bouquet harmed some locations."""
    ratio = (bouquet_cost_field / pic) / nat_subopt_worst
    return float(ratio.max() - 1.0)


def harm_fraction(
    bouquet_cost_field: np.ndarray,
    pic: np.ndarray,
    nat_subopt_worst: np.ndarray,
) -> float:
    """Fraction of ESS locations where the bouquet is harmful (§6.5)."""
    ratio = (bouquet_cost_field / pic) / nat_subopt_worst
    return float((ratio > 1.0).mean())


def robustness_enhancement(
    bouquet_cost_field: np.ndarray,
    pic: np.ndarray,
    nat_subopt_worst: np.ndarray,
) -> np.ndarray:
    """Per-location enhancement SubOptWorst(qa) / SubOpt(*, qa) (§6.4)."""
    return nat_subopt_worst / (bouquet_cost_field / pic)


def enhancement_histogram(
    enhancement: np.ndarray,
    decade_edges: Sequence[float] = (1.0, 10.0, 100.0, 1000.0, 10000.0),
) -> Dict[str, float]:
    """Percentage of locations per order-of-magnitude improvement bucket
    (the Figure 16 distribution)."""
    flat = enhancement.ravel()
    buckets: Dict[str, float] = {}
    below = float((flat < decade_edges[0]).mean()) * 100.0
    buckets[f"< {decade_edges[0]:g}x"] = below
    for lo, hi in zip(decade_edges, decade_edges[1:]):
        frac = float(((flat >= lo) & (flat < hi)).mean()) * 100.0
        buckets[f"[{lo:g}x, {hi:g}x)"] = frac
    top = decade_edges[-1]
    buckets[f">= {top:g}x"] = float((flat >= top).mean()) * 100.0
    return buckets
