"""Robustness metrics and baseline strategies (NAT, SEER)."""

from .metrics import (
    StrategyProfile,
    aso,
    bouquet_aso,
    bouquet_mso,
    enhancement_histogram,
    harm_fraction,
    max_harm,
    mso,
    optimized_bouquet_metrics,
    optimized_field,
    robustness_enhancement,
    subopt_worst_field,
)
from .nat import NativeOptimizerStrategy, native_profile
from .reopt import ReoptRunResult, ReoptStep, ReoptStrategy
from .seer import SeerStrategy

__all__ = [
    "StrategyProfile",
    "aso",
    "bouquet_aso",
    "bouquet_mso",
    "enhancement_histogram",
    "harm_fraction",
    "max_harm",
    "mso",
    "optimized_bouquet_metrics",
    "optimized_field",
    "robustness_enhancement",
    "subopt_worst_field",
    "NativeOptimizerStrategy",
    "native_profile",
    "ReoptRunResult",
    "ReoptStep",
    "ReoptStrategy",
    "SeerStrategy",
]
