"""ReOpt — a mid-query re-optimization baseline (POP/Rio style, §7).

The paper excludes re-optimization techniques from its evaluation
because "their performance could be arbitrarily poor with regard to both
P_oe and P_oa"; we implement a faithful simplification so that claim can
be examined empirically:

* start from the optimizer's plan at the *estimated* location ``qe``;
* execute until the first error-prone node completes, observing the true
  selectivity of that predicate (the work spent is charged like a
  spilled partial execution and its results are conservatively
  discarded, as in the bouquet's accounting);
* re-optimize at the refined location and repeat until a plan executes
  with no unobserved error predicate left — that run's estimates cannot
  be invalidated, so it runs to completion.

Unlike the bouquet, ReOpt has no cost ceiling on each step: a terrible
initial plan can burn unbounded work *before* the first checkpoint, and
each re-optimization restarts from scratch — which is exactly why it
provides no MSO guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..ess.space import SelectivitySpace
from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer
from ..optimizer.plans import cost_plan, first_error_node, spilled_cost
from ..query.query import Query


@dataclass
class ReoptStep:
    """One plan attempt of a ReOpt run."""

    plan_id: int
    cost_spent: float
    learned_pids: Tuple[str, ...]
    completed: bool


@dataclass
class ReoptRunResult:
    """Account of one ReOpt execution."""

    total_cost: float
    steps: List[ReoptStep]
    final_plan_id: int

    @property
    def reoptimizations(self) -> int:
        return len(self.steps) - 1


class ReoptStrategy:
    """Simulated mid-query re-optimization over an ESS."""

    def __init__(self, space: SelectivitySpace, optimizer: Optimizer):
        self.space = space
        self.optimizer = optimizer
        self.query: Query = space.query
        self._dim_pids = {dim.pid for dim in space.dimensions}

    def run(
        self,
        qe_values: Sequence[float],
        qa_values: Sequence[float],
        max_steps: int = 20,
    ) -> ReoptRunResult:
        """Execute at true location ``qa`` starting from estimate ``qe``.

        Both are vectors over the ESS dimensions; non-dimension
        selectivities come from the space's base assignment (truth).
        """
        if len(qe_values) != self.space.dimensionality:
            raise EssError("qe vector does not match ESS dimensionality")
        if len(qa_values) != self.space.dimensionality:
            raise EssError("qa vector does not match ESS dimensionality")
        truth = self.space.assignment_for(qa_values)
        believed = self.space.assignment_for(qe_values)
        observed: Set[str] = set()
        total = 0.0
        steps: List[ReoptStep] = []
        schema = self.optimizer.schema
        model = self.optimizer.cost_model

        for _ in range(max_steps):
            plan = self.optimizer.optimize(self.query, assignment=believed)
            unobserved = frozenset(self._dim_pids - observed)
            node = first_error_node(plan.plan, unobserved)
            if node is None:
                # Every error predicate's selectivity is known: this plan's
                # costing cannot be invalidated mid-run; it completes.
                final_cost = cost_plan(plan.plan, schema, model, truth).cost
                total += final_cost
                steps.append(
                    ReoptStep(
                        plan_id=plan.plan_id,
                        cost_spent=final_cost,
                        learned_pids=(),
                        completed=True,
                    )
                )
                return ReoptRunResult(
                    total_cost=total, steps=steps, final_plan_id=plan.plan_id
                )
            # Run up to (and including) the checkpoint node at TRUE costs,
            # observing the true selectivities it evaluates.
            checkpoint_cost, learned = spilled_cost(
                plan.plan, schema, model, truth, unobserved
            )
            total += checkpoint_cost
            for pid in learned:
                observed.add(pid)
                believed[pid] = truth[pid]
            steps.append(
                ReoptStep(
                    plan_id=plan.plan_id,
                    cost_spent=checkpoint_cost,
                    learned_pids=tuple(sorted(learned)),
                    completed=False,
                )
            )
        raise EssError("ReOpt failed to converge within max_steps")

    # ------------------------------------------------------------------

    def suboptimality(
        self, qe_values: Sequence[float], qa_values: Sequence[float]
    ) -> float:
        """Total ReOpt cost at (qe, qa) relative to the optimal plan's."""
        truth = self.space.assignment_for(qa_values)
        optimal = self.optimizer.optimize(self.query, assignment=truth).cost
        run = self.run(qe_values, qa_values)
        return run.total_cost / optimal
