"""Column and table statistics: the optimizer's (fallible) view of the data.

Statistics are the root cause of the estimation errors that the plan-bouquet
technique side-steps.  We model the standard toolkit of a System-R style
optimizer:

* per-column min/max and distinct counts,
* equi-depth histograms for range selectivity,
* most-common-value (MCV) lists for equality selectivity,

and, crucially, the statistics can be *stale*: built from a sample or an
earlier state of the data, so estimated selectivities diverge from actual
ones — exactly the regime the paper targets.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import CatalogError

#: Default number of equi-depth histogram buckets (PostgreSQL's default).
DEFAULT_HISTOGRAM_BUCKETS = 100

#: Default MCV list length.
DEFAULT_MCV_ENTRIES = 10

#: The Selinger "magic number" used when no statistics are available for an
#: equality predicate (1/10 per the classic System-R paper, cited in §1).
MAGIC_EQUALITY_SELECTIVITY = 0.1

#: Magic number for range predicates without statistics (PostgreSQL uses 1/3).
MAGIC_RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass
class ColumnStatistics:
    """Summary statistics for one column.

    ``histogram_bounds`` are equi-depth bucket boundaries: ``len(bounds) - 1``
    buckets each holding an equal fraction of the (non-MCV) rows.
    """

    min_value: float
    max_value: float
    n_distinct: int
    null_fraction: float = 0.0
    histogram_bounds: Optional[List[float]] = None
    mcv_values: List[float] = field(default_factory=list)
    mcv_fractions: List[float] = field(default_factory=list)

    @staticmethod
    def from_array(
        values: np.ndarray,
        buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
        mcv_entries: int = DEFAULT_MCV_ENTRIES,
        sample_size: Optional[int] = None,
        seed: int = 0,
    ) -> "ColumnStatistics":
        """Build statistics from a data array, optionally from a sample.

        Sampling (``sample_size``) is how staleness/inaccuracy enters: stats
        built from a small sample mis-estimate skewed distributions.
        """
        if values.size == 0:
            raise CatalogError("cannot build statistics from an empty column")
        data = values
        if sample_size is not None and sample_size < data.size:
            rng = np.random.default_rng(seed)
            data = rng.choice(data, size=sample_size, replace=False)
        data = np.sort(data.astype(float))
        n = data.size

        uniques, counts = np.unique(data, return_counts=True)
        n_distinct = int(uniques.size)

        # MCV list: most frequent values and their fractions.
        mcv_values: List[float] = []
        mcv_fractions: List[float] = []
        if n_distinct > 1 and mcv_entries > 0:
            order = np.argsort(counts)[::-1][:mcv_entries]
            for idx in order:
                frac = counts[idx] / n
                # Only keep values noticeably more common than average.
                if frac > 1.5 / n_distinct:
                    mcv_values.append(float(uniques[idx]))
                    mcv_fractions.append(float(frac))

        # Equi-depth histogram over the remaining (non-MCV) values.
        if mcv_values:
            mask = ~np.isin(data, np.array(mcv_values))
            hist_data = data[mask]
        else:
            hist_data = data
        bounds: Optional[List[float]] = None
        if hist_data.size >= 2:
            nb = min(buckets, max(1, hist_data.size - 1))
            quantiles = np.linspace(0.0, 1.0, nb + 1)
            bounds = [float(v) for v in np.quantile(hist_data, quantiles)]
        return ColumnStatistics(
            min_value=float(data[0]),
            max_value=float(data[-1]),
            n_distinct=n_distinct,
            histogram_bounds=bounds,
            mcv_values=mcv_values,
            mcv_fractions=mcv_fractions,
        )

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------

    def equality_selectivity(self, value: float) -> float:
        """Estimated fraction of rows with ``column = value``."""
        for mcv, frac in zip(self.mcv_values, self.mcv_fractions):
            if mcv == value:
                return frac
        remaining = max(0.0, 1.0 - sum(self.mcv_fractions))
        others = max(1, self.n_distinct - len(self.mcv_values))
        return _clamp(remaining / others)

    def range_selectivity(self, op: str, value: float) -> float:
        """Estimated fraction of rows satisfying ``column <op> value``.

        ``op`` is one of ``<``, ``<=``, ``>``, ``>=``.
        """
        below = self._fraction_below(value, inclusive=op in ("<=", ">"))
        if op in ("<", "<="):
            sel = below
        elif op in (">", ">="):
            sel = 1.0 - below
        else:
            raise CatalogError(f"unsupported range operator {op!r}")
        return _clamp(sel)

    def _fraction_below(self, value: float, inclusive: bool) -> float:
        """Fraction of rows strictly below (or below-or-equal) ``value``."""
        if value <= self.min_value:
            return 0.0 if not inclusive else self.equality_selectivity(self.min_value)
        if value >= self.max_value:
            return 1.0
        frac = 0.0
        hist_weight = max(0.0, 1.0 - sum(self.mcv_fractions))
        if self.histogram_bounds:
            bounds = self.histogram_bounds
            nb = len(bounds) - 1
            pos = bisect.bisect_right(bounds, value) - 1
            pos = min(max(pos, 0), nb - 1)
            lo, hi = bounds[pos], bounds[pos + 1]
            within = 0.0 if hi <= lo else (value - lo) / (hi - lo)
            frac += hist_weight * (pos + within) / nb
        else:
            span = self.max_value - self.min_value
            if span > 0:
                frac += hist_weight * (value - self.min_value) / span
        for mcv, mfrac in zip(self.mcv_values, self.mcv_fractions):
            if mcv < value or (inclusive and mcv == value):
                frac += mfrac
        return _clamp(frac)


def _clamp(sel: float, lo: float = 1e-9, hi: float = 1.0) -> float:
    return min(hi, max(lo, sel))


class TableStatistics:
    """Statistics for all columns of one table."""

    def __init__(self, table_name: str, row_count: int):
        self.table_name = table_name
        self.row_count = int(row_count)
        self._columns: Dict[str, ColumnStatistics] = {}
        self._version = 0

    def set_column(self, column: str, stats: ColumnStatistics):
        self._columns[column] = stats
        self._version += 1

    def column(self, column: str) -> Optional[ColumnStatistics]:
        return self._columns.get(column)

    @property
    def column_names(self) -> List[str]:
        return sorted(self._columns)


class DatabaseStatistics:
    """Statistics for a whole database; the optimizer's world view.

    Missing column statistics fall back to "magic numbers", mirroring the
    ETL-workflow scenario from the paper's introduction.
    """

    def __init__(self):
        self._tables: Dict[str, TableStatistics] = {}
        self._version = 0

    def set_table(self, stats: TableStatistics):
        self._tables[stats.table_name] = stats
        self._version += 1

    def table(self, name: str) -> Optional[TableStatistics]:
        return self._tables.get(name)

    def row_count(self, table: str) -> Optional[int]:
        stats = self._tables.get(table)
        return None if stats is None else stats.row_count

    def column(self, table: str, column: str) -> Optional[ColumnStatistics]:
        stats = self._tables.get(table)
        return None if stats is None else stats.column(column)

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def version_token(self) -> tuple:
        """A cheap token that changes whenever statistics are replaced via
        :meth:`set_table` / :meth:`TableStatistics.set_column` — used to
        memoize content fingerprints (see
        :func:`repro.serve.fingerprint.statistics_fingerprint`).  Mutating
        :class:`ColumnStatistics` fields in place bypasses it; always go
        through the setters."""
        return (
            self._version,
            tuple((name, t._version) for name, t in sorted(self._tables.items())),
        )
