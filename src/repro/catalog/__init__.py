"""Catalog: schemas, statistics, and benchmark schema definitions."""

from .schema import Column, ForeignKey, IndexInfo, Schema, Table
from .statistics import ColumnStatistics, DatabaseStatistics, TableStatistics
from .tpch import tpch_generator_spec, tpch_row_counts, tpch_schema
from .tpcds import tpcds_generator_spec, tpcds_row_counts, tpcds_schema

__all__ = [
    "Column",
    "ForeignKey",
    "IndexInfo",
    "Schema",
    "Table",
    "ColumnStatistics",
    "DatabaseStatistics",
    "TableStatistics",
    "tpch_generator_spec",
    "tpch_row_counts",
    "tpch_schema",
    "tpcds_generator_spec",
    "tpcds_row_counts",
    "tpcds_schema",
]
