"""Relational schema objects: columns, tables, foreign keys, schemas.

The catalog is the shared vocabulary between the data generator, the
optimizer's cost/cardinality models and the execution engine.  It is
deliberately minimal: enough structure to express TPC-H / TPC-DS style
star, chain and branch join graphs with selection predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import CatalogError

#: Default database page size used to convert row widths into page counts.
PAGE_SIZE_BYTES = 8192

#: Width in bytes charged per column type when computing row widths.
_TYPE_WIDTHS = {
    "int": 8,
    "float": 8,
    "date": 8,
    "string": 24,
}


@dataclass(frozen=True)
class Column:
    """A table column.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    dtype:
        One of ``int``, ``float``, ``date``, ``string``.  Strings are
        dictionary-encoded to integer codes by the data generator, so the
        executor only ever sees numeric arrays.
    distinct:
        Optional domain-size hint (number of distinct values) used by the
        cost model for group-by output cardinality.
    """

    name: str
    dtype: str = "int"
    distinct: Optional[int] = None

    def __post_init__(self):
        if self.dtype not in _TYPE_WIDTHS:
            raise CatalogError(
                f"unsupported column dtype {self.dtype!r} for column {self.name!r}"
            )

    @property
    def width(self) -> int:
        """Storage width in bytes, used by the cost model."""
        return _TYPE_WIDTHS[self.dtype]


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``child.column -> parent.column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def __str__(self):
        return (
            f"{self.child_table}.{self.child_column} -> "
            f"{self.parent_table}.{self.parent_column}"
        )


class Table:
    """A base relation with a primary key and a nominal row count.

    The row count recorded here is the *catalog* cardinality: the value the
    optimizer believes.  The generated data matches it exactly, so catalog
    base-table cardinalities are error-free (as in the paper, where only
    selection/join selectivities are error-prone).
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        row_count: int,
        primary_key: Optional[str] = None,
    ):
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise CatalogError(f"table {name!r} has no columns")
        self._by_name: Dict[str, Column] = {}
        for col in self.columns:
            if col.name in self._by_name:
                raise CatalogError(f"duplicate column {col.name!r} in table {name!r}")
            self._by_name[col.name] = col
        if row_count <= 0:
            raise CatalogError(f"table {name!r} must have a positive row count")
        self.row_count = int(row_count)
        if primary_key is not None and primary_key not in self._by_name:
            raise CatalogError(
                f"primary key {primary_key!r} is not a column of table {name!r}"
            )
        self.primary_key = primary_key

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`CatalogError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> List[str]:
        return [col.name for col in self.columns]

    @property
    def row_width(self) -> int:
        """Total row width in bytes."""
        return sum(col.width for col in self.columns)

    @property
    def pages(self) -> int:
        """Number of heap pages holding the relation (at least one)."""
        rows_per_page = max(1, PAGE_SIZE_BYTES // max(1, self.row_width))
        return max(1, -(-self.row_count // rows_per_page))

    def __repr__(self):
        return f"Table({self.name!r}, rows={self.row_count})"


class Schema:
    """A named collection of tables plus foreign-key edges.

    Every column referenced by a query is assumed to carry a secondary index
    (the paper's "indexes on all columns" physical design) unless the schema
    is constructed with ``indexed_columns`` restricting the set.
    """

    def __init__(
        self,
        name: str,
        tables: Iterable[Table],
        foreign_keys: Iterable[ForeignKey] = (),
        indexed_columns: Optional[Iterable[Tuple[str, str]]] = None,
    ):
        self.name = name
        self.tables: Dict[str, Table] = {}
        for table in tables:
            if table.name in self.tables:
                raise CatalogError(f"duplicate table {table.name!r} in schema {name!r}")
            self.tables[table.name] = table
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            self._check_fk(fk)
        if indexed_columns is None:
            self._indexed = None  # all columns are indexed
        else:
            self._indexed = frozenset(indexed_columns)

    def _check_fk(self, fk: ForeignKey):
        child = self.table(fk.child_table)
        parent = self.table(fk.parent_table)
        child.column(fk.child_column)
        parent.column(fk.parent_column)
        if parent.primary_key != fk.parent_column:
            raise CatalogError(
                f"foreign key {fk} does not target the parent's primary key"
            )

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"schema {self.name!r} has no table {name!r}") from None

    def has_index(self, table: str, column: str) -> bool:
        """True if ``table.column`` carries a secondary index."""
        self.table(table).column(column)
        if self._indexed is None:
            return True
        return (table, column) in self._indexed

    def foreign_key_between(
        self, table_a: str, column_a: str, table_b: str, column_b: str
    ) -> Optional[ForeignKey]:
        """Return the FK edge matching the given join columns, if any."""
        for fk in self.foreign_keys:
            forward = (
                fk.child_table == table_a
                and fk.child_column == column_a
                and fk.parent_table == table_b
                and fk.parent_column == column_b
            )
            backward = (
                fk.child_table == table_b
                and fk.child_column == column_b
                and fk.parent_table == table_a
                and fk.parent_column == column_a
            )
            if forward or backward:
                return fk
        return None

    @property
    def table_names(self) -> List[str]:
        return sorted(self.tables)

    def __repr__(self):
        return f"Schema({self.name!r}, tables={self.table_names})"


@dataclass
class IndexInfo:
    """Descriptor for a (simulated) secondary B-tree index."""

    table: str
    column: str
    height: int = 3  # B-tree descent depth charged as random page reads
    leaf_pages: int = field(default=0)

    @staticmethod
    def for_table(table: Table, column: str) -> "IndexInfo":
        # Index entries are narrow; approximate 16 bytes per entry.
        entries_per_page = max(1, PAGE_SIZE_BYTES // 16)
        leaf_pages = max(1, -(-table.row_count // entries_per_page))
        return IndexInfo(table=table.name, column=column, leaf_pages=leaf_pages)
