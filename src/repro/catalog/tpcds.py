"""TPC-DS style schema (decision-support subset) and generator spec.

We model the subset of TPC-DS touched by the paper's workload queries
(Q7, Q15, Q19, Q26, Q91, Q96): the ``store_sales`` and ``catalog_sales``
fact tables plus the dimensions they star/branch into.  Cardinalities
follow TPC-DS proportions at a configurable scale factor.
"""

from __future__ import annotations

from typing import Dict

from ..datagen.generators import (
    ColumnGenerator,
    DictionaryString,
    ForeignKeyRef,
    SequentialKey,
    UniformFloat,
    UniformInt,
)
from .schema import Column, ForeignKey, Schema, Table

#: Approximate TPC-DS cardinalities at scale factor 1 (1GB).
_SF1_ROWS = {
    "date_dim": 73_049,
    "time_dim": 86_400,
    "item": 18_000,
    "store": 12,
    "customer": 100_000,
    "customer_address": 50_000,
    "customer_demographics": 19_208,
    "household_demographics": 7_200,
    "promotion": 300,
    "call_center": 6,
    "catalog_sales": 1_441_548,
    "store_sales": 2_880_404,
    "web_sales": 719_384,
}

#: Dimension tables that stay fixed-size across scale factors.
_FIXED_TABLES = {
    "date_dim",
    "time_dim",
    "store",
    "customer_demographics",
    "household_demographics",
    "promotion",
    "call_center",
}


def tpcds_row_counts(scale_factor: float) -> Dict[str, int]:
    """Row counts for each TPC-DS table at the given scale factor."""
    counts = {}
    for name, sf1 in _SF1_ROWS.items():
        if name in _FIXED_TABLES:
            # Keep small dimensions small but clamp the huge fixed ones.
            counts[name] = min(sf1, max(6, int(sf1 * max(scale_factor, 0.02))))
        else:
            counts[name] = max(10, int(sf1 * scale_factor))
    return counts


def tpcds_schema(scale_factor: float = 0.01) -> Schema:
    """Build the TPC-DS (subset) schema at ``scale_factor``."""
    rows = tpcds_row_counts(scale_factor)
    tables = [
        Table(
            "date_dim",
            [
                Column("d_date_sk"),
                Column("d_year", distinct=6),
                Column("d_moy", distinct=12),
                Column("d_dom"),
            ],
            rows["date_dim"],
            primary_key="d_date_sk",
        ),
        Table(
            "time_dim",
            [Column("t_time_sk"), Column("t_hour"), Column("t_minute")],
            rows["time_dim"],
            primary_key="t_time_sk",
        ),
        Table(
            "item",
            [
                Column("i_item_sk"),
                Column("i_brand_id"),
                Column("i_category_id", distinct=10),
                Column("i_manufact_id"),
                Column("i_current_price", "float"),
            ],
            rows["item"],
            primary_key="i_item_sk",
        ),
        Table(
            "store",
            [Column("s_store_sk"), Column("s_number_employees"), Column("s_state", "string", distinct=9)],
            rows["store"],
            primary_key="s_store_sk",
        ),
        Table(
            "customer",
            [
                Column("c_customer_sk"),
                Column("c_current_addr_sk"),
                Column("c_current_cdemo_sk"),
                Column("c_current_hdemo_sk"),
                Column("c_birth_year"),
            ],
            rows["customer"],
            primary_key="c_customer_sk",
        ),
        Table(
            "customer_address",
            [
                Column("ca_address_sk"),
                Column("ca_gmt_offset", "float"),
                Column("ca_state", "string", distinct=51),
            ],
            rows["customer_address"],
            primary_key="ca_address_sk",
        ),
        Table(
            "customer_demographics",
            [
                Column("cd_demo_sk"),
                Column("cd_gender", "string", distinct=2),
                Column("cd_marital_status", "string", distinct=5),
                Column("cd_education_status", "string", distinct=7),
            ],
            rows["customer_demographics"],
            primary_key="cd_demo_sk",
        ),
        Table(
            "household_demographics",
            [
                Column("hd_demo_sk"),
                Column("hd_dep_count", distinct=10),
                Column("hd_buy_potential", "string", distinct=6),
            ],
            rows["household_demographics"],
            primary_key="hd_demo_sk",
        ),
        Table(
            "promotion",
            [
                Column("p_promo_sk"),
                Column("p_channel_email", "string"),
                Column("p_channel_event", "string"),
            ],
            rows["promotion"],
            primary_key="p_promo_sk",
        ),
        Table(
            "call_center",
            [Column("cc_call_center_sk"), Column("cc_employees")],
            rows["call_center"],
            primary_key="cc_call_center_sk",
        ),
        Table(
            "store_sales",
            [
                Column("ss_sold_date_sk"),
                Column("ss_item_sk"),
                Column("ss_customer_sk"),
                Column("ss_cdemo_sk"),
                Column("ss_hdemo_sk"),
                Column("ss_store_sk"),
                Column("ss_promo_sk"),
                Column("ss_quantity"),
                Column("ss_sales_price", "float"),
            ],
            rows["store_sales"],
            primary_key=None,
        ),
        Table(
            "catalog_sales",
            [
                Column("cs_sold_date_sk"),
                Column("cs_item_sk"),
                Column("cs_bill_customer_sk"),
                Column("cs_bill_cdemo_sk"),
                Column("cs_call_center_sk"),
                Column("cs_promo_sk"),
                Column("cs_quantity"),
                Column("cs_sales_price", "float"),
            ],
            rows["catalog_sales"],
            primary_key=None,
        ),
        Table(
            "web_sales",
            [
                Column("ws_sold_date_sk"),
                Column("ws_item_sk"),
                Column("ws_bill_customer_sk"),
                Column("ws_quantity"),
                Column("ws_sales_price", "float"),
            ],
            rows["web_sales"],
            primary_key=None,
        ),
    ]
    foreign_keys = [
        ForeignKey("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
        ForeignKey("customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ForeignKey("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ForeignKey("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("store_sales", "ss_item_sk", "item", "i_item_sk"),
        ForeignKey("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
        ForeignKey("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ForeignKey("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ForeignKey("store_sales", "ss_store_sk", "store", "s_store_sk"),
        ForeignKey("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
        ForeignKey("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
        ForeignKey("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
        ForeignKey("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ForeignKey("catalog_sales", "cs_call_center_sk", "call_center", "cc_call_center_sk"),
        ForeignKey("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk"),
        ForeignKey("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"),
        ForeignKey("web_sales", "ws_item_sk", "item", "i_item_sk"),
        ForeignKey("web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk"),
    ]
    return Schema(f"tpcds_sf{scale_factor:g}", tables, foreign_keys)


def tpcds_generator_spec(scale_factor: float = 0.01) -> Dict[str, Dict[str, ColumnGenerator]]:
    """Generator spec matching :func:`tpcds_schema`."""
    rows = tpcds_row_counts(scale_factor)
    return {
        "date_dim": {
            "d_date_sk": SequentialKey(),
            "d_year": UniformInt(1998, 2003),
            "d_moy": UniformInt(1, 12),
            "d_dom": UniformInt(1, 28),
        },
        "time_dim": {
            "t_time_sk": SequentialKey(),
            "t_hour": UniformInt(0, 23),
            "t_minute": UniformInt(0, 59),
        },
        "item": {
            "i_item_sk": SequentialKey(),
            "i_brand_id": UniformInt(1, 1000),
            "i_category_id": UniformInt(1, 10),
            "i_manufact_id": UniformInt(1, 1000),
            "i_current_price": UniformFloat(0.09, 99.99),
        },
        "store": {
            "s_store_sk": SequentialKey(),
            "s_number_employees": UniformInt(200, 300),
            "s_state": DictionaryString(9),
        },
        "customer": {
            "c_customer_sk": SequentialKey(),
            "c_current_addr_sk": ForeignKeyRef(rows["customer_address"], skew=0.3),
            "c_current_cdemo_sk": ForeignKeyRef(rows["customer_demographics"], skew=0.3),
            "c_current_hdemo_sk": ForeignKeyRef(rows["household_demographics"], skew=0.3),
            "c_birth_year": UniformInt(1924, 1992),
        },
        "customer_address": {
            "ca_address_sk": SequentialKey(),
            "ca_gmt_offset": UniformFloat(-10.0, -5.0),
            "ca_state": DictionaryString(51, skew=0.6),
        },
        "customer_demographics": {
            "cd_demo_sk": SequentialKey(),
            "cd_gender": DictionaryString(2),
            "cd_marital_status": DictionaryString(5),
            "cd_education_status": DictionaryString(7, skew=0.4),
        },
        "household_demographics": {
            "hd_demo_sk": SequentialKey(),
            "hd_dep_count": UniformInt(0, 9),
            "hd_buy_potential": DictionaryString(6, skew=0.4),
        },
        "promotion": {
            "p_promo_sk": SequentialKey(),
            "p_channel_email": DictionaryString(2),
            "p_channel_event": DictionaryString(2),
        },
        "call_center": {
            "cc_call_center_sk": SequentialKey(),
            "cc_employees": UniformInt(100, 1000),
        },
        "store_sales": {
            "ss_sold_date_sk": ForeignKeyRef(rows["date_dim"], skew=0.4),
            "ss_item_sk": ForeignKeyRef(rows["item"], skew=0.7),
            "ss_customer_sk": ForeignKeyRef(rows["customer"], skew=0.5),
            "ss_cdemo_sk": ForeignKeyRef(rows["customer_demographics"], skew=0.3),
            "ss_hdemo_sk": ForeignKeyRef(rows["household_demographics"], skew=0.3),
            "ss_store_sk": ForeignKeyRef(rows["store"], skew=0.4),
            "ss_promo_sk": ForeignKeyRef(rows["promotion"], skew=0.5),
            "ss_quantity": UniformInt(1, 100),
            "ss_sales_price": UniformFloat(0.0, 200.0),
        },
        "catalog_sales": {
            "cs_sold_date_sk": ForeignKeyRef(rows["date_dim"], skew=0.4),
            "cs_item_sk": ForeignKeyRef(rows["item"], skew=0.7),
            "cs_bill_customer_sk": ForeignKeyRef(rows["customer"], skew=0.5),
            "cs_bill_cdemo_sk": ForeignKeyRef(rows["customer_demographics"], skew=0.3),
            "cs_call_center_sk": ForeignKeyRef(rows["call_center"], skew=0.3),
            "cs_promo_sk": ForeignKeyRef(rows["promotion"], skew=0.5),
            "cs_quantity": UniformInt(1, 100),
            "cs_sales_price": UniformFloat(0.0, 300.0),
        },
        "web_sales": {
            "ws_sold_date_sk": ForeignKeyRef(rows["date_dim"], skew=0.4),
            "ws_item_sk": ForeignKeyRef(rows["item"], skew=0.7),
            "ws_bill_customer_sk": ForeignKeyRef(rows["customer"], skew=0.5),
            "ws_quantity": UniformInt(1, 100),
            "ws_sales_price": UniformFloat(0.0, 300.0),
        },
    }
