"""TPC-H style schema and data-generation spec.

Cardinalities follow the TPC-H scaling rules (lineitem ≈ 6M rows at scale
factor 1); the default scale factor here is laptop-sized.  Value
distributions include Zipf skew and correlation so that sampled statistics
mis-estimate — the error regime the paper targets.
"""

from __future__ import annotations

from typing import Dict

from ..datagen.generators import (
    ColumnGenerator,
    CorrelatedFloat,
    DateRange,
    DictionaryString,
    ForeignKeyRef,
    SequentialKey,
    UniformFloat,
    UniformInt,
)
from .schema import Column, ForeignKey, Schema, Table

#: TPC-H base cardinalities at scale factor 1.
_SF1_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Tables whose cardinality does not scale with the scale factor.
_FIXED_TABLES = {"region", "nation"}


def tpch_row_counts(scale_factor: float) -> Dict[str, int]:
    """Row counts for each TPC-H table at the given scale factor."""
    counts = {}
    for name, sf1 in _SF1_ROWS.items():
        if name in _FIXED_TABLES:
            counts[name] = sf1
        else:
            counts[name] = max(10, int(sf1 * scale_factor))
    return counts


def tpch_schema(scale_factor: float = 0.01) -> Schema:
    """Build the TPC-H schema at ``scale_factor``."""
    rows = tpch_row_counts(scale_factor)
    tables = [
        Table(
            "region",
            [Column("r_regionkey"), Column("r_name", "string", distinct=5)],
            rows["region"],
            primary_key="r_regionkey",
        ),
        Table(
            "nation",
            [
                Column("n_nationkey"),
                Column("n_regionkey"),
                Column("n_name", "string", distinct=25),
            ],
            rows["nation"],
            primary_key="n_nationkey",
        ),
        Table(
            "supplier",
            [
                Column("s_suppkey"),
                Column("s_nationkey"),
                Column("s_acctbal", "float"),
            ],
            rows["supplier"],
            primary_key="s_suppkey",
        ),
        Table(
            "customer",
            [
                Column("c_custkey"),
                Column("c_nationkey"),
                Column("c_acctbal", "float"),
                Column("c_mktsegment", "string", distinct=5),
            ],
            rows["customer"],
            primary_key="c_custkey",
        ),
        Table(
            "part",
            [
                Column("p_partkey"),
                Column("p_retailprice", "float"),
                Column("p_size", distinct=50),
                Column("p_brand", "string", distinct=25),
                Column("p_container", "string", distinct=40),
            ],
            rows["part"],
            primary_key="p_partkey",
        ),
        Table(
            "partsupp",
            [
                Column("ps_partkey"),
                Column("ps_suppkey"),
                Column("ps_supplycost", "float"),
            ],
            rows["partsupp"],
            primary_key="ps_partkey",  # simplified single-column PK
        ),
        Table(
            "orders",
            [
                Column("o_orderkey"),
                Column("o_custkey"),
                Column("o_orderdate", "date"),
                Column("o_totalprice", "float"),
                Column("o_orderpriority", "string", distinct=5),
            ],
            rows["orders"],
            primary_key="o_orderkey",
        ),
        Table(
            "lineitem",
            [
                Column("l_orderkey"),
                Column("l_partkey"),
                Column("l_suppkey"),
                Column("l_quantity", "float"),
                Column("l_extendedprice", "float"),
                Column("l_discount", "float"),
                Column("l_shipdate", "date"),
                Column("l_shipmode", "string", distinct=7),
            ],
            rows["lineitem"],
            primary_key=None,
        ),
    ]
    foreign_keys = [
        ForeignKey("nation", "n_regionkey", "region", "r_regionkey"),
        ForeignKey("supplier", "s_nationkey", "nation", "n_nationkey"),
        ForeignKey("customer", "c_nationkey", "nation", "n_nationkey"),
        ForeignKey("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
        ForeignKey("orders", "o_custkey", "customer", "c_custkey"),
        ForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ForeignKey("lineitem", "l_partkey", "part", "p_partkey"),
        ForeignKey("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ]
    return Schema(f"tpch_sf{scale_factor:g}", tables, foreign_keys)


def tpch_generator_spec(scale_factor: float = 0.01) -> Dict[str, Dict[str, ColumnGenerator]]:
    """Generator spec matching :func:`tpch_schema`.

    Skew choices: order dates cluster (Zipf over days), customers reference
    nations non-uniformly, lineitem part references are skewed, and
    ``l_extendedprice`` correlates with ``l_quantity`` (AVI breaker).
    """
    rows = tpch_row_counts(scale_factor)
    return {
        "region": {
            "r_regionkey": SequentialKey(),
            "r_name": DictionaryString(5),
        },
        "nation": {
            "n_nationkey": SequentialKey(),
            "n_regionkey": ForeignKeyRef(rows["region"]),
            "n_name": DictionaryString(25),
        },
        "supplier": {
            "s_suppkey": SequentialKey(),
            "s_nationkey": ForeignKeyRef(rows["nation"], skew=0.5),
            "s_acctbal": UniformFloat(-999.99, 9999.99),
        },
        "customer": {
            "c_custkey": SequentialKey(),
            "c_nationkey": ForeignKeyRef(rows["nation"], skew=0.5),
            "c_acctbal": UniformFloat(-999.99, 9999.99),
            "c_mktsegment": DictionaryString(5),
        },
        "part": {
            "p_partkey": SequentialKey(),
            "p_retailprice": UniformFloat(900.0, 2100.0),
            "p_size": UniformInt(1, 50),
            "p_brand": DictionaryString(25, skew=0.5),
            "p_container": DictionaryString(40, skew=0.5),
        },
        "partsupp": {
            "ps_partkey": SequentialKey(),
            "ps_suppkey": ForeignKeyRef(rows["supplier"], skew=0.3),
            "ps_supplycost": UniformFloat(1.0, 1000.0),
        },
        "orders": {
            "o_orderkey": SequentialKey(),
            "o_custkey": ForeignKeyRef(rows["customer"], skew=0.5),
            "o_orderdate": DateRange(0, 2400),
            "o_totalprice": UniformFloat(800.0, 500_000.0),
            "o_orderpriority": DictionaryString(5, skew=0.4),
        },
        "lineitem": {
            "l_orderkey": ForeignKeyRef(rows["orders"], skew=0.2),
            "l_partkey": ForeignKeyRef(rows["part"], skew=0.6),
            "l_suppkey": ForeignKeyRef(rows["supplier"], skew=0.4),
            "l_quantity": UniformFloat(1.0, 50.0),
            "l_extendedprice": CorrelatedFloat("l_quantity", 900.0, 105_000.0, 0.8),
            "l_discount": UniformFloat(0.0, 0.1),
            "l_shipdate": DateRange(0, 2500),
            "l_shipmode": DictionaryString(7, skew=0.5),
        },
    }
