"""BouquetServer: concurrent serving of cached compiled bouquets.

The paper's deployment story (§4.2) is "compile once, execute many" for
canned queries.  :class:`BouquetServer` makes that operational:

* every request is keyed by the content hash of (canonical query,
  statistics fingerprint, compile knobs) and answered from the artifact
  store when possible;
* concurrent misses on the *same* key are **single-flighted** — exactly
  one compile runs, the rest coalesce onto its future (counter
  ``serve.singleflight.coalesced``);
* misses compile on a bounded worker pool; a request whose compile
  exceeds ``compile_timeout`` **degrades** to the NAT path (one native
  optimizer call, one unbounded execution — an answer without the MSO
  guarantee) while the compile keeps running in the background so the
  artifact still lands in the cache for later requests;
* executions run with per-request budgets
  (:class:`repro.api.BudgetCappedService`) and report
  ``budget-exhausted`` instead of an MSO-guaranteed result when capped;
* :meth:`refresh_statistics` swaps the catalog's world view, patches
  every cached artifact the delta-refresh engine can carry over
  (:mod:`repro.drift`), and invalidates the rest.

The degradation ladder, top to bottom: memory hit → disk hit →
single-flight compile → NAT fallback → failure.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..api import (
    BouquetConfig,
    Catalog,
    CompiledBouquet,
    DEFAULT_CONFIG,
    _compile_pipeline,
    execute as api_execute,
)
from ..catalog.statistics import DatabaseStatistics
from ..core.runtime import BouquetRunResult
from ..exceptions import BouquetError, BudgetExceeded, ReproError
from ..obs.tracer import NULL_TRACER, Tracer
from ..query.query import Query
from ..query.sql import parse_query
from ..robustness.nat import native_run
from .cache import BouquetArtifactStore
from .fingerprint import ArtifactKey, artifact_key, statistics_fingerprint

__all__ = ["BouquetServer", "ServeResult"]


@dataclass
class ServeResult:
    """Outcome of one served request.

    ``status`` is one of:

    * ``"ok"`` — bouquet execution completed with the MSO guarantee;
    * ``"degraded"`` — answered via the native-optimizer fallback
      (compile failed or timed out); no MSO guarantee;
    * ``"budget-exhausted"`` — the per-request cost budget ran out
      mid-bouquet;
    * ``"failed"`` — no answer could be produced.

    ``cache`` records where the compiled artifact came from:
    ``"memory"`` / ``"disk"`` (store hits), ``"compiled"`` (this request
    ran the compile), ``"coalesced"`` (another in-flight request's
    compile was awaited), or ``"none"`` (never obtained).
    """

    status: str
    cache: str
    query_name: str
    key: Optional[ArtifactKey] = None
    result: Optional[BouquetRunResult] = None
    mso_bound: Optional[float] = None
    error: Optional[str] = None

    @property
    def rows(self) -> Optional[int]:
        return self.result.result_rows if self.result is not None else None

    @property
    def total_cost(self) -> Optional[float]:
        return self.result.total_cost if self.result is not None else None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Inflight:
    """One in-progress compile: its future plus the owning request."""

    future: Future
    waiters: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class BouquetServer:
    """Serves many concurrent query requests from a bouquet artifact cache.

    Thread-safe: ``serve``/``compile`` may be called from any number of
    threads.  Compiles run on an internal bounded pool; executions run
    on the caller's thread (budget-capped per request).
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        config: BouquetConfig = DEFAULT_CONFIG,
        store: Optional[BouquetArtifactStore] = None,
        max_workers: int = 4,
        compile_timeout: Optional[float] = None,
        compile_workers: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ):
        if max_workers < 1:
            raise BouquetError("server needs at least one compile worker")
        self.catalog = catalog
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.store = store if store is not None else BouquetArtifactStore()
        self.compile_timeout = compile_timeout
        self.compile_workers = compile_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="bouquet-compile"
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "BouquetServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Compile path (cache + single-flight)
    # ------------------------------------------------------------------

    def _parse(self, query: Union[str, Query]) -> Tuple[Query, Optional[str]]:
        if isinstance(query, str):
            return parse_query(query, self.catalog.schema), query
        return query, None

    def key_for(self, query: Union[str, Query]) -> ArtifactKey:
        parsed, _ = self._parse(query)
        return artifact_key(parsed, self.catalog.statistics, self.config)

    def _compile_and_store(
        self, key: ArtifactKey, query: Query, sql: Optional[str]
    ) -> CompiledBouquet:
        """Pool task: run the compile pipeline and publish the artifact."""
        compiled = _compile_pipeline(
            query,
            self.catalog,
            self.config,
            None,
            None,
            self.tracer,
            self.compile_workers,
            None,
            sql,
            span_name="serve.compile",
        )
        self.store.put(key, compiled, tracer=self.tracer)
        return compiled

    def compile(
        self, query: Union[str, Query], timeout: Optional[float] = None
    ) -> Tuple[CompiledBouquet, str]:
        """Obtain the compiled bouquet for ``query``; returns
        ``(compiled, source)`` where source is ``memory``/``disk``/
        ``compiled``/``coalesced``.

        Raises :class:`FutureTimeoutError` when the (possibly coalesced)
        compile does not finish within ``timeout`` (default: the
        server's ``compile_timeout``); the compile itself keeps running
        and will still populate the store.
        """
        parsed, sql = self._parse(query)
        key = artifact_key(parsed, self.catalog.statistics, self.config)
        hit, tier = self.store.lookup(key, self.catalog, query=parsed, tracer=self.tracer)
        if hit is not None:
            return hit, tier
        digest = key.digest
        with self._lock:
            if self._closed:
                raise BouquetError("server is closed")
            future = self._inflight.get(digest)
            if future is None:
                # A compile that finished between our store miss above and
                # this lock acquisition has already published its artifact
                # (_retire runs strictly after the store put), so one more
                # lookup here closes the race that would duplicate the
                # compile.  Fast batch compiles made that window easy to
                # hit: a whole compile can complete while a peer thread is
                # still between its miss and the lock.
                # Telemetry-silent: this is a race-closing recheck, not a
                # second user-visible cache lookup — the pre-lock miss
                # above already accounted this request.
                hit, tier = self.store.lookup(
                    key, self.catalog, query=parsed, tracer=NULL_TRACER
                )
                if hit is not None:
                    return hit, tier
                owner = True
                future = self._pool.submit(self._compile_and_store, key, parsed, sql)
                self._inflight[digest] = future
            else:
                owner = False
                if self.tracer.enabled:
                    self.tracer.count("serve.singleflight.coalesced")
        if owner:
            # Registered outside the lock: a compile that finishes (or
            # fails) instantly runs the callback inline on this thread,
            # and _retire needs the lock we would still be holding.
            future.add_done_callback(lambda _f, d=digest: self._retire(d))
        timeout = timeout if timeout is not None else self.compile_timeout
        compiled = future.result(timeout=timeout)
        return compiled, ("compiled" if owner else "coalesced")

    def warm_sweep(
        self,
        query: Union[str, Query],
        crossing: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Compile ``query`` (or reuse the cached artifact) and pre-sweep
        its optimized cost field with the vectorized engine
        (:mod:`repro.sweep`).

        The field — and the engine's contour tables and trace trie — are
        memoized on the compiled bouquet, so later metric or diagnostics
        requests against the same artifact are answered from cache.
        Returns the grid-shaped cost field.
        """
        compiled, source = self.compile(query, timeout=timeout)
        from ..sweep import SweepEngine

        engine = SweepEngine(
            compiled.bouquet, crossing=crossing, tracer=self.tracer
        )
        with self.tracer.span(
            "serve.warm_sweep", source=source, crossing=engine.crossing.name
        ):
            field = engine.cost_field()
        if self.tracer.enabled:
            self.tracer.count("serve.warm_sweeps")
        return field

    def warm_compile(
        self,
        queries,
        timeout: Optional[float] = None,
    ):
        """Pre-populate the artifact cache for a workload.

        Each query is compiled through the ordinary cache/single-flight
        path — and therefore through the configured compile engine, which
        by default is the batch slab kernel (:mod:`repro.batchopt`), so
        warming a canned workload costs one DPsize enumeration per
        contour-band slab instead of one scalar optimize per ESS
        location.  Returns ``[(compiled, source), ...]`` in input order.
        """
        results = []
        with self.tracer.span("serve.warm_compile"):
            for query in queries:
                results.append(self.compile(query, timeout=timeout))
                if self.tracer.enabled:
                    self.tracer.count("serve.warm_compiles")
        return results

    def _retire(self, digest: str) -> None:
        with self._lock:
            self._inflight.pop(digest, None)

    # ------------------------------------------------------------------
    # Serve path (compile → execute, with degradation)
    # ------------------------------------------------------------------

    def serve(
        self,
        query: Union[str, Query],
        *,
        budget: Optional[float] = None,
        mode: Optional[str] = None,
        crossing: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> ServeResult:
        """Answer one query end to end.

        Requires the catalog to carry a database (serving executes for
        real).  Never raises for per-request problems — compile
        failures, deadlines, and budget exhaustion are reported in the
        :class:`ServeResult` status, and the NAT fallback is attempted
        before giving up.

        ``crossing`` overrides the server config's contour-crossing
        strategy for this one request (``"sequential"``,
        ``"concurrent"``, or ``"timesliced"`` — see :mod:`repro.sched`);
        it is a runtime knob, so it never affects the artifact cache key.
        """
        if self.catalog.database is None:
            raise BouquetError("serving requires a catalog with a database")
        parsed, _sql = self._parse(query)
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("serve.requests")
        key = artifact_key(parsed, self.catalog.statistics, self.config)
        compiled: Optional[CompiledBouquet] = None
        source = "none"
        error: Optional[str] = None
        try:
            compiled, source = self.compile(parsed, timeout=timeout)
        except FutureTimeoutError:
            error = "compile deadline exceeded"
            if tracer.enabled:
                tracer.count("serve.compile_timeouts")
        except ReproError as exc:
            error = str(exc)
            if tracer.enabled:
                tracer.count("serve.compile_failures")

        if compiled is not None:
            try:
                result = api_execute(
                    compiled,
                    self.catalog.database,
                    budget=budget,
                    mode=mode,
                    crossing=crossing,
                    tracer=tracer,
                    span_name="serve.execute",
                )
                if tracer.enabled:
                    tracer.count("serve.served_ok")
                return ServeResult(
                    status="ok",
                    cache=source,
                    query_name=parsed.name,
                    key=key,
                    result=result,
                    mso_bound=compiled.mso_bound,
                )
            except BudgetExceeded as exc:
                if tracer.enabled:
                    tracer.count("serve.budget_exhausted")
                return ServeResult(
                    status="budget-exhausted",
                    cache=source,
                    query_name=parsed.name,
                    key=key,
                    mso_bound=compiled.mso_bound,
                    error=str(exc),
                )
            except ReproError as exc:
                # Bouquet execution failed outright; fall through to NAT.
                error = str(exc)
                if tracer.enabled:
                    tracer.count("serve.execute_failures")

        # Degradation: no compiled bouquet in time — answer natively.
        try:
            optimizer = self.catalog.optimizer(self.config, tracer=tracer)
            result = native_run(optimizer, parsed, self.catalog.database, tracer)
            if tracer.enabled:
                tracer.count("serve.degraded")
            return ServeResult(
                status="degraded",
                cache=source,
                query_name=parsed.name,
                key=key,
                result=result,
                error=error,
            )
        except ReproError as exc:
            if tracer.enabled:
                tracer.count("serve.failed")
            return ServeResult(
                status="failed",
                cache=source,
                query_name=parsed.name,
                key=key,
                error=f"{error}; native fallback failed: {exc}" if error else str(exc),
            )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def refresh_statistics(
        self, statistics: Optional[DatabaseStatistics], *, patch: bool = True
    ) -> int:
        """Swap in a new statistics world view.

        With ``patch=True`` (the default) every cached artifact keyed to
        the old fingerprint is first offered to the delta-refresh engine
        (:func:`repro.drift.refresh.patch_compiled`): artifacts whose
        compile-visible inputs are unchanged — or changed only in a few
        base selectivities — are re-keyed under the new fingerprint after
        re-planning just the drift-suspect ESS locations (counter
        ``serve.cache.patched``).  Whatever cannot be patched (the drift
        moved the error dimensions, the grid, or the patch failed) is
        swept by the invalidation fallback, exactly as before.  Returns
        the number of entries dropped.
        """
        old_statistics = self.catalog.statistics
        self.catalog.statistics = statistics
        fingerprint = statistics_fingerprint(statistics)
        if patch and fingerprint != statistics_fingerprint(old_statistics):
            self._patch_artifacts(fingerprint, old_statistics)
        removed = self.store.invalidate_statistics(fingerprint, tracer=self.tracer)
        if self.tracer.enabled:
            self.tracer.count("serve.statistics_refreshes")
        return removed

    def _patch_artifacts(
        self, fingerprint: str, old_statistics: Optional[DatabaseStatistics]
    ) -> int:
        """Re-key every patchable stale artifact under ``fingerprint``."""
        from ..drift.refresh import patch_compiled

        patched = 0
        with self.tracer.span("serve.patch_artifacts"):
            for _old_key, compiled in self.store.stale_entries(
                fingerprint, self.catalog
            ):
                try:
                    outcome = patch_compiled(
                        compiled,
                        self.catalog,
                        old_statistics=old_statistics,
                        tracer=self.tracer,
                    )
                except ReproError:
                    # Not patchable — the invalidation sweep drops it.
                    continue
                new_key = artifact_key(
                    outcome.compiled.query, self.catalog.statistics, compiled.config
                )
                self.store.put(new_key, outcome.compiled, tracer=self.tracer)
                patched += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.cache.patched")
        return patched

    def stats(self) -> Dict[str, Dict]:
        """Point-in-time serving statistics (counters + store occupancy)."""
        snapshot = self.tracer.snapshot() if self.tracer.enabled else {"counters": {}}
        with self._lock:
            inflight = len(self._inflight)
        return {
            "counters": {
                name: value
                for name, value in sorted(snapshot["counters"].items())
                if name.startswith(("serve.", "optimizer."))
            },
            "store": self.store.snapshot(),
            "inflight": inflight,
        }
