"""BouquetServer: concurrent serving of cached compiled bouquets.

The paper's deployment story (§4.2) is "compile once, execute many" for
canned queries.  :class:`BouquetServer` makes that operational:

* every request is keyed by the content hash of (canonical query,
  statistics fingerprint, compile knobs) and answered from the artifact
  store when possible;
* an exact-key miss then consults the **template tier**
  (:mod:`repro.template`): when another instance of the same query
  *template* — same shape, different constants — was compiled before,
  the artifact is **rebound** from it instead of recompiled (source
  ``"template"``, counters ``serve.template.*``), falling back to the
  full compile on any structural mismatch;
* concurrent misses on the *same* key are **single-flighted** — exactly
  one compile runs, the rest coalesce onto its future (counter
  ``serve.singleflight.coalesced``); concurrent misses on different
  instances of the *same template* coalesce too — one full compile
  runs, the rest wait and rebind from its artifact (counter
  ``serve.template.coalesced``);
* misses compile on a bounded worker pool; a request whose compile
  exceeds its deadline **degrades** to the NAT path (one native
  optimizer call, one unbounded execution — an answer without the MSO
  guarantee) while the compile keeps running in the background so the
  artifact still lands in the cache for later requests;
* executions run with per-request budgets
  (:class:`repro.api.BudgetCappedService`) and report
  ``budget-exhausted`` instead of an MSO-guaranteed result when capped;
* :meth:`refresh_statistics` swaps the catalog's world view, patches
  every cached artifact the delta-refresh engine can carry over
  (:mod:`repro.drift`), and invalidates the rest.

The canonical calling convention is the typed envelope pair from
:mod:`repro.serve.envelope`::

    response = server.serve(ServeRequest(query=sql, budget=1e9))
    response.status, response.error_code, response.rows

``serve(sql)`` remains as sugar, and the old keyword sprawl
(``serve(sql, budget=..., mode=..., crossing=..., timeout=...)``) keeps
working behind a :class:`DeprecationWarning` adapter.  Admission
control, tenant quotas, and load shedding live one layer up, in
:class:`repro.serve.front.ServeGateway`.

The degradation ladder, top to bottom: memory hit → disk hit →
template rebind → single-flight compile → NAT fallback → failure.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..api import (
    BouquetConfig,
    Catalog,
    CompiledBouquet,
    DEFAULT_CONFIG,
    _compile_pipeline,
    execute as api_execute,
)
from ..catalog.statistics import DatabaseStatistics
from ..exceptions import BouquetError, BudgetExceeded, ReproError, TemplateError
from ..obs.tracer import NULL_TRACER, Tracer
from ..query.query import Query
from ..query.sql import parse_query
from ..robustness.nat import native_run
from ..template import TemplateSignature, TemplateStore, rebind_compiled, template_signature
from .cache import BouquetArtifactStore
from .envelope import ServeRequest, ServeResponse
from .fingerprint import ArtifactKey, artifact_key, statistics_fingerprint

__all__ = ["BouquetServer", "ServeResult"]

#: Deprecated alias — the response half of the envelope pair replaced
#: the old ``ServeResult`` dataclass field-for-field (plus ``status``
#: values ``"shed"``/``"failed"`` now being distinct, ``error_code``,
#: tenant identity, and timings).
ServeResult = ServeResponse


@dataclass
class _Inflight:
    """One in-progress compile: its future plus the owning request."""

    future: Future
    waiters: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class BouquetServer:
    """Serves many concurrent query requests from a bouquet artifact cache.

    Thread-safe: ``serve``/``compile`` may be called from any number of
    threads.  Compiles run on an internal bounded pool; executions run
    on the caller's thread (budget-capped per request).
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        config: BouquetConfig = DEFAULT_CONFIG,
        store: Optional[BouquetArtifactStore] = None,
        templates: Optional[TemplateStore] = None,
        max_workers: int = 4,
        compile_timeout: Optional[float] = None,
        compile_workers: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ):
        if max_workers < 1:
            raise BouquetError("server needs at least one compile worker")
        self.catalog = catalog
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.store = store if store is not None else BouquetArtifactStore()
        # The template tier (None only when the config turns it off and
        # no explicit store is handed in).
        if templates is not None:
            self.templates = templates
        else:
            self.templates = TemplateStore() if config.template else None
        self.compile_timeout = compile_timeout
        self.compile_workers = compile_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="bouquet-compile"
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._template_inflight: Dict[str, Future] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "BouquetServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Compile path (cache + single-flight)
    # ------------------------------------------------------------------

    def _parse(self, query: Union[str, Query]) -> Tuple[Query, Optional[str]]:
        if isinstance(query, str):
            return parse_query(query, self.catalog.schema), query
        return query, None

    def key_for(self, query: Union[str, Query]) -> ArtifactKey:
        parsed, _ = self._parse(query)
        return artifact_key(parsed, self.catalog.statistics, self.config)

    def _config_for(self, engine: Optional[str]) -> BouquetConfig:
        """The server config, with a per-request compile-engine override.

        The engine is cache-neutral (both engines produce byte-identical
        artifacts), so overriding it never changes the artifact key.
        """
        if engine is None or engine == self.config.compile_engine:
            return self.config
        return self.config.with_(compile_engine=engine)

    def _use_templates(self) -> bool:
        return self.templates is not None and self.config.template

    def _compile_and_store(
        self,
        key: ArtifactKey,
        query: Query,
        sql: Optional[str],
        config: Optional[BouquetConfig] = None,
    ) -> CompiledBouquet:
        """Pool task: run the compile pipeline and publish the artifact
        (to the exact store, and as the template's representative)."""
        compiled = _compile_pipeline(
            query,
            self.catalog,
            config if config is not None else self.config,
            None,
            None,
            self.tracer,
            self.compile_workers,
            None,
            sql,
            span_name="serve.compile",
        )
        self.store.put(key, compiled, tracer=self.tracer)
        if self._use_templates():
            sig = template_signature(
                query, self.catalog.schema, self.catalog.statistics
            )
            self.templates.put(
                sig, compiled, key.statistics_digest, key.config_digest
            )
            if self.tracer.enabled:
                self.tracer.count("serve.template.stores")
        return compiled

    def _rebind_from_template(
        self,
        key: ArtifactKey,
        query: Query,
        sql: Optional[str],
        sig: TemplateSignature,
    ) -> Optional[CompiledBouquet]:
        """Try to answer an exact-key miss from the template tier.

        On a template hit the cached representative is rebound onto this
        instance and the result published under the exact key (so the
        next identical request is a plain store hit).  Returns ``None``
        on a template miss or a rebind fallback — the caller proceeds to
        the full compile.
        """
        tracer = self.tracer
        entry = self.templates.lookup(
            sig, key.statistics_digest, key.config_digest
        )
        if entry is None:
            if tracer.enabled:
                tracer.count("serve.template.misses")
            return None
        if tracer.enabled:
            tracer.count("serve.template.hits")
        try:
            with tracer.span(
                "serve.template.rebind", query=query.name, template=sig.digest
            ):
                outcome = rebind_compiled(
                    entry.compiled,
                    entry.signature,
                    query,
                    self.catalog,
                    instance_sig=sig,
                    sql=sql,
                    tracer=tracer,
                )
        except TemplateError as exc:
            if tracer.enabled:
                tracer.count("serve.template.fallbacks")
                tracer.event(
                    "serve.template.fallback",
                    query=query.name,
                    reason=exc.reason,
                )
            return None
        if tracer.enabled:
            tracer.count("serve.template.rebinds")
        self.store.put(key, outcome.compiled, tracer=tracer)
        return outcome.compiled

    def compile(
        self,
        query: Union[str, Query],
        timeout: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> Tuple[CompiledBouquet, str]:
        """Obtain the compiled bouquet for ``query``; returns
        ``(compiled, source)`` where source is ``memory``/``disk``/
        ``template``/``compiled``/``coalesced``.

        Raises :class:`FutureTimeoutError` when the (possibly coalesced)
        compile does not finish within ``timeout`` (default: the
        server's ``compile_timeout``); the compile itself keeps running
        and will still populate the store.  ``engine`` overrides the
        config's compile engine for this request (cache-neutral).
        """
        parsed, sql = self._parse(query)
        key = artifact_key(parsed, self.catalog.statistics, self.config)
        hit, tier = self.store.lookup(key, self.catalog, query=parsed, tracer=self.tracer)
        if hit is not None:
            return hit, tier
        sig: Optional[TemplateSignature] = None
        if self._use_templates():
            sig = template_signature(
                parsed, self.catalog.schema, self.catalog.statistics
            )
            compiled = self._rebind_from_template(key, parsed, sql, sig)
            if compiled is not None:
                return compiled, "template"
        timeout = timeout if timeout is not None else self.compile_timeout
        waited_template = False
        while True:
            template_future: Optional[Future] = None
            with self._lock:
                if self._closed:
                    raise BouquetError("server is closed")
                future = self._inflight.get(key.digest)
                owner = False
                template_owner = False
                if future is None:
                    # A compile that finished between our store miss above
                    # and this lock acquisition has already published its
                    # artifact (_retire runs strictly after the store put),
                    # so one more lookup here closes the race that would
                    # duplicate the compile.  Fast batch compiles made that
                    # window easy to hit: a whole compile can complete while
                    # a peer thread is still between its miss and the lock.
                    # Telemetry-silent: this is a race-closing recheck, not
                    # a second user-visible cache lookup — the pre-lock miss
                    # above already accounted this request.
                    hit, tier = self.store.lookup(
                        key, self.catalog, query=parsed, tracer=NULL_TRACER
                    )
                    if hit is not None:
                        return hit, tier
                    if sig is not None and not waited_template:
                        # Another instance of this template is compiling:
                        # wait for its artifact and rebind from it instead
                        # of starting a second full compile.
                        template_future = self._template_inflight.get(sig.digest)
                    if template_future is None:
                        owner = True
                        future = self._pool.submit(
                            self._compile_and_store, key, parsed, sql,
                            self._config_for(engine),
                        )
                        self._inflight[key.digest] = future
                        if sig is not None and sig.digest not in self._template_inflight:
                            self._template_inflight[sig.digest] = future
                            template_owner = True
                else:
                    if self.tracer.enabled:
                        self.tracer.count("serve.singleflight.coalesced")
            if template_future is not None:
                if self.tracer.enabled:
                    self.tracer.count("serve.template.coalesced")
                # Wait out the template owner's compile (sharing the
                # request deadline), then retry: the exact store may now
                # hold our key (the owner *was* our query raced through a
                # different thread), or the template tier can rebind.  A
                # failed or fallback-worthy wait falls through to the
                # ordinary single-flight full compile.
                waited_template = True
                try:
                    template_future.result(timeout=timeout)
                except FutureTimeoutError:
                    raise
                except Exception:
                    continue
                hit, tier = self.store.lookup(
                    key, self.catalog, query=parsed, tracer=NULL_TRACER
                )
                if hit is not None:
                    return hit, tier
                compiled = self._rebind_from_template(key, parsed, sql, sig)
                if compiled is not None:
                    return compiled, "template"
                continue
            break
        if owner:
            # Registered outside the lock: a compile that finishes (or
            # fails) instantly runs the callback inline on this thread,
            # and _retire needs the lock we would still be holding.
            tdigest = sig.digest if template_owner else None
            future.add_done_callback(
                lambda _f, d=key.digest, t=tdigest: self._retire(d, t)
            )
        compiled = future.result(timeout=timeout)
        return compiled, ("compiled" if owner else "coalesced")

    def warm_sweep(
        self,
        query: Union[str, Query],
        crossing: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Compile ``query`` (or reuse the cached artifact) and pre-sweep
        its optimized cost field with the vectorized engine
        (:mod:`repro.sweep`).

        The field — and the engine's contour tables and trace trie — are
        memoized on the compiled bouquet, so later metric or diagnostics
        requests against the same artifact are answered from cache.
        Returns the grid-shaped cost field.
        """
        compiled, source = self.compile(query, timeout=timeout)
        from ..sweep import SweepEngine

        engine = SweepEngine(
            compiled.bouquet, crossing=crossing, tracer=self.tracer
        )
        with self.tracer.span(
            "serve.warm_sweep", source=source, crossing=engine.crossing.name
        ):
            field = engine.cost_field()
        if self.tracer.enabled:
            self.tracer.count("serve.warm_sweeps")
        return field

    def warm_compile(
        self,
        queries,
        timeout: Optional[float] = None,
    ):
        """Pre-populate the artifact cache for a workload.

        Each query is compiled through the ordinary cache/single-flight
        path — and therefore through the configured compile engine, which
        by default is the batch slab kernel (:mod:`repro.batchopt`), so
        warming a canned workload costs one DPsize enumeration per
        contour-band slab instead of one scalar optimize per ESS
        location.  Returns ``[(compiled, source), ...]`` in input order.
        """
        results = []
        with self.tracer.span("serve.warm_compile"):
            for query in queries:
                results.append(self.compile(query, timeout=timeout))
                if self.tracer.enabled:
                    self.tracer.count("serve.warm_compiles")
        return results

    def _retire(self, digest: str, template_digest: Optional[str] = None) -> None:
        with self._lock:
            self._inflight.pop(digest, None)
            if template_digest is not None:
                self._template_inflight.pop(template_digest, None)

    # ------------------------------------------------------------------
    # Serve path (compile → execute, with degradation)
    # ------------------------------------------------------------------

    def serve(
        self,
        request: Union[ServeRequest, str, Query],
        *,
        budget: Optional[float] = None,
        mode: Optional[str] = None,
        crossing: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> ServeResponse:
        """Answer one request end to end.

        The canonical calling convention is a
        :class:`~repro.serve.envelope.ServeRequest`; bare SQL text (or a
        parsed query) is accepted as sugar for ``ServeRequest(query=...)``.

        .. deprecated::
            The keyword arguments (``budget``/``mode``/``crossing``/
            ``timeout``) are the old signature; they are folded into an
            envelope (``timeout`` becomes ``deadline``) behind a
            :class:`DeprecationWarning`.
        """
        if isinstance(request, ServeRequest):
            if any(v is not None for v in (budget, mode, crossing, timeout)):
                raise BouquetError(
                    "serve: pass knobs inside the ServeRequest, not as "
                    "keyword arguments"
                )
            return self.serve_request(request)
        if any(v is not None for v in (budget, mode, crossing, timeout)):
            warnings.warn(
                "BouquetServer.serve(query, budget=..., mode=..., "
                "crossing=..., timeout=...) is deprecated; pass a "
                "ServeRequest envelope instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.serve_request(
            ServeRequest(
                query=request,
                budget=budget,
                mode=mode,
                crossing=crossing,
                deadline=timeout,
            )
        )

    def serve_request(self, request: ServeRequest) -> ServeResponse:
        """Answer one enveloped request end to end.

        Requires the catalog to carry a database (serving executes for
        real).  Never raises for per-request problems — parse failures,
        compile deadlines, budget exhaustion, and execution errors are
        reported as typed statuses with stable ``error_code``\\ s, and
        the NAT fallback is attempted before giving up.
        """
        if self.catalog.database is None:
            raise BouquetError("serving requires a catalog with a database")
        request.validate()
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("serve.requests")
        started = time.perf_counter()

        def _respond(response: ServeResponse) -> ServeResponse:
            response.tenant = request.tenant
            response.request_id = request.request_id
            response.service_seconds = time.perf_counter() - started
            return response

        try:
            parsed, _sql = self._parse(request.query)
        except ReproError as exc:
            if tracer.enabled:
                tracer.count("serve.parse_failures")
            return _respond(
                ServeResponse(
                    status="failed",
                    query_name=request.sql or "",
                    error=str(exc),
                    error_code="parse-error",
                )
            )
        key = artifact_key(parsed, self.catalog.statistics, self.config)
        compiled: Optional[CompiledBouquet] = None
        source = "none"
        error: Optional[str] = None
        error_code: Optional[str] = None
        if request.cached_only:
            # The overload ladder: answer from cache or fall straight
            # through to NAT — never start (or wait on) a compile.
            hit, tier = self.store.lookup(
                key, self.catalog, query=parsed, tracer=tracer
            )
            if hit is not None:
                compiled, source = hit, tier
            else:
                error = "no cached artifact (cached-only request)"
                error_code = "cached-only-miss"
                if tracer.enabled:
                    tracer.count("serve.cached_only_misses")
        else:
            try:
                compiled, source = self.compile(
                    parsed,
                    timeout=request.deadline,
                    engine=request.compile_engine,
                )
            except FutureTimeoutError:
                error = "compile deadline exceeded"
                error_code = "compile-timeout"
                if tracer.enabled:
                    tracer.count("serve.compile_timeouts")
            except ReproError as exc:
                error = str(exc)
                error_code = "server-closed" if self._closed else "compile-failed"
                if tracer.enabled:
                    tracer.count("serve.compile_failures")

        if compiled is not None:
            try:
                result = api_execute(
                    compiled,
                    self.catalog.database,
                    budget=request.budget,
                    mode=request.mode,
                    crossing=request.crossing,
                    tracer=tracer,
                    span_name="serve.execute",
                )
                if tracer.enabled:
                    tracer.count("serve.served_ok")
                return _respond(
                    ServeResponse(
                        status="ok",
                        cache=source,
                        query_name=parsed.name,
                        key=key,
                        result=result,
                        mso_bound=compiled.mso_bound,
                    )
                )
            except BudgetExceeded as exc:
                if tracer.enabled:
                    tracer.count("serve.budget_exhausted")
                return _respond(
                    ServeResponse(
                        status="budget-exhausted",
                        cache=source,
                        query_name=parsed.name,
                        key=key,
                        mso_bound=compiled.mso_bound,
                        error=str(exc),
                        error_code="budget-exhausted",
                    )
                )
            except ReproError as exc:
                # Bouquet execution failed outright; fall through to NAT.
                error = str(exc)
                error_code = "execute-failed"
                if tracer.enabled:
                    tracer.count("serve.execute_failures")

        # Degradation: no compiled bouquet in time — answer natively.
        try:
            optimizer = self.catalog.optimizer(self.config, tracer=tracer)
            result = native_run(optimizer, parsed, self.catalog.database, tracer)
            if tracer.enabled:
                tracer.count("serve.degraded")
            return _respond(
                ServeResponse(
                    status="degraded",
                    cache=source,
                    query_name=parsed.name,
                    key=key,
                    result=result,
                    error=error,
                    error_code=error_code if error_code else "compile-failed",
                )
            )
        except ReproError as exc:
            if tracer.enabled:
                tracer.count("serve.failed")
            return _respond(
                ServeResponse(
                    status="failed",
                    cache=source,
                    query_name=parsed.name,
                    key=key,
                    error=f"{error}; native fallback failed: {exc}"
                    if error
                    else str(exc),
                    error_code="native-failed",
                )
            )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def refresh_statistics(
        self,
        statistics: Optional[DatabaseStatistics],
        *,
        patch: Optional[bool] = None,
    ) -> int:
        """Swap in a new statistics world view.

        With patching enabled (default: the config's ``patch`` knob)
        every cached artifact keyed to the old fingerprint is first
        offered to the delta-refresh engine
        (:func:`repro.drift.refresh.patch_compiled`): artifacts whose
        compile-visible inputs are unchanged — or changed only in a few
        base selectivities — are re-keyed under the new fingerprint after
        re-planning just the drift-suspect ESS locations (counter
        ``serve.cache.patched``).  Whatever cannot be patched (the drift
        moved the error dimensions, the grid, or the patch failed) is
        swept by the invalidation fallback, exactly as before.  Returns
        the number of entries dropped.
        """
        if patch is None:
            patch = self.config.patch
        old_statistics = self.catalog.statistics
        self.catalog.statistics = statistics
        fingerprint = statistics_fingerprint(statistics)
        if patch and fingerprint != statistics_fingerprint(old_statistics):
            self._patch_artifacts(fingerprint, old_statistics)
        removed = self.store.invalidate_statistics(fingerprint, tracer=self.tracer)
        if self.templates is not None:
            # The template tier keys on the statistics digest too, so
            # entries built under the old world view are unreachable —
            # sweep them (the patch pass above already re-registered the
            # artifacts it managed to carry over under the new digest).
            dropped = self.templates.invalidate_statistics(fingerprint)
            if dropped and self.tracer.enabled:
                self.tracer.count("serve.template.invalidated", dropped)
        if self.tracer.enabled:
            self.tracer.count("serve.statistics_refreshes")
        return removed

    def _patch_artifacts(
        self, fingerprint: str, old_statistics: Optional[DatabaseStatistics]
    ) -> int:
        """Re-key every patchable stale artifact under ``fingerprint``."""
        from ..drift.refresh import patch_compiled

        patched = 0
        with self.tracer.span("serve.patch_artifacts"):
            for _old_key, compiled in self.store.stale_entries(
                fingerprint, self.catalog
            ):
                try:
                    outcome = patch_compiled(
                        compiled,
                        self.catalog,
                        old_statistics=old_statistics,
                        tracer=self.tracer,
                    )
                except ReproError:
                    # Not patchable — the invalidation sweep drops it.
                    continue
                new_key = artifact_key(
                    outcome.compiled.query, self.catalog.statistics, compiled.config
                )
                self.store.put(new_key, outcome.compiled, tracer=self.tracer)
                if self._use_templates():
                    # A patched artifact is a valid representative of its
                    # template under the *new* statistics — re-register it
                    # so the template tier survives the refresh warm.
                    sig = template_signature(
                        outcome.compiled.query,
                        self.catalog.schema,
                        self.catalog.statistics,
                    )
                    self.templates.put(
                        sig,
                        outcome.compiled,
                        new_key.statistics_digest,
                        new_key.config_digest,
                    )
                patched += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.cache.patched")
        return patched

    def stats(self) -> Dict[str, Dict]:
        """Point-in-time serving statistics (counters + store occupancy)."""
        snapshot = self.tracer.snapshot() if self.tracer.enabled else {"counters": {}}
        with self._lock:
            inflight = len(self._inflight)
        stats = {
            "counters": {
                name: value
                for name, value in sorted(snapshot["counters"].items())
                if name.startswith(("serve.", "optimizer."))
            },
            "store": self.store.snapshot(),
            "inflight": inflight,
        }
        if self.templates is not None:
            stats["templates"] = self.templates.snapshot()
        return stats
