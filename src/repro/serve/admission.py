"""Per-tenant admission control: token-bucket quotas, bounded queues,
and the overload ladder.

The front-end admits, degrades, or sheds every request *before* any
bouquet work happens, so overload can never silently queue work past
what the pool can absorb.  Per tenant:

* a **token bucket** (``rate`` tokens/second, ``burst`` capacity)
  bounds sustained and instantaneous request rates — an empty bucket
  sheds with ``shed-quota``;
* a **bounded in-flight queue** (``max_queue`` slots, held from
  admission until the response is stamped) bounds memory and latency —
  a full queue sheds with ``shed-queue-full``;
* the **degrade ladder**: once a tenant's queue passes ``degrade_at``
  occupancy, requests are still admitted but marked *degraded* — the
  gateway then strips them down the server's NAT ladder (cached-only,
  capped budget) so budgets degrade before anything is rejected.
  Because ``burst < max_queue`` in any sane quota, a flood trips the
  quota shed before the queue can overflow.

Buckets are keyed by tenant and isolated: one tenant's flood drains its
own bucket and queue only.  Clocks come from a
:class:`~repro.runtime.base.Runtime`, so the same controller runs under
real or virtual time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..exceptions import BouquetError
from ..obs.tracer import NULL_TRACER, Tracer
from ..runtime import Runtime, SyncRuntime

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantQuota",
    "TokenBucket",
]


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission budget."""

    rate: float = 200.0  # sustained requests/second (bucket refill)
    burst: float = 50.0  # bucket capacity (instantaneous headroom)
    max_queue: int = 64  # in-flight slots (admission -> response)

    def __post_init__(self):
        if self.rate <= 0:
            raise BouquetError("quota: rate must be positive")
        if self.burst < 1:
            raise BouquetError("quota: burst must be at least 1")
        if self.max_queue < 1:
            raise BouquetError("quota: max_queue must be at least 1")


class TokenBucket:
    """A thread-safe token bucket on an injected clock."""

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = float(now)
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        with self._lock:
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def level(self, now: float) -> float:
        with self._lock:
            self._refill(now)
            return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    tenant: str
    degraded: bool = False  # admitted, but down the overload ladder
    error_code: Optional[str] = None  # shed-quota / shed-queue-full
    reason: Optional[str] = None
    queue_depth: int = 0


class _TenantState:
    def __init__(self, quota: TenantQuota, now: float):
        self.quota = quota
        self.bucket = TokenBucket(quota.rate, quota.burst, now)
        self.depth = 0


class AdmissionController:
    """Thread-safe per-tenant admission: quota → queue → degrade ladder."""

    def __init__(
        self,
        runtime: Optional[Runtime] = None,
        *,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        degrade_at: float = 0.75,
        tracer: Optional[Tracer] = None,
    ):
        if not 0.0 < degrade_at <= 1.0:
            raise BouquetError("degrade_at must be in (0, 1]")
        self.runtime = runtime if runtime is not None else SyncRuntime()
        self.default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self._quotas = dict(quotas) if quotas else {}
        self.degrade_at = degrade_at
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tenants: Dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def _state(self, tenant: str) -> _TenantState:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = _TenantState(self.quota_for(tenant), self.runtime.now())
                self._tenants[tenant] = state
            return state

    def admit(self, tenant: str) -> AdmissionDecision:
        """Check the tenant's bucket and queue; on admission a queue
        slot is held until :meth:`release`."""
        state = self._state(tenant)
        now = self.runtime.now()
        if not state.bucket.try_acquire(now):
            if self.tracer.enabled:
                self.tracer.count("serve.front.shed.quota")
            return AdmissionDecision(
                admitted=False,
                tenant=tenant,
                error_code="shed-quota",
                reason=(
                    f"tenant {tenant!r} exceeded its quota "
                    f"({state.quota.rate:g}/s, burst {state.quota.burst:g})"
                ),
                queue_depth=state.depth,
            )
        with self._lock:
            if state.depth >= state.quota.max_queue:
                if self.tracer.enabled:
                    self.tracer.count("serve.front.shed.queue")
                return AdmissionDecision(
                    admitted=False,
                    tenant=tenant,
                    error_code="shed-queue-full",
                    reason=(
                        f"tenant {tenant!r} queue full "
                        f"({state.quota.max_queue} slots)"
                    ),
                    queue_depth=state.depth,
                )
            state.depth += 1
            depth = state.depth
        degraded = depth / state.quota.max_queue >= self.degrade_at
        if degraded and self.tracer.enabled:
            self.tracer.count("serve.front.degraded_overload")
        return AdmissionDecision(
            admitted=True,
            tenant=tenant,
            degraded=degraded,
            reason="overload: degrade ladder engaged" if degraded else None,
            queue_depth=depth,
        )

    def release(self, tenant: str) -> None:
        state = self._state(tenant)
        with self._lock:
            if state.depth <= 0:
                raise BouquetError(
                    f"release without admit for tenant {tenant!r}"
                )
            state.depth -= 1

    def depth(self, tenant: str) -> int:
        return self._state(tenant).depth

    def pressure(self, tenant: str) -> float:
        """Queue occupancy in [0, 1] — the degrade-ladder signal."""
        state = self._state(tenant)
        return state.depth / state.quota.max_queue

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        now = self.runtime.now()
        with self._lock:
            tenants = dict(self._tenants)
        return {
            tenant: {
                "depth": state.depth,
                "max_queue": state.quota.max_queue,
                "tokens": state.bucket.level(now),
                "burst": state.quota.burst,
            }
            for tenant, state in sorted(tenants.items())
        }
