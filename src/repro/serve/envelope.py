"""The serving wire schema: typed request/response envelopes.

One calling convention for every entry into the serving layer — the
in-process API (:meth:`repro.serve.BouquetServer.serve`), the asyncio
HTTP front-end (:mod:`repro.serve.http`), and the CLI — replacing the
keyword sprawl the old ``serve(query, budget=..., mode=..., ...)``
signature accreted.  Both envelopes round-trip over JSON with a
versioned ``format`` tag, so a wire client and an in-process caller see
the same schema.

Outcome taxonomy
----------------

``ServeResponse.status`` is one of :data:`STATUSES`:

* ``"ok"`` — bouquet execution completed under the MSO guarantee;
* ``"degraded"`` — answered (rows delivered) but without the guarantee:
  the native-optimizer fallback ran, or overload stripped the request
  down the NAT ladder;
* ``"budget-exhausted"`` — the per-request cost budget ran out;
* ``"shed"`` — admission control rejected the request *before* any
  work (quota or queue backpressure) — distinct from ``failed``: a shed
  request was never attempted and is safe to retry elsewhere;
* ``"failed"`` — attempted but no answer could be produced.

Every non-``ok`` response carries a stable machine-readable
``error_code`` from :data:`ERROR_CODES`; the human-readable ``error``
string is advisory only.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Union

from ..exceptions import BouquetError
from ..query.query import Query

__all__ = [
    "ERROR_CODES",
    "REQUEST_FORMAT",
    "RESPONSE_FORMAT",
    "STATUSES",
    "ServeRequest",
    "ServeResponse",
]

REQUEST_FORMAT = "repro.serve.request.v1"
RESPONSE_FORMAT = "repro.serve.response.v1"

#: Terminal outcomes a request can have (see module docstring).
STATUSES = ("ok", "degraded", "budget-exhausted", "shed", "failed")

#: The stable machine-readable error-code taxonomy.  Codes are part of
#: the wire contract: clients branch on them, so they never change
#: meaning — new failure modes get new codes.
ERROR_CODES = frozenset(
    {
        "invalid-request",  # envelope failed validation (failed)
        "parse-error",  # query text did not parse (failed)
        "compile-timeout",  # compile deadline exceeded (degraded/failed)
        "compile-failed",  # bouquet compilation errored (degraded/failed)
        "execute-failed",  # bouquet execution errored (degraded/failed)
        "budget-exhausted",  # per-request cost budget ran out
        "shed-quota",  # tenant token bucket empty (shed)
        "shed-queue-full",  # tenant queue at capacity (shed)
        "overload-degraded",  # admitted under pressure, budgets degraded
        "cached-only-miss",  # cached_only request, no artifact (degraded)
        "native-failed",  # the NAT fallback itself failed (failed)
        "server-closed",  # server is shutting down (failed)
    }
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BouquetError(f"serve request: {message}")


@dataclass(frozen=True)
class ServeRequest:
    """Everything a caller may say about one serving request.

    ``query`` is SQL text (the only wire-safe spelling) or a parsed
    :class:`~repro.query.query.Query` for in-process callers.  Knob
    fields reuse the canonical :class:`~repro.api.BouquetConfig`
    spellings — ``mode``, ``crossing``, ``compile_engine`` — and
    ``None`` means "server default".

    * ``tenant`` — admission-control identity (quotas, queues);
    * ``budget`` — per-request cost cap
      (:class:`~repro.api.BudgetCappedService`);
    * ``deadline`` — seconds the caller will wait for a compile before
      degrading to the NAT path (``0`` degrades immediately on a miss);
    * ``cached_only`` — never compile: answer from the artifact cache
      or degrade straight to NAT (the overload ladder sets this).
    """

    query: Union[str, Query]
    tenant: str = "default"
    request_id: Optional[str] = None
    budget: Optional[float] = None
    deadline: Optional[float] = None
    mode: Optional[str] = None
    crossing: Optional[str] = None
    compile_engine: Optional[str] = None
    cached_only: bool = False

    def validate(self) -> "ServeRequest":
        """Check every field; raises :class:`BouquetError` on the first
        violation.  Returns self for chaining."""
        from ..ess.posp import COMPILE_ENGINES
        from ..sched.strategy import CROSSING_NAMES

        _require(
            isinstance(self.query, (str, Query)) and bool(self.query),
            "query must be SQL text or a parsed Query",
        )
        _require(
            isinstance(self.tenant, str) and bool(self.tenant.strip()),
            "tenant must be a non-empty string",
        )
        _require(
            self.budget is None or self.budget > 0, "budget must be positive"
        )
        _require(
            self.deadline is None or self.deadline >= 0,
            "deadline must be non-negative",
        )
        _require(
            self.mode in (None, "basic", "optimized"),
            f"unknown runtime mode {self.mode!r}",
        )
        _require(
            self.crossing is None or self.crossing in CROSSING_NAMES,
            f"unknown crossing strategy {self.crossing!r}",
        )
        _require(
            self.compile_engine is None or self.compile_engine in COMPILE_ENGINES,
            f"unknown compile engine {self.compile_engine!r}",
        )
        _require(isinstance(self.cached_only, bool), "cached_only must be a bool")
        return self

    def with_(self, **changes) -> "ServeRequest":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)

    @property
    def sql(self) -> Optional[str]:
        return self.query if isinstance(self.query, str) else None

    # -- wire ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        if not isinstance(self.query, str):
            raise BouquetError(
                "serve request: only SQL-text queries can cross the wire"
            )
        return {
            "format": REQUEST_FORMAT,
            "query": self.query,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "budget": self.budget,
            "deadline": self.deadline,
            "mode": self.mode,
            "crossing": self.crossing,
            "compile_engine": self.compile_engine,
            "cached_only": self.cached_only,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "ServeRequest":
        if not isinstance(data, Mapping):
            raise BouquetError("serve request: payload must be a JSON object")
        payload = dict(data)
        fmt = payload.pop("format", REQUEST_FORMAT)
        if fmt != REQUEST_FORMAT:
            raise BouquetError(f"serve request: unknown format {fmt!r}")
        known = {
            "query",
            "tenant",
            "request_id",
            "budget",
            "deadline",
            "mode",
            "crossing",
            "compile_engine",
            "cached_only",
        }
        unknown = set(payload) - known
        if unknown:
            raise BouquetError(
                f"serve request: unknown fields {sorted(unknown)}"
            )
        if "query" not in payload:
            raise BouquetError("serve request: missing required field 'query'")
        defaults = {"tenant": "default", "cached_only": False}
        for key, value in defaults.items():
            if payload.get(key) is None:
                payload[key] = value
        return ServeRequest(**payload).validate()


@dataclass
class ServeResponse:
    """Outcome of one served request (the old ``ServeResult``, grown a
    status/``error_code`` taxonomy, tenant identity, and timings).

    In-process responses carry the live
    :class:`~repro.core.runtime.BouquetRunResult` in ``result``;
    ``rows``/``total_cost`` are filled from it.  Wire responses carry
    only the scalar fields.  ``key`` is the artifact cache key
    (:class:`~repro.serve.fingerprint.ArtifactKey` in process, its
    digest string over the wire).
    """

    status: str
    cache: str = "none"
    query_name: str = ""
    tenant: str = "default"
    request_id: Optional[str] = None
    key: Optional[object] = None
    result: Optional[object] = None
    mso_bound: Optional[float] = None
    error: Optional[str] = None
    error_code: Optional[str] = None
    rows: Optional[int] = field(default=None)
    total_cost: Optional[float] = field(default=None)
    queue_seconds: float = 0.0
    service_seconds: float = 0.0

    def __post_init__(self):
        if self.status not in STATUSES:
            raise BouquetError(
                f"serve response: unknown status {self.status!r} "
                f"(expected one of {list(STATUSES)})"
            )
        if self.error_code is not None and self.error_code not in ERROR_CODES:
            raise BouquetError(
                f"serve response: unknown error code {self.error_code!r}"
            )
        if self.status != "ok" and self.error_code is None:
            raise BouquetError(
                f"serve response: status {self.status!r} requires an error_code"
            )
        if self.result is not None:
            if self.rows is None:
                self.rows = self.result.result_rows
            if self.total_cost is None:
                self.total_cost = self.result.total_cost

    # -- outcome predicates -------------------------------------------

    @property
    def ok(self) -> bool:
        """Answered under the MSO guarantee."""
        return self.status == "ok"

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @property
    def shed(self) -> bool:
        """Rejected by admission control before any work — not a failure."""
        return self.status == "shed"

    @property
    def failed(self) -> bool:
        """Attempted but produced no answer.  Distinct from ``shed``."""
        return self.status == "failed"

    @property
    def answered(self) -> bool:
        """Rows were delivered (with or without the MSO guarantee)."""
        return self.status in ("ok", "degraded")

    @property
    def latency_seconds(self) -> float:
        return self.queue_seconds + self.service_seconds

    # -- wire ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        key = self.key
        if key is not None and not isinstance(key, str):
            key = key.digest
        return {
            "format": RESPONSE_FORMAT,
            "status": self.status,
            "cache": self.cache,
            "query_name": self.query_name,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "key": key,
            "rows": self.rows,
            "total_cost": self.total_cost,
            "mso_bound": self.mso_bound,
            "error": self.error,
            "error_code": self.error_code,
            "queue_seconds": self.queue_seconds,
            "service_seconds": self.service_seconds,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "ServeResponse":
        if not isinstance(data, Mapping):
            raise BouquetError("serve response: payload must be a JSON object")
        payload = dict(data)
        fmt = payload.pop("format", RESPONSE_FORMAT)
        if fmt != RESPONSE_FORMAT:
            raise BouquetError(f"serve response: unknown format {fmt!r}")
        known = {
            "status",
            "cache",
            "query_name",
            "tenant",
            "request_id",
            "key",
            "rows",
            "total_cost",
            "mso_bound",
            "error",
            "error_code",
            "queue_seconds",
            "service_seconds",
        }
        unknown = set(payload) - known
        if unknown:
            raise BouquetError(
                f"serve response: unknown fields {sorted(unknown)}"
            )
        if "status" not in payload:
            raise BouquetError("serve response: missing required field 'status'")
        defaults = {
            "cache": "none",
            "query_name": "",
            "tenant": "default",
            "queue_seconds": 0.0,
            "service_seconds": 0.0,
        }
        for name, value in defaults.items():
            if payload.get(name) is None:
                payload[name] = value
        return ServeResponse(**payload)
