"""ServeGateway: the runtime-agnostic multi-tenant serving core.

The gateway sits between any transport (the asyncio HTTP front-end, the
CLI, plain threads, the simulated load harness) and a serving backend —
normally a :class:`~repro.serve.server.BouquetServer`, or anything else
with ``serve_request(ServeRequest) -> ServeResponse``.  It owns the
multi-tenant story:

* **admission** (:mod:`repro.serve.admission`): token-bucket quotas and
  bounded per-tenant in-flight queues, checked *before* any work is
  dispatched, so backpressure is explicit — a shed request costs one
  clock read, never a thread;
* the **overload ladder**: past ``degrade_at`` queue occupancy a tenant's
  requests are admitted but stripped down the server's NAT degradation
  ladder (``cached_only`` — answer from the artifact cache or one native
  optimizer call, never a fresh compile) with budgets capped at
  ``degraded_budget``, so service degrades before anything is rejected;
* **accounting**: every response is stamped with tenant, request id, and
  queue/service timings from the gateway's
  :class:`~repro.runtime.base.Runtime` clock (virtual under simulation).

The three-call surface (:meth:`admit` / :meth:`process` /
:meth:`finish`) lets event-driven callers interleave admission and
completion; :meth:`handle` is the one-shot convenience that transports
with their own concurrency (threads, ``run_in_executor``) use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from ..exceptions import BouquetError, ReproError
from ..obs.tracer import NULL_TRACER, Tracer
from ..query.query import Query
from ..runtime import Runtime, SyncRuntime
from .admission import AdmissionController, AdmissionDecision, TenantQuota
from .envelope import ServeRequest, ServeResponse

__all__ = ["AdmissionTicket", "ServeGateway"]


@dataclass
class AdmissionTicket:
    """An admitted request: its envelope, decision, and clock marks."""

    request: ServeRequest
    decision: AdmissionDecision
    admitted_at: float
    started_at: Optional[float] = None


class ServeGateway:
    """Admission control + overload ladder over a serving backend."""

    def __init__(
        self,
        backend,
        *,
        runtime: Optional[Runtime] = None,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        degrade_at: float = 0.75,
        degraded_budget: Optional[float] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not hasattr(backend, "serve_request"):
            raise BouquetError(
                "gateway backend must expose serve_request(request)"
            )
        self.backend = backend
        self.runtime = runtime if runtime is not None else SyncRuntime()
        if tracer is None:
            tracer = getattr(backend, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.degraded_budget = degraded_budget
        self.admission = AdmissionController(
            self.runtime,
            quotas=quotas,
            default_quota=default_quota,
            degrade_at=degrade_at,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # Event-driven surface (admit / process / finish)
    # ------------------------------------------------------------------

    def _coerce(self, request: Union[ServeRequest, str, Query]) -> ServeRequest:
        if isinstance(request, ServeRequest):
            return request
        return ServeRequest(query=request)

    def admit(
        self, request: Union[ServeRequest, str, Query]
    ) -> Tuple[Optional[AdmissionTicket], Optional[ServeResponse]]:
        """Validate and admission-check one request — cheap and
        non-blocking, safe on an event-loop thread.

        Returns ``(ticket, None)`` on admission or ``(None, response)``
        when the request is answered right here (invalid → ``failed``,
        over quota/queue → ``shed``).
        """
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("serve.front.requests")
        request = self._coerce(request)
        try:
            request.validate()
        except ReproError as exc:
            if tracer.enabled:
                tracer.count("serve.front.invalid")
            return None, ServeResponse(
                status="failed",
                query_name=request.sql or "",
                tenant=request.tenant if isinstance(request.tenant, str) else "default",
                request_id=request.request_id,
                error=str(exc),
                error_code="invalid-request",
            )
        decision = self.admission.admit(request.tenant)
        if not decision.admitted:
            # Shed — typed, attributable, and safe to retry elsewhere.
            return None, ServeResponse(
                status="shed",
                query_name=request.sql or "",
                tenant=request.tenant,
                request_id=request.request_id,
                error=decision.reason,
                error_code=decision.error_code,
            )
        if tracer.enabled:
            tracer.count("serve.front.admitted")
        return (
            AdmissionTicket(
                request=request,
                decision=decision,
                admitted_at=self.runtime.now(),
            ),
            None,
        )

    def effective_request(self, ticket: AdmissionTicket) -> ServeRequest:
        """The request the backend actually sees — under overload it is
        stripped down the NAT ladder (cached-only, capped budget)."""
        request = ticket.request
        if not ticket.decision.degraded:
            return request
        budget = request.budget
        if self.degraded_budget is not None:
            budget = (
                min(budget, self.degraded_budget)
                if budget is not None
                else self.degraded_budget
            )
        return request.with_(cached_only=True, budget=budget)

    def finish(
        self, ticket: AdmissionTicket, response: ServeResponse
    ) -> ServeResponse:
        """Stamp identity + timings, account the outcome, release the
        tenant's queue slot.  Every admitted ticket must be finished
        exactly once."""
        now = self.runtime.now()
        started = ticket.started_at if ticket.started_at is not None else now
        response.tenant = ticket.request.tenant
        response.request_id = ticket.request.request_id
        response.queue_seconds = max(started - ticket.admitted_at, 0.0)
        response.service_seconds = max(now - started, 0.0)
        if ticket.decision.degraded and response.status == "degraded":
            # The overload ladder, not the request itself, caused the
            # degradation — report it as such.
            response.error_code = "overload-degraded"
            response.error = ticket.decision.reason or response.error
        if self.tracer.enabled:
            self.tracer.count(f"serve.front.completed.{response.status}")
        self.admission.release(ticket.request.tenant)
        return response

    def process(self, ticket: AdmissionTicket) -> ServeResponse:
        """Run an admitted request on the backend (blocking) and finish
        it.  Never raises for per-request problems."""
        ticket.started_at = self.runtime.now()
        try:
            response = self.backend.serve_request(self.effective_request(ticket))
        except ReproError as exc:
            response = ServeResponse(
                status="failed",
                query_name=ticket.request.sql or "",
                error=str(exc),
                error_code="invalid-request",
            )
        return self.finish(ticket, response)

    # ------------------------------------------------------------------
    # One-shot surface
    # ------------------------------------------------------------------

    def handle(
        self, request: Union[ServeRequest, str, Query]
    ) -> ServeResponse:
        """Admit and serve one request end to end on the calling thread."""
        ticket, response = self.admit(request)
        if response is not None:
            return response
        assert ticket is not None
        return self.process(ticket)

    def stats(self) -> Dict[str, object]:
        """Front-end counters plus per-tenant admission occupancy."""
        snapshot = (
            self.tracer.snapshot() if self.tracer.enabled else {"counters": {}}
        )
        return {
            "counters": {
                name: value
                for name, value in sorted(snapshot["counters"].items())
                if name.startswith("serve.")
            },
            "tenants": self.admission.snapshot(),
            "runtime": self.runtime.name,
        }
