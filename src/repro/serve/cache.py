"""The bouquet artifact cache: in-memory LRU over a durable disk store.

Artifacts are keyed by the content hash of (canonical query, statistics
fingerprint, compile knobs) — see :mod:`repro.serve.fingerprint`.  The
memory tier holds live :class:`~repro.api.CompiledBouquet` objects (a
hit costs a dict lookup); the disk tier holds the versioned JSON
envelope and survives process restarts, which is what makes the §4.2
"compile once, execute many" amortization real across deployments.

Telemetry (all through the attached tracer, zero-overhead when null):

* ``serve.cache.hit_memory`` / ``serve.cache.hit_disk`` /
  ``serve.cache.miss`` — lookup outcomes;
* ``serve.cache.store`` — artifacts written;
* ``serve.cache.evict`` — memory-LRU evictions (the disk copy remains);
* ``serve.cache.invalidated`` — entries dropped because their
  statistics fingerprint no longer matches the live catalog;
* ``serve.cache.purged`` — corrupt or key-mismatched disk envelopes
  deleted on lookup (instead of being re-parsed forever).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..exceptions import BouquetError, ReproError
from ..obs.tracer import NULL_TRACER, Tracer
from .fingerprint import ArtifactKey

__all__ = ["BouquetArtifactStore", "LEGACY_STORE_FORMATS", "STORE_FORMAT"]

#: Format tag of the on-disk cache envelope (key + artifact payload).
#: v2 envelopes are structurally identical to v1 but are written under
#: the full-key validation contract: a lookup matches only when *all*
#: three key digests agree, and envelopes that fail validation (or fail
#: to parse) are purged rather than silently skipped.
STORE_FORMAT = "repro.serve.artifact.v2"

#: Older envelope versions the store still reads (write path is always
#: the current format).
LEGACY_STORE_FORMATS = ("repro.serve.artifact.v1",)

_READABLE_FORMATS = (STORE_FORMAT,) + LEGACY_STORE_FORMATS


class BouquetArtifactStore:
    """Two-tier (memory LRU + disk) store for compiled-bouquet artifacts.

    ``root=None`` keeps the store memory-only; otherwise artifacts are
    persisted as ``<digest>.json`` under ``root`` and reloaded lazily.
    ``capacity`` bounds only the memory tier — an evicted entry's disk
    copy remains and reloading it is a disk hit, not a recompile.
    All operations are thread-safe.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        capacity: int = 32,
        tracer: Optional[Tracer] = None,
    ):
        if capacity < 1:
            raise BouquetError("artifact cache capacity must be at least 1")
        self.root = root
        self.capacity = int(capacity)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.RLock()
        self._memory: "OrderedDict[str, Tuple[ArtifactKey, object]]" = OrderedDict()
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")  # type: ignore[arg-type]

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def cached_digests(self) -> List[str]:
        """Digests reachable without compiling (memory ∪ disk)."""
        with self._lock:
            digests = set(self._memory)
        if self.root is not None and os.path.isdir(self.root):
            for name in os.listdir(self.root):
                if name.endswith(".json"):
                    digests.add(name[: -len(".json")])
        return sorted(digests)

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(
        self,
        key: ArtifactKey,
        catalog,
        query=None,
        tracer: Optional[Tracer] = None,
    ):
        """Return the cached :class:`~repro.api.CompiledBouquet` or None.

        ``catalog`` (and optionally the parsed ``query``) are needed to
        rehydrate a disk entry: plans are re-registered against a fresh
        optimizer built from the catalog.
        """
        compiled, _ = self.lookup(key, catalog, query=query, tracer=tracer)
        return compiled

    def lookup(
        self,
        key: ArtifactKey,
        catalog,
        query=None,
        tracer: Optional[Tracer] = None,
    ):
        """Like :meth:`get` but also reports which tier answered:
        ``(compiled, "memory" | "disk")`` on a hit, ``(None, None)`` on a
        miss."""
        tracer = tracer if tracer is not None else self.tracer
        digest = key.digest
        with self._lock:
            entry = self._memory.get(digest)
            if entry is not None:
                self._memory.move_to_end(digest)
                if tracer.enabled:
                    tracer.count("serve.cache.hit_memory")
                return entry[1], "memory"
        if self.root is not None:
            path = self._path(digest)
            if os.path.exists(path):
                compiled = self._load_disk(path, key, catalog, query, tracer)
                if compiled is not None:
                    with self._lock:
                        self._insert_memory(key, compiled, tracer)
                    if tracer.enabled:
                        tracer.count("serve.cache.hit_disk")
                    return compiled, "disk"
        if tracer.enabled:
            tracer.count("serve.cache.miss")
        return None, None

    def put(self, key: ArtifactKey, compiled, tracer: Optional[Tracer] = None) -> None:
        """Insert an artifact into both tiers."""
        tracer = tracer if tracer is not None else self.tracer
        digest = key.digest
        with self._lock:
            self._insert_memory(key, compiled, tracer)
        if self.root is not None:
            envelope = {
                "format": STORE_FORMAT,
                "key": {
                    "query_text": key.query_text,
                    "query_digest": key.query_digest,
                    "statistics_digest": key.statistics_digest,
                    "config_digest": key.config_digest,
                },
                "artifact": compiled.to_dict(),
            }
            # A unique temp file per writer: concurrent puts of the same
            # digest must never interleave JSON into a shared scratch
            # path; whichever os.replace lands last wins with a complete
            # envelope.
            fd, tmp = tempfile.mkstemp(
                prefix=f"{digest}.", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(envelope, handle)
                os.replace(tmp, self._path(digest))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        if tracer.enabled:
            tracer.count("serve.cache.store")

    def _insert_memory(self, key: ArtifactKey, compiled, tracer: Tracer) -> None:
        digest = key.digest
        self._memory[digest] = (key, compiled)
        self._memory.move_to_end(digest)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            if tracer.enabled:
                tracer.count("serve.cache.evict")

    def _purge(self, path: str, tracer: Tracer, reason: str) -> None:
        """Delete an unusable disk envelope so it is not re-parsed (and
        re-rejected) on every subsequent lookup."""
        try:
            os.unlink(path)
        except OSError:
            return
        if tracer.enabled:
            tracer.count("serve.cache.purged")
            tracer.event("serve.cache.purge", path=path, reason=reason)

    def _load_disk(
        self,
        path: str,
        key: ArtifactKey,
        catalog,
        query,
        tracer: Optional[Tracer] = None,
    ):
        from ..api import CompiledBouquet

        tracer = tracer if tracer is not None else self.tracer
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._purge(path, tracer, "unparseable")
            return None
        if envelope.get("format") not in _READABLE_FORMATS:
            self._purge(path, tracer, "unknown-format")
            return None
        # The on-disk name is a hash of the combined key, so a name
        # collision aside, a mismatch here means the envelope was written
        # for a *different* (query, statistics, config) world — validate
        # every component, not just the statistics digest, or a stale or
        # tampered file rehydrates the wrong artifact.
        stored = envelope.get("key", {})
        if (
            stored.get("query_digest") != key.query_digest
            or stored.get("statistics_digest") != key.statistics_digest
            or stored.get("config_digest") != key.config_digest
        ):
            self._purge(path, tracer, "key-mismatch")
            return None
        try:
            return CompiledBouquet.from_dict(envelope["artifact"], catalog, query)
        except (ReproError, KeyError, TypeError, ValueError):
            self._purge(path, tracer, "bad-artifact")
            return None

    # ------------------------------------------------------------------
    # Maintenance accessors
    # ------------------------------------------------------------------

    def stale_entries(self, current_fingerprint: str, catalog):
        """``(key, compiled)`` for every cached artifact keyed to a
        statistics fingerprint other than ``current_fingerprint`` —
        memory tier first, then disk envelopes not already seen
        (rehydrated through their stored SQL when possible).

        This is the server patch path's work list: each entry is a
        candidate for :func:`repro.drift.refresh.patch_compiled` before
        :meth:`invalidate_statistics` sweeps whatever could not be
        patched.
        """
        from ..api import CompiledBouquet

        with self._lock:
            entries = list(self._memory.values())
        results, seen = [], set()
        for key, compiled in entries:
            if key.statistics_digest != current_fingerprint:
                results.append((key, compiled))
                seen.add(key.digest)
        if self.root is not None and os.path.isdir(self.root):
            for name in sorted(os.listdir(self.root)):
                if not name.endswith(".json"):
                    continue
                digest = name[: -len(".json")]
                if digest in seen:
                    continue
                path = os.path.join(self.root, name)
                try:
                    with open(path) as handle:
                        envelope = json.load(handle)
                except (OSError, ValueError):
                    continue
                if envelope.get("format") not in _READABLE_FORMATS:
                    continue
                stored = envelope.get("key", {})
                if stored.get("statistics_digest") == current_fingerprint:
                    continue
                try:
                    compiled = CompiledBouquet.from_dict(
                        envelope.get("artifact", {}), catalog, None
                    )
                except (ReproError, KeyError, TypeError, ValueError):
                    continue
                results.append(
                    (
                        ArtifactKey(
                            query_text=stored.get("query_text", ""),
                            query_digest=stored.get("query_digest", ""),
                            statistics_digest=stored.get("statistics_digest", ""),
                            config_digest=stored.get("config_digest", ""),
                        ),
                        compiled,
                    )
                )
        return results

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate_statistics(
        self, current_fingerprint: str, tracer: Optional[Tracer] = None
    ) -> int:
        """Drop every entry whose statistics fingerprint differs from the
        live catalog's — called when statistics are rebuilt or the data
        changes under the server (see :func:`repro.core.maintenance.refresh_bouquet`).
        Returns the number of entries removed."""
        tracer = tracer if tracer is not None else self.tracer
        dropped = set()
        with self._lock:
            stale = [
                digest
                for digest, (key, _) in self._memory.items()
                if key.statistics_digest != current_fingerprint
            ]
            for digest in stale:
                del self._memory[digest]
                dropped.add(digest)
        if self.root is not None and os.path.isdir(self.root):
            for name in list(os.listdir(self.root)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.root, name)
                try:
                    with open(path) as handle:
                        envelope = json.load(handle)
                    stored_fp = envelope.get("key", {}).get("statistics_digest")
                except (OSError, ValueError):
                    stored_fp = None
                if stored_fp != current_fingerprint:
                    try:
                        os.unlink(path)
                        dropped.add(name[: -len(".json")])
                    except OSError:
                        pass
        removed = len(dropped)
        if removed and tracer.enabled:
            tracer.count("serve.cache.invalidated", removed)
        return removed

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
        if self.root is not None and os.path.isdir(self.root):
            for name in os.listdir(self.root):
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(self.root, name))
                    except OSError:
                        pass

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Current occupancy of both tiers (for ``repro serve-stats``)."""
        with self._lock:
            memory = len(self._memory)
        disk = 0
        if self.root is not None and os.path.isdir(self.root):
            disk = sum(1 for n in os.listdir(self.root) if n.endswith(".json"))
        return {"memory_entries": memory, "disk_entries": disk}
