"""Asyncio-native HTTP/JSON front-end over a :class:`ServeGateway`.

Pure stdlib (``asyncio`` streams + ``json``) — no web framework.  The
wire contract is the versioned envelope schema from
:mod:`repro.serve.envelope`:

* ``POST /v1/serve`` — body is a ``repro.serve.request.v1`` JSON
  object; the reply is always a ``repro.serve.response.v1`` object,
  whatever happened.  HTTP status mirrors the outcome taxonomy:
  answered (``ok`` / ``degraded`` / ``budget-exhausted``) → 200,
  ``shed`` → 429 (back off and retry), ``failed`` → 400 for request
  errors (``invalid-request`` / ``parse-error``), 500 otherwise.
* ``GET /v1/stats`` — gateway counters + per-tenant admission state.
* ``GET /healthz`` — liveness probe.

Concurrency model: admission runs *inline* on the event-loop thread
(one clock read, never blocks), so floods are shed at loop speed;
admitted requests are offloaded to the
:class:`~repro.runtime.aio.AsyncioRuntime` worker pool via ``arun`` and
awaited, keeping the loop free to shed, answer probes, and accept
connections while bouquet work runs.  Connections are keep-alive
HTTP/1.1, one in-flight request per connection.

:class:`AsyncServeClient` is the matching stdlib client, used by the
load harness's real-clock mode and the tests.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Set, Tuple

from ..exceptions import BouquetError, ReproError
from ..runtime.aio import AsyncioRuntime
from .envelope import RESPONSE_FORMAT, ServeRequest, ServeResponse
from .front import ServeGateway

__all__ = ["AsyncServeClient", "BouquetFrontEnd", "http_status_for"]

_MAX_BODY = 1 << 20  # 1 MiB — a serve request is a few hundred bytes

#: failed-status error codes that are the client's fault, not ours.
_CLIENT_FAULTS = frozenset({"invalid-request", "parse-error"})


def http_status_for(response: ServeResponse) -> int:
    """Map the envelope outcome taxonomy onto HTTP status codes."""
    if response.status in ("ok", "degraded", "budget-exhausted"):
        return 200
    if response.status == "shed":
        return 429
    if response.error_code in _CLIENT_FAULTS:
        return 400
    return 500


def _invalid(message: str) -> ServeResponse:
    return ServeResponse(
        status="failed", error=message, error_code="invalid-request"
    )


class BouquetFrontEnd:
    """An asyncio TCP server speaking the v1 serve protocol."""

    def __init__(
        self,
        gateway: ServeGateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        runtime: Optional[AsyncioRuntime] = None,
    ):
        self.gateway = gateway
        if runtime is None:
            candidate = gateway.runtime
            runtime = (
                candidate
                if isinstance(candidate, AsyncioRuntime)
                else AsyncioRuntime()
            )
        self.runtime = runtime
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``
        (useful with ``port=0``)."""
        if self._server is not None:
            raise BouquetError("front-end already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            # Drain live connection handlers before the loop goes away,
            # so shutdown never logs stray CancelledErrors.
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "BouquetFrontEnd":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- protocol ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                parsed = await _read_http_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._dispatch(method, path, body)
                _write_http_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client hung up mid-request
        except asyncio.CancelledError:
            pass  # stop() draining us — close the transport and finish
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/v1/stats":
            return 200, self.gateway.stats()
        if method == "POST" and path == "/v1/serve":
            return await self._serve(body)
        return 404, {"error": f"no route for {method} {path}"}

    async def _serve(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            request = ServeRequest.from_dict(payload)
        except (ValueError, ReproError) as exc:
            response = _invalid(f"bad serve payload: {exc}")
            return http_status_for(response), response.to_dict()
        # Admission inline on the loop thread: shedding a flood must not
        # wait behind the worker pool the flood is trying to fill.
        ticket, response = self.gateway.admit(request)
        if response is None:
            assert ticket is not None
            response = await self.runtime.arun(self.gateway.process, ticket)
        return http_status_for(response), response.to_dict()


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise asyncio.IncompleteReadError(request_line, None)
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise asyncio.IncompleteReadError(b"", None)
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _write_http_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Dict[str, object],
    keep_alive: bool,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              429: "Too Many Requests", 500: "Internal Server Error"}
    head = (
        f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + body)


class AsyncServeClient:
    """A keep-alive asyncio client for the v1 serve protocol."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        await self._connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _round_trip(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        await self._connect()
        assert self._reader is not None and self._writer is not None
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise BouquetError("serve client: connection closed by server")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        data = await self._reader.readexactly(length) if length else b""
        return status, json.loads(data.decode("utf-8")) if data else {}

    async def serve(self, request: ServeRequest) -> ServeResponse:
        """POST one envelope; returns the typed response envelope."""
        _, payload = await self._round_trip(
            "POST", "/v1/serve", request.to_dict()
        )
        if payload.get("format") != RESPONSE_FORMAT:
            raise BouquetError(
                f"serve client: unexpected reply format {payload.get('format')!r}"
            )
        return ServeResponse.from_dict(payload)

    async def stats(self) -> dict:
        _, payload = await self._round_trip("GET", "/v1/stats")
        return payload

    async def health(self) -> bool:
        status, payload = await self._round_trip("GET", "/healthz")
        return status == 200 and bool(payload.get("ok"))
