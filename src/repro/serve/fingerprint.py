"""Content-hash cache keys for compiled-bouquet artifacts.

A compiled bouquet is a pure function of three inputs, so the cache key
is a digest over exactly those three:

* the **canonical query text** — a normalized rendering of the query's
  structure (sorted tables, sorted predicate pids, group-by, aggregate
  flag) so formatting, clause order, and the arbitrary query *name* do
  not fragment the cache;
* the **statistics fingerprint** — a digest of every table/column
  statistic the optimizer can observe (row counts, min/max, distincts,
  histogram bounds, MCVs).  Regenerated or refreshed statistics change
  the digest, which both routes lookups to a new key and lets the store
  garbage-collect entries built against the old world view;
* the **compile knobs** — the subset of :class:`repro.api.BouquetConfig`
  that determines the artifact (r, λ, resolution, cost model); runtime
  knobs (mode, δ, equivalence threshold) deliberately do not participate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from ..catalog.statistics import DatabaseStatistics
from ..query.query import Query

__all__ = [
    "ArtifactKey",
    "artifact_key",
    "canonical_query_text",
    "canonical_template_text",
    "config_fingerprint",
    "statistics_fingerprint",
]

#: Statistics fingerprint used when the catalog carries no statistics at
#: all (the magic-number/ETL scenario) — still a valid, stable world view.
NO_STATISTICS = "nostats"


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def canonical_query_text(query: Query) -> str:
    """Name-independent canonical rendering of a query's structure.

    Every component is explicitly sorted — tables, predicate pids, and
    group-by columns — so two queries that differ only in FROM/WHERE
    clause order render identically and share an artifact key.
    (``Query.predicate_ids`` happens to return pids sorted today, but
    the cache key must not depend on that implementation detail.)
    """
    parts = [
        "from=" + ",".join(sorted(query.tables)),
        "preds=" + ";".join(sorted(query.predicate_ids)),
        "group=" + ",".join(f"{t}.{c}" for t, c in sorted(query.group_by)),
        "agg=" + ("1" if query.aggregate else "0"),
    ]
    return "|".join(parts)


def canonical_template_text(query: Query, schema=None, statistics=None) -> str:
    """Constants-stripped sibling of :func:`canonical_query_text`.

    Renders the query's *template* — the structure that survives when
    predicate constants are replaced by ``?`` and relations are reduced
    to canonical slots (:mod:`repro.template.signature`).  Two instances
    of one template (same shape, different constants) render identically;
    this text keys the cross-query template cache tier in front of the
    exact-key artifact store.
    """
    from ..template.signature import template_signature

    return template_signature(query, schema, statistics).text


def statistics_fingerprint(statistics: Optional[DatabaseStatistics]) -> str:
    """Digest of everything the optimizer can see in the statistics.

    Memoized per statistics object against its
    :meth:`~repro.catalog.statistics.DatabaseStatistics.version_token`,
    so warm cache lookups cost two dict probes instead of a full
    serialization; replacing a table/column through the setters bumps
    the token and forces a recomputation.
    """
    if statistics is None:
        return NO_STATISTICS
    token = statistics.version_token()
    cached = getattr(statistics, "_fingerprint_cache", None)
    if cached is not None and cached[0] == token:
        return cached[1]
    view = {}
    for table_name in statistics.table_names:
        table = statistics.table(table_name)
        columns = {}
        for column_name in table.column_names:
            col = table.column(column_name)
            columns[column_name] = [
                col.min_value,
                col.max_value,
                col.n_distinct,
                col.null_fraction,
                col.histogram_bounds,
                col.mcv_values,
                col.mcv_fractions,
            ]
        view[table_name] = {"rows": table.row_count, "columns": columns}
    fingerprint = _digest(json.dumps(view, sort_keys=True))
    statistics._fingerprint_cache = (token, fingerprint)
    return fingerprint


def config_fingerprint(config) -> str:
    """Digest of the compile knobs (``config.compile_knobs()``)."""
    return _digest(json.dumps(config.compile_knobs(), sort_keys=True))


@dataclass(frozen=True)
class ArtifactKey:
    """The full cache key, with its three component digests kept visible
    so invalidation can match on the statistics part alone."""

    query_text: str
    query_digest: str
    statistics_digest: str
    config_digest: str

    @property
    def digest(self) -> str:
        """The combined content hash — the on-disk artifact name."""
        return _digest(
            "|".join((self.query_digest, self.statistics_digest, self.config_digest))
        )

    def describe(self) -> str:
        return (
            f"{self.digest} (query={self.query_digest[:8]} "
            f"stats={self.statistics_digest[:8]} config={self.config_digest[:8]})"
        )


def artifact_key(
    query: Query,
    statistics: Optional[DatabaseStatistics],
    config,
) -> ArtifactKey:
    """Build the content-hash key for one (query, statistics, config)."""
    text = canonical_query_text(query)
    return ArtifactKey(
        query_text=text,
        query_digest=_digest(text),
        statistics_digest=statistics_fingerprint(statistics),
        config_digest=config_fingerprint(config),
    )
