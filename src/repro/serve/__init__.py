"""repro.serve — cached, concurrent serving of compiled bouquets.

The serving layer turns the paper's compile-once/execute-many deployment
model (§4.2) into a working subsystem:

* :mod:`~repro.serve.fingerprint` derives content-hash cache keys from
  (canonical query, statistics fingerprint, compile knobs);
* :mod:`~repro.serve.cache` is the two-tier artifact store (memory LRU
  over durable disk JSON) with statistics-driven invalidation;
* :mod:`~repro.serve.server` is the concurrent front end: single-flight
  compile deduplication, bounded worker pool, per-request budgets, and
  graceful degradation to the native-optimizer path.
"""

from .cache import BouquetArtifactStore, LEGACY_STORE_FORMATS, STORE_FORMAT
from .fingerprint import (
    ArtifactKey,
    artifact_key,
    canonical_query_text,
    config_fingerprint,
    statistics_fingerprint,
)
from .server import BouquetServer, ServeResult

__all__ = [
    "ArtifactKey",
    "BouquetArtifactStore",
    "BouquetServer",
    "LEGACY_STORE_FORMATS",
    "STORE_FORMAT",
    "ServeResult",
    "artifact_key",
    "canonical_query_text",
    "config_fingerprint",
    "statistics_fingerprint",
]
