"""repro.serve — cached, concurrent, multi-tenant serving of compiled
bouquets.

The serving layer turns the paper's compile-once/execute-many deployment
model (§4.2) into a working subsystem:

* :mod:`~repro.serve.envelope` is the calling convention: versioned
  :class:`ServeRequest`/:class:`ServeResponse` envelopes with a stable
  status + ``error_code`` taxonomy, shared by the in-process API, the
  HTTP wire, and the CLI;
* :mod:`~repro.serve.fingerprint` derives content-hash cache keys from
  (canonical query, statistics fingerprint, compile knobs);
* :mod:`~repro.serve.cache` is the two-tier artifact store (memory LRU
  over durable disk JSON) with statistics-driven invalidation;
* :mod:`~repro.serve.server` is the serving backend: single-flight
  compile deduplication, bounded worker pool, per-request budgets, and
  graceful degradation to the native-optimizer path;
* :mod:`~repro.serve.admission` + :mod:`~repro.serve.front` add the
  multi-tenant gateway: token-bucket quotas, bounded queues, and the
  degrade-before-shed overload ladder;
* :mod:`~repro.serve.http` is the asyncio-native HTTP/JSON front-end
  speaking the v1 envelope schema.
"""

from .admission import AdmissionController, AdmissionDecision, TenantQuota
from .cache import BouquetArtifactStore, LEGACY_STORE_FORMATS, STORE_FORMAT
from .envelope import (
    ERROR_CODES,
    REQUEST_FORMAT,
    RESPONSE_FORMAT,
    STATUSES,
    ServeRequest,
    ServeResponse,
)
from .fingerprint import (
    ArtifactKey,
    artifact_key,
    canonical_query_text,
    config_fingerprint,
    statistics_fingerprint,
)
from .front import AdmissionTicket, ServeGateway
from .http import AsyncServeClient, BouquetFrontEnd
from .server import BouquetServer, ServeResult

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionTicket",
    "ArtifactKey",
    "AsyncServeClient",
    "BouquetArtifactStore",
    "BouquetFrontEnd",
    "BouquetServer",
    "ERROR_CODES",
    "LEGACY_STORE_FORMATS",
    "REQUEST_FORMAT",
    "RESPONSE_FORMAT",
    "STATUSES",
    "ServeGateway",
    "ServeRequest",
    "ServeResponse",
    "ServeResult",
    "TenantQuota",
    "artifact_key",
    "canonical_query_text",
    "config_fingerprint",
    "statistics_fingerprint",
]
