"""Deployment advice: which processing regime fits a query (§8).

The paper closes by noting the bouquet is meant to *co-exist* with the
classical setup, "leaving it to the user or DBA to make the choice of
which system to use for a specific query instance", and §8 enumerates
the factors: estimation difficulty, read-only vs update, latency
sensitivity, and whether estimates are known to be underestimates.
:func:`recommend_processing_mode` operationalizes those rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..catalog.statistics import DatabaseStatistics
from ..ess.dimensioning import Uncertainty, WorkloadErrorLog, classify_predicate
from ..query.query import Query


class ProcessingMode(enum.Enum):
    """The three regimes §8 weighs against each other."""

    NATIVE = "native"  # classical single-plan optimization
    REOPTIMIZE = "reoptimize"  # POP/Rio-style mid-query re-optimization
    BOUQUET = "bouquet"  # plan-bouquet discovery


@dataclass
class Recommendation:
    """The advised regime plus the §8 factors that produced it."""

    mode: ProcessingMode
    rationale: List[str]
    max_uncertainty: Uncertainty

    def describe(self) -> str:
        lines = [f"recommended mode: {self.mode.value}"]
        lines.extend(f"  - {reason}" for reason in self.rationale)
        return "\n".join(lines)


def recommend_processing_mode(
    query: Query,
    statistics: Optional[DatabaseStatistics],
    read_only: bool = True,
    latency_sensitive: bool = False,
    error_log: Optional[WorkloadErrorLog] = None,
    estimates_known_underestimates: bool = False,
) -> Recommendation:
    """Apply §8's decision factors to one query instance.

    * update queries and latency-sensitive applications are poorly served
      by any plan-switching technique -> NATIVE;
    * when estimation errors are a-priori known to be small,
      re-optimization "is likely to converge much quicker than the
      bouquet algorithm" -> REOPTIMIZE;
    * difficult estimation environments (high-uncertainty predicates or a
      workload history of large errors) are the bouquet's home turf ->
      BOUQUET — and if estimates are guaranteed underestimates, the
      bouquet "can also leverage the initial seed".
    """
    rationale: List[str] = []
    levels = [
        classify_predicate(query, pid, statistics) for pid in query.predicate_ids
    ]
    max_uncertainty = max(levels) if levels else Uncertainty.NONE
    history_errors = False
    if error_log is not None:
        flagged = set(error_log.error_prone_pids()) & set(query.predicate_ids)
        if flagged:
            history_errors = True
            rationale.append(
                f"workload history shows large estimation errors on "
                f"{len(flagged)} predicate(s)"
            )

    if not read_only:
        rationale.append(
            "update query: multiple partial executions would need rollback "
            "of aborted work (§8) — plan switching not recommended"
        )
        return Recommendation(ProcessingMode.NATIVE, rationale, max_uncertainty)
    if latency_sensitive:
        rationale.append(
            "latency-sensitive: plan-switching defers first results until "
            "the final execution (§8)"
        )
        return Recommendation(ProcessingMode.NATIVE, rationale, max_uncertainty)

    if max_uncertainty <= Uncertainty.LOW and not history_errors:
        rationale.append(
            "every predicate is accurately estimable from the available "
            "statistics; the native optimizer's choice is already reliable"
        )
        return Recommendation(ProcessingMode.NATIVE, rationale, max_uncertainty)

    if max_uncertainty <= Uncertainty.MEDIUM and not history_errors:
        rationale.append(
            "estimation errors are expected to be small: estimate-seeded "
            "re-optimization converges quicker than origin-seeded bouquet "
            "discovery (§8)"
        )
        return Recommendation(ProcessingMode.REOPTIMIZE, rationale, max_uncertainty)

    rationale.append(
        "difficult estimation environment (high-uncertainty predicates): "
        "the bouquet's guaranteed MSO applies where estimates cannot be "
        "trusted at all"
    )
    if estimates_known_underestimates:
        rationale.append(
            "estimates are guaranteed underestimates, so the bouquet can "
            "start from the estimate instead of the origin (§8)"
        )
    return Recommendation(ProcessingMode.BOUQUET, rationale, max_uncertainty)
