"""Legacy high-level API (deprecated): compile a query into a bouquet
once, execute it many times — with persistence for the canned-query
scenario (§4.2).

.. deprecated::
    :class:`BouquetSession` predates the :mod:`repro.api` facade and is
    kept as a thin shim: constructing one emits a
    :class:`DeprecationWarning` and every method delegates to
    :func:`repro.api.compile_bouquet` / :func:`repro.api.execute`.
    New code should use ``repro.api`` directly (and :mod:`repro.serve`
    for cached, concurrent serving)::

        from repro.api import Catalog, compile_bouquet, execute

        catalog = Catalog(schema, statistics=stats, database=db)
        compiled = compile_bouquet(sql, catalog)
        result = execute(compiled, db)
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..catalog.schema import Schema
from ..catalog.statistics import DatabaseStatistics
from ..datagen.database import Database
from ..ess.space import ErrorDimension
from ..exceptions import BouquetError
from ..obs.tracer import NULL_TRACER, Tracer
from ..optimizer.cost_model import POSTGRES_COST_MODEL, CostModel
from ..optimizer.optimizer import Optimizer
from ..query.query import Query
from ..query.sql import parse_query
from .artifact import bouquet_from_dict, bouquet_to_dict
from .bouquet import PlanBouquet
from .runtime import BouquetRunResult


class BouquetSession:
    """Deprecated front door to the plan-bouquet pipeline.

    Use :mod:`repro.api` instead; this shim remains only so existing
    callers keep working.
    """

    def __init__(
        self,
        schema: Schema,
        statistics: Optional[DatabaseStatistics] = None,
        database: Optional[Database] = None,
        cost_model: CostModel = POSTGRES_COST_MODEL,
        lambda_: float = 0.2,
        ratio: float = 2.0,
        tracer: Optional[Tracer] = None,
        compile_engine: str = "batch",
    ):
        warnings.warn(
            "BouquetSession is deprecated; use repro.api.compile_bouquet / "
            "repro.api.execute (or repro.serve.BouquetServer for cached "
            "serving) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.schema = schema
        self.statistics = statistics
        self.database = database
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.optimizer = Optimizer(schema, statistics, cost_model, tracer=self.tracer)
        self.lambda_ = lambda_
        self.ratio = ratio
        self.compile_engine = compile_engine

    # ------------------------------------------------------------------

    def _catalog(self):
        from .. import api

        return api.Catalog(self.schema, self.statistics, self.database)

    def _config(self, resolution: Optional[int] = None, mode: str = "optimized"):
        from .. import api

        return api.BouquetConfig(
            ratio=self.ratio,
            lambda_=self.lambda_,
            resolution=resolution,
            mode=mode,
            compile_engine=self.compile_engine,
        )

    def compile(
        self,
        query: Union[str, Query],
        dimensions: Optional[Sequence[ErrorDimension]] = None,
        base_assignment: Optional[Mapping[str, float]] = None,
        resolution: Optional[int] = None,
    ) -> "CompiledQuery":
        """Run the compile-time phase (Figure 8, left half)."""
        from ..api import _compile_pipeline

        if isinstance(query, str):
            query = parse_query(query, self.schema)
        compiled = _compile_pipeline(
            query,
            self._catalog(),
            self._config(resolution),
            dimensions,
            base_assignment,
            self.tracer,
            None,
            self.optimizer,
            None,
            span_name="session.compile",
        )
        return CompiledQuery(session=self, query=query, bouquet=compiled.bouquet)

    def _default_dimensions(self, query: Query) -> List[ErrorDimension]:
        from ..api import default_error_dimensions

        return default_error_dimensions(query, self.schema, self.statistics)


@dataclass
class CompiledQuery:
    """A compiled bouquet bound to its (deprecated) session."""

    session: BouquetSession
    query: Query
    bouquet: PlanBouquet

    @property
    def space(self):
        return self.bouquet.space

    @property
    def mso_bound(self) -> float:
        return self.bouquet.mso_bound

    def _as_artifact(self):
        from .. import api

        config = api.BouquetConfig(
            ratio=self.bouquet.ratio, lambda_=self.bouquet.lambda_
        )
        return api.CompiledBouquet(
            query=self.query, bouquet=self.bouquet, config=config
        )

    # -- execution -------------------------------------------------------

    def execute(
        self,
        database: Optional[Database] = None,
        mode: str = "optimized",
    ) -> BouquetRunResult:
        """Run the bouquet for real against the attached (or given) data."""
        from .. import api

        database = database or self.session.database
        if database is None:
            raise BouquetError("no database attached; use simulate() instead")
        return api.execute(
            self._as_artifact(),
            database,
            mode=mode,
            tracer=self.session.tracer,
            span_name="session.execute",
        )

    def simulate(
        self, qa_values: Sequence[float], mode: str = "optimized"
    ) -> BouquetRunResult:
        """Cost-model-world run against a hypothetical actual location."""
        from .. import api

        return api.simulate(
            self._as_artifact(),
            qa_values,
            mode=mode,
            tracer=self.session.tracer,
            span_name="session.simulate",
        )

    # -- persistence -------------------------------------------------------

    def save(self, path: str):
        """Persist the compiled bouquet (plans, contours, cost fields)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    def to_dict(self) -> Dict:
        return bouquet_to_dict(self.query, self.bouquet)

    @staticmethod
    def load(path: str, session: BouquetSession, query: Query) -> "CompiledQuery":
        """Load a bouquet saved by :meth:`save`.

        The caller supplies the same logical query (validated against the
        stored predicate ids), mirroring the canned-query deployment: the
        SQL is known, the compile-time artifacts are precomputed.
        """
        with open(path) as handle:
            data = json.load(handle)
        return CompiledQuery.from_dict(data, session, query)

    @staticmethod
    def from_dict(data: Dict, session: BouquetSession, query: Query) -> "CompiledQuery":
        bouquet = bouquet_from_dict(data, session.optimizer, query)
        return CompiledQuery(session=session, query=query, bouquet=bouquet)
