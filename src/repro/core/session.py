"""High-level API: compile a query into a bouquet once, execute it many
times — with persistence for the canned-query scenario (§4.2).

:class:`BouquetSession` wires together the whole pipeline behind two
calls::

    session = BouquetSession(schema, statistics=stats, database=db)
    compiled = session.compile("select * from lineitem, orders, part "
                               "where p_partkey = l_partkey and "
                               "l_orderkey = o_orderkey and "
                               "p_retailprice < 1000")
    result = compiled.execute()          # real bouquet execution
    compiled.save("eq_bouquet.json")     # reuse across processes
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..catalog.schema import Schema
from ..catalog.statistics import DatabaseStatistics
from ..datagen.database import Database
from ..ess.diagram import PlanCostCache, PlanDiagram, coarse_subgrid
from ..ess.dimensioning import Uncertainty, select_error_dimensions
from ..ess.space import ErrorDimension, SelectivitySpace
from ..exceptions import BouquetError, QueryError
from ..obs.tracer import NULL_TRACER, Tracer
from ..optimizer.cost_model import POSTGRES_COST_MODEL, CostModel
from ..optimizer.optimizer import Optimizer
from ..optimizer.selectivity import actual_selectivities
from ..optimizer.serialize import plan_from_dict, plan_to_dict
from ..query.predicates import JoinPredicate
from ..query.query import Query
from ..query.sql import parse_query
from ..query.workload import SELECTION_DIM_RANGE, join_dim_maximum
from .bouquet import PlanBouquet, identify_bouquet
from .contours import Contour
from .runtime import AbstractExecutionService, BouquetRunner, BouquetRunResult

#: Grids larger than this use the candidate (Picasso-style) diagram.
_EXHAUSTIVE_LIMIT = 4096

_DEFAULT_RESOLUTIONS = {1: 64, 2: 24, 3: 10, 4: 6, 5: 5}


class BouquetSession:
    """Front door to the plan-bouquet pipeline."""

    def __init__(
        self,
        schema: Schema,
        statistics: Optional[DatabaseStatistics] = None,
        database: Optional[Database] = None,
        cost_model: CostModel = POSTGRES_COST_MODEL,
        lambda_: float = 0.2,
        ratio: float = 2.0,
        tracer: Optional[Tracer] = None,
    ):
        """``tracer`` (default: null) observes the whole pipeline: it is
        attached to the optimizer and threaded through diagram
        construction, bouquet identification, and every execution."""
        self.schema = schema
        self.statistics = statistics
        self.database = database
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.optimizer = Optimizer(schema, statistics, cost_model, tracer=self.tracer)
        self.lambda_ = lambda_
        self.ratio = ratio

    # ------------------------------------------------------------------

    def compile(
        self,
        query: Union[str, Query],
        dimensions: Optional[Sequence[ErrorDimension]] = None,
        base_assignment: Optional[Mapping[str, float]] = None,
        resolution: Optional[int] = None,
    ) -> "CompiledQuery":
        """Run the compile-time phase (Figure 8, left half).

        ``query`` may be SQL text (the SPJ fragment) or a ``Query``.
        Error dimensions default to the §4.1 uncertainty rules; the base
        assignment defaults to ground truth when a database is attached
        (non-error selectivities are assumed accurately estimable, §8)
        and to statistics-based estimates otherwise.
        """
        if isinstance(query, str):
            query = parse_query(query, self.schema)
        if dimensions is None:
            dimensions = self._default_dimensions(query)
        if not dimensions:
            raise BouquetError(
                "no error-prone dimensions identified; the native optimizer "
                "suffices for this query"
            )
        with self.tracer.span("session.compile", query=query.name) as span:
            if base_assignment is None:
                if self.database is not None:
                    base_assignment = actual_selectivities(query, self.database)
                else:
                    base_assignment = self.optimizer.estimated_assignment(query)
            res = resolution or _DEFAULT_RESOLUTIONS.get(len(dimensions), 5)
            space = SelectivitySpace(query, dimensions, res, base_assignment)
            if space.size <= _EXHAUSTIVE_LIMIT:
                diagram = PlanDiagram.exhaustive(self.optimizer, space)
            else:
                diagram = PlanDiagram.from_candidates(
                    self.optimizer, space, coarse_subgrid(space, per_dim=4)
                )
            bouquet = identify_bouquet(
                diagram, lambda_=self.lambda_, ratio=self.ratio
            )
            span.set(
                dimensions=space.dimensionality,
                grid=space.size,
                cardinality=bouquet.cardinality,
                contours=len(bouquet.contours),
                mso_bound=bouquet.mso_bound,
            )
        return CompiledQuery(session=self, query=query, bouquet=bouquet)

    def _default_dimensions(self, query: Query) -> List[ErrorDimension]:
        # Cascade through the §4.1 mechanisms: high-uncertainty predicates
        # first, then anything estimable-but-fallible, then the paper's
        # fallback — every predicate whose selectivity is evaluated at all.
        pids: List[str] = []
        for threshold in (Uncertainty.MEDIUM, Uncertainty.LOW, Uncertainty.NONE):
            pids = select_error_dimensions(query, self.statistics, threshold)
            if pids:
                break
        dims = []
        for pid in pids:
            pred = query.predicate(pid)
            if isinstance(pred, JoinPredicate):
                hi = join_dim_maximum(self.schema, pred)
                lo = hi / 1000.0
                label = f"{pred.left_table}x{pred.right_table}"
            else:
                lo, hi = SELECTION_DIM_RANGE
                label = f"{pred.table}.{pred.column}"
            dims.append(ErrorDimension(pid=pid, lo=lo, hi=hi, label=label))
        return dims


@dataclass
class CompiledQuery:
    """A compiled bouquet bound to its session."""

    session: BouquetSession
    query: Query
    bouquet: PlanBouquet

    @property
    def space(self) -> SelectivitySpace:
        return self.bouquet.space

    @property
    def mso_bound(self) -> float:
        return self.bouquet.mso_bound

    # -- execution -------------------------------------------------------

    def execute(
        self,
        database: Optional[Database] = None,
        mode: str = "optimized",
    ) -> BouquetRunResult:
        """Run the bouquet for real against the attached (or given) data."""
        from ..executor.engine import ExecutionEngine
        from ..executor.service import RealExecutionService

        database = database or self.session.database
        if database is None:
            raise BouquetError("no database attached; use simulate() instead")
        tracer = self.session.tracer
        with tracer.span("session.execute", query=self.query.name, mode=mode):
            engine = ExecutionEngine(
                database,
                cost_model=self.session.optimizer.cost_model,
                tracer=tracer,
            )
            service = RealExecutionService(self.bouquet, engine)
            return BouquetRunner(
                self.bouquet, service, mode=mode, tracer=tracer
            ).run()

    def simulate(
        self, qa_values: Sequence[float], mode: str = "optimized"
    ) -> BouquetRunResult:
        """Cost-model-world run against a hypothetical actual location."""
        tracer = self.session.tracer
        with tracer.span("session.simulate", query=self.query.name, mode=mode):
            service = AbstractExecutionService(self.bouquet, qa_values)
            return BouquetRunner(
                self.bouquet, service, mode=mode, tracer=tracer
            ).run()

    # -- persistence -------------------------------------------------------

    def save(self, path: str):
        """Persist the compiled bouquet (plans, contours, cost fields)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    def to_dict(self) -> Dict:
        bouquet = self.bouquet
        diagram = bouquet.diagram
        posp = diagram.posp_plan_ids
        plan_ids = sorted(set(posp) | set(bouquet.plan_ids))
        return {
            "format": "repro.bouquet.v1",
            "query_name": self.query.name,
            "predicates": sorted(self.query.predicate_ids),
            "lambda": bouquet.lambda_,
            "ratio": bouquet.ratio,
            "dimensions": [
                {"pid": d.pid, "lo": d.lo, "hi": d.hi, "label": d.label}
                for d in self.space.dimensions
            ],
            "shape": list(self.space.shape),
            "base_assignment": self.space.base_assignment,
            "plans": {
                str(pid): plan_to_dict(bouquet.registry.plan(pid))
                for pid in plan_ids
            },
            "diagram_plan_ids": diagram.plan_ids.ravel().tolist(),
            "diagram_costs": diagram.costs.ravel().tolist(),
            "contours": [
                {
                    "index": c.index,
                    "cost": c.cost,
                    "plan_at": [
                        {"location": list(loc), "plan": pid}
                        for loc, pid in sorted(c.plan_at.items())
                    ],
                }
                for c in bouquet.contours
            ],
        }

    @staticmethod
    def load(path: str, session: BouquetSession, query: Query) -> "CompiledQuery":
        """Load a bouquet saved by :meth:`save`.

        The caller supplies the same logical query (validated against the
        stored predicate ids), mirroring the canned-query deployment: the
        SQL is known, the compile-time artifacts are precomputed.
        """
        with open(path) as handle:
            data = json.load(handle)
        return CompiledQuery.from_dict(data, session, query)

    @staticmethod
    def from_dict(data: Dict, session: BouquetSession, query: Query) -> "CompiledQuery":
        if data.get("format") != "repro.bouquet.v1":
            raise BouquetError("unrecognized bouquet file format")
        if sorted(query.predicate_ids) != data["predicates"]:
            raise QueryError(
                "supplied query's predicates do not match the saved bouquet"
            )
        dims = [
            ErrorDimension(d["pid"], d["lo"], d["hi"], d.get("label", ""))
            for d in data["dimensions"]
        ]
        shape = tuple(data["shape"])
        space = SelectivitySpace(query, dims, list(shape), data["base_assignment"])

        registry = session.optimizer.registry(query)
        id_map: Dict[int, int] = {}
        for old_id_str, plan_data in sorted(
            data["plans"].items(), key=lambda kv: int(kv[0])
        ):
            plan = plan_from_dict(plan_data)
            new_id, _ = registry.register(plan)
            id_map[int(old_id_str)] = new_id

        raw_ids = np.array(data["diagram_plan_ids"], dtype=np.int64).reshape(shape)
        remap = np.vectorize(lambda pid: id_map[int(pid)])
        plan_ids = remap(raw_ids)
        costs = np.array(data["diagram_costs"], dtype=float).reshape(shape)
        cache = PlanCostCache(space, session.optimizer, registry)
        diagram = PlanDiagram(space, plan_ids, costs, registry, cache)

        contours = []
        for entry in data["contours"]:
            plan_at = {
                tuple(item["location"]): id_map[int(item["plan"])]
                for item in entry["plan_at"]
            }
            contours.append(
                Contour(
                    index=entry["index"],
                    cost=entry["cost"],
                    locations=list(plan_at),
                    plan_at=plan_at,
                )
            )
        lambda_ = data["lambda"]
        budgets = [(1.0 + lambda_) * c.cost for c in contours]
        plan_set = sorted({pid for c in contours for pid in c.plan_ids})
        bouquet = PlanBouquet(
            space=space,
            diagram=diagram,
            registry=registry,
            contours=contours,
            budgets=budgets,
            plan_ids=plan_set,
            lambda_=lambda_,
            ratio=data["ratio"],
        )
        return CompiledQuery(session=session, query=query, bouquet=bouquet)
