"""ESS-wide simulation of bouquet executions.

The robustness metrics (MSO/ASO/MaxHarm) need the bouquet's total
execution cost at *every* possible actual location ``qa``.  For the basic
algorithm this cost field is computed fully vectorized; the optimized
algorithm defaults to the vectorized cohort sweep engine in
:mod:`repro.sweep` with the original per-location
:class:`~repro.core.runtime.BouquetRunner` loop kept as the
``engine="reference"`` ground truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..ess.space import Location
from ..exceptions import BouquetError
from .bouquet import PlanBouquet
from .runtime import (
    AbstractExecutionService,
    BouquetRunResult,
    BouquetRunner,
)


def simulate_at(
    bouquet: PlanBouquet,
    qa_location: Location,
    mode: str = "optimized",
    crossing: Optional[str] = None,
) -> BouquetRunResult:
    """Simulate one bouquet execution for a query actually located at
    ``qa_location`` (a grid index), in the cost-model world.

    ``crossing`` picks the contour-crossing scheduler (see
    :mod:`repro.sched`); ``None`` means sequential."""
    qa_values = bouquet.space.selectivities_at(qa_location)
    service = AbstractExecutionService(bouquet, qa_values)
    runner = BouquetRunner(bouquet, service, mode=mode, crossing=crossing)
    result = runner.run()
    if not result.completed:
        raise BouquetError(
            f"bouquet failed to complete at {qa_location} — contour coverage bug"
        )
    return result


def basic_cost_field(bouquet: PlanBouquet) -> np.ndarray:
    """Total basic-bouquet cost at every grid location, vectorized.

    Mirrors Figure 7 exactly: per contour, resident plans run in plan-id
    order under the (λ-inflated) budget; a failed attempt costs the full
    budget, a completing one costs its true cost.
    """
    cache = bouquet.cost_cache
    shape = bouquet.space.shape
    total = np.zeros(shape, dtype=float)
    done = np.zeros(shape, dtype=bool)
    final_cost = np.zeros(shape, dtype=float)
    for contour, budget in zip(bouquet.contours, bouquet.budgets):
        for plan_id in contour.plan_ids:
            if done.all():
                break
            costs = cache.cost_array(plan_id)
            completes = (~done) & (costs <= budget)
            total[completes] += costs[completes]
            final_cost[completes] = costs[completes]
            running = ~done & ~completes
            total[running] += budget
            done |= completes
        if done.all():
            break
    if not done.all():
        raise BouquetError("basic bouquet did not terminate everywhere")
    return total


def optimized_cost_field(
    bouquet: PlanBouquet,
    locations: Optional[Iterable[Location]] = None,
    crossing: Optional[str] = None,
    engine: str = "sweep",
    workers: Optional[int] = None,
) -> Dict[Location, float]:
    """Optimized-bouquet total cost per location.

    ``locations`` defaults to the whole grid; pass a sample for very
    large spaces.  ``crossing`` picks the contour-crossing scheduler
    (see :mod:`repro.sched`); ``None`` means sequential.

    ``engine`` selects the evaluation strategy: ``"sweep"`` (default)
    uses the vectorized cohort engine in :mod:`repro.sweep` and memoizes
    results on the bouquet; ``"reference"`` keeps the original
    per-location driver loop (the ground truth the sweep engine is
    benchmarked against).  ``workers`` pool-shards the sweep residue.
    """
    if engine == "sweep":
        # Imported lazily: repro.sweep itself leans on this module's
        # reference path for residue locations.
        from ..sweep import sweep_cost_field

        return sweep_cost_field(
            bouquet, locations=locations, crossing=crossing, workers=workers
        )
    if engine != "reference":
        raise BouquetError(
            f"unknown optimized_cost_field engine {engine!r} "
            "(expected 'sweep' or 'reference')"
        )
    if locations is None:
        locations = list(bouquet.space.locations())
    field: Dict[Location, float] = {}
    for location in locations:
        result = simulate_at(bouquet, location, mode="optimized", crossing=crossing)
        field[location] = result.total_cost
    return field


def suboptimality_field(cost_field: np.ndarray, pic: np.ndarray) -> np.ndarray:
    """SubOpt(*, qa) = bouquet cost / optimal cost, elementwise."""
    return cost_field / pic


def sample_locations(
    space, count: int, seed: int = 0
) -> List[Location]:
    """Deterministic uniform sample of grid locations (without replacement
    when the grid is small enough)."""
    rng = np.random.default_rng(seed)
    size = space.size
    if count >= size:
        return list(space.locations())
    flat = rng.choice(size, size=count, replace=False)
    return [tuple(int(i) for i in np.unravel_index(f, space.shape)) for f in flat]
