"""Versioned (de)serialization of compiled bouquets.

The compile product of the bouquet pipeline is a pure function of
(query, catalog statistics, compile knobs), which makes it a reusable
*artifact*: the paper's §4.2 canned-query scenario compiles offline and
executes forever, and the serving layer (:mod:`repro.serve`) caches
artifacts keyed by a content hash of those inputs.

This module owns the wire format.  ``repro.bouquet.v1`` is the original
session-level format (plans, diagram fields, contours); it is kept
byte-compatible so artifacts saved by earlier versions keep loading.
:class:`repro.api.CompiledBouquet` delegates here (as did the retired
``BouquetSession``-era ``CompiledQuery``, which wrote the same format).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ess.diagram import PlanCostCache, PlanDiagram
from ..ess.space import ErrorDimension, SelectivitySpace
from ..exceptions import BouquetError, QueryError
from ..optimizer.optimizer import Optimizer
from ..optimizer.serialize import plan_from_dict, plan_to_dict
from ..query.query import Query
from .bouquet import PlanBouquet
from .contours import Contour

#: Format tag of the core bouquet payload (unchanged since v1 for
#: backward compatibility with previously saved artifacts).
BOUQUET_FORMAT = "repro.bouquet.v1"


def bouquet_to_dict(query: Query, bouquet: PlanBouquet) -> Dict:
    """Serialize a compiled bouquet (plans, contours, cost fields)."""
    diagram = bouquet.diagram
    posp = diagram.posp_plan_ids
    plan_ids = sorted(set(posp) | set(bouquet.plan_ids))
    space = bouquet.space
    return {
        "format": BOUQUET_FORMAT,
        "query_name": query.name,
        "predicates": sorted(query.predicate_ids),
        "lambda": bouquet.lambda_,
        "ratio": bouquet.ratio,
        "dimensions": [
            {"pid": d.pid, "lo": d.lo, "hi": d.hi, "label": d.label}
            for d in space.dimensions
        ],
        "shape": list(space.shape),
        "base_assignment": space.base_assignment,
        "plans": {
            str(pid): plan_to_dict(bouquet.registry.plan(pid))
            for pid in plan_ids
        },
        "diagram_plan_ids": diagram.plan_ids.ravel().tolist(),
        "diagram_costs": diagram.costs.ravel().tolist(),
        "contours": [
            {
                "index": c.index,
                "cost": c.cost,
                "plan_at": [
                    {"location": list(loc), "plan": pid}
                    for loc, pid in sorted(c.plan_at.items())
                ],
            }
            for c in bouquet.contours
        ],
    }


def bouquet_from_dict(data: Dict, optimizer: Optimizer, query: Query) -> PlanBouquet:
    """Reconstruct a :class:`PlanBouquet` from :func:`bouquet_to_dict` output.

    The caller supplies the same logical query (validated against the
    stored predicate ids), mirroring the canned-query deployment: the SQL
    is known, the compile-time artifacts are precomputed.  Plan ids are
    remapped through ``optimizer``'s registry so loaded plans coexist
    with freshly optimized ones.
    """
    if data.get("format") != BOUQUET_FORMAT:
        raise BouquetError("unrecognized bouquet file format")
    if sorted(query.predicate_ids) != data["predicates"]:
        raise QueryError(
            "supplied query's predicates do not match the saved bouquet"
        )
    dims = [
        ErrorDimension(d["pid"], d["lo"], d["hi"], d.get("label", ""))
        for d in data["dimensions"]
    ]
    shape = tuple(data["shape"])
    space = SelectivitySpace(query, dims, list(shape), data["base_assignment"])

    registry = optimizer.registry(query)
    id_map: Dict[int, int] = {}
    for old_id_str, plan_data in sorted(
        data["plans"].items(), key=lambda kv: int(kv[0])
    ):
        plan = plan_from_dict(plan_data)
        new_id, _ = registry.register(plan)
        id_map[int(old_id_str)] = new_id

    raw_ids = np.array(data["diagram_plan_ids"], dtype=np.int64).reshape(shape)
    remap = np.vectorize(lambda pid: id_map[int(pid)])
    plan_ids = remap(raw_ids)
    costs = np.array(data["diagram_costs"], dtype=float).reshape(shape)
    cache = PlanCostCache(space, optimizer, registry)
    diagram = PlanDiagram(space, plan_ids, costs, registry, cache)

    contours = []
    for entry in data["contours"]:
        plan_at = {
            tuple(item["location"]): id_map[int(item["plan"])]
            for item in entry["plan_at"]
        }
        contours.append(
            Contour(
                index=entry["index"],
                cost=entry["cost"],
                locations=list(plan_at),
                plan_at=plan_at,
            )
        )
    lambda_ = data["lambda"]
    budgets = [(1.0 + lambda_) * c.cost for c in contours]
    plan_set = sorted({pid for c in contours for pid in c.plan_ids})
    return PlanBouquet(
        space=space,
        diagram=diagram,
        registry=registry,
        contours=contours,
        budgets=budgets,
        plan_ids=plan_set,
        lambda_=lambda_,
        ratio=data["ratio"],
    )
