"""Isocost (IC) contour machinery (§3.1, §3.2).

Contour *costs* form a geometric progression with ratio ``r`` (r=2 is
optimal, Theorem 1) satisfying the paper's boundary conditions
``a/r < Cmin <= IC_1`` and ``IC_m = Cmax``.  Contour *locations* on the
discrete ESS grid are the maximal elements (under componentwise
dominance) of the region ``{q : PIC(q) <= IC_k}``: because the PIC is
monotone, every location inside the region is dominated by some contour
location, so executing the contour's plans with budget IC_k is guaranteed
to detect whether the query lies within the contour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..exceptions import BouquetError
from ..ess.diagram import PlanDiagram
from ..ess.space import Location
from ..obs.tracer import NULL_TRACER, Tracer


def _diagram_tracer(diagram: PlanDiagram) -> Tracer:
    """The tracer attached to the diagram's optimizer (null if none)."""
    if diagram.cache is not None:
        return diagram.cache.optimizer.tracer
    return NULL_TRACER

#: The optimal geometric ratio (Theorem 1: r=2 minimizes r²/(r−1)).
OPTIMAL_RATIO = 2.0


def contour_costs(cmin: float, cmax: float, ratio: float = OPTIMAL_RATIO) -> List[float]:
    """Geometric IC progression anchored at Cmax.

    ``IC_k = Cmax * ratio**(k - m)`` with ``m = floor(log_r(Cmax/Cmin)) + 1``,
    which satisfies ``IC_1 >= Cmin > IC_1 / r`` and ``IC_m = Cmax``.
    """
    if not (0 < cmin <= cmax):
        raise BouquetError(f"invalid cost range [{cmin}, {cmax}]")
    if ratio <= 1.0:
        raise BouquetError("contour ratio must exceed 1")
    if cmax == cmin:
        return [cmax]
    # m satisfies r^(m-1) <= Cmax/Cmin < r^m, so that Cmin <= IC_1 and
    # IC_1 / r < Cmin; the epsilon absorbs float noise just below integers.
    span = math.log(cmax / cmin, ratio)
    m = int(math.floor(span + 1e-9)) + 1
    return [cmax * ratio ** (k - m) for k in range(1, m + 1)]


def maximal_region_frontier(costs: np.ndarray, ic: float) -> List[Location]:
    """Maximal elements of ``{q : costs[q] <= ic}`` on the grid.

    With a monotone cost field, a location is maximal iff none of its +1
    axis successors stays within the region.
    """
    inside = costs <= ic + 1e-9 * ic
    if not inside.any():
        return []
    frontier = inside.copy()
    for axis in range(costs.ndim):
        # successor_inside[q] = inside[q + e_axis] (False at the boundary).
        successor_inside = np.zeros_like(inside)
        src = [slice(None)] * costs.ndim
        dst = [slice(None)] * costs.ndim
        src[axis] = slice(1, None)
        dst[axis] = slice(0, -1)
        successor_inside[tuple(dst)] = inside[tuple(src)]
        frontier &= ~successor_inside
    return [tuple(int(i) for i in idx) for idx in np.argwhere(frontier)]


@dataclass
class Contour:
    """One isocost step: its cost, grid locations, and resident plans."""

    index: int  # 1-based step number k
    cost: float  # IC_k (uninflated)
    locations: List[Location]
    #: location -> plan id responsible for it (post anorexic reduction).
    plan_at: Dict[Location, int] = field(default_factory=dict)

    @property
    def plan_ids(self) -> List[int]:
        return sorted(set(self.plan_at.values()))

    @property
    def density(self) -> int:
        """Number of distinct plans on this contour (n_k in §3.2)."""
        return len(set(self.plan_at.values()))

    def locations_of(self, plan_id: int) -> List[Location]:
        return [loc for loc, pid in self.plan_at.items() if pid == plan_id]


def build_contours(
    diagram: PlanDiagram,
    ratio: float = OPTIMAL_RATIO,
) -> List[Contour]:
    """Slice the PIC with geometric IC steps and collect their frontiers.

    Plan residency is the diagram's (optimal) choice at each frontier
    location; anorexic reduction is applied separately by the bouquet
    construction.
    """
    costs = diagram.costs
    steps = contour_costs(diagram.cmin, diagram.cmax, ratio)
    tracer = _diagram_tracer(diagram)
    contours: List[Contour] = []
    for k, ic in enumerate(steps, start=1):
        locations = maximal_region_frontier(costs, ic)
        plan_at = {loc: diagram.plan_at(loc) for loc in locations}
        contour = Contour(index=k, cost=ic, locations=locations, plan_at=plan_at)
        if tracer.enabled:
            tracer.event(
                "compile.contour",
                index=k,
                cost=ic,
                locations=len(locations),
                plans=contour.density,
            )
        contours.append(contour)
    return contours


def densest_contour_plans(contours: Sequence[Contour]) -> int:
    """ρ — the plan cardinality of the densest contour (§3.2)."""
    if not contours:
        raise BouquetError("no contours")
    return max(contour.density for contour in contours)
