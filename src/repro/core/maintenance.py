"""Incremental bouquet maintenance under database scale-up (§8).

When the database grows, the original ESS no longer covers the error
space (cost surfaces shift; PK-FK dimension ceilings move with the PK
cardinalities).  Rebuilding the bouquet from scratch repeats mostly
redundant work — the paper flags incremental maintenance as an open
problem.  The strategy implemented here:

1. carry the old bouquet's *plan structures* over (they remain valid
   plans — only their costs changed) and re-cost them on the new ESS;
2. seed a small number of fresh optimizer calls on a coarse subgrid to
   discover any genuinely new plans the grown database demands;
3. rebuild contours/bouquet from the merged candidate set.

The refresh typically spends an order of magnitude fewer optimizer calls
than a from-scratch exhaustive rebuild while producing a bouquet whose
guarantee is intact (the candidate-diagram PIC upper-bounds the true
PIC, so measured MSO is still checked against the bound downstream).

When the refresh does *not* change the ESS shape — a statistics update
rather than a scale-up — :func:`refresh_bouquet` routes to the
delta-driven engine (:mod:`repro.drift`) instead: only drift-suspect
locations are re-planned and the result is bit-identical to a full
rebuild, not an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ess.diagram import PlanDiagram, coarse_subgrid
from ..ess.space import SelectivitySpace
from ..exceptions import BouquetError
from ..optimizer.optimizer import Optimizer
from .bouquet import PlanBouquet, identify_bouquet


@dataclass
class RefreshResult:
    """Outcome of an incremental bouquet refresh.

    ``strategy`` records which engine ran: ``"seed-merge"`` (the
    scale-up path below), or the :mod:`repro.drift` engine's
    ``"delta"`` / ``"identity"`` when the ESS shape survived the
    refresh.  ``replanned_locations`` counts the grid locations the
    delta engine actually sent through the DP (0 on the seed path,
    whose cost unit is ``optimizer_calls``).
    """

    bouquet: PlanBouquet
    optimizer_calls: int
    reused_plan_count: int
    new_plan_count: int
    strategy: str = "seed-merge"
    replanned_locations: int = 0

    @property
    def total_candidates(self) -> int:
        return self.reused_plan_count + self.new_plan_count


def refresh_bouquet(
    old_bouquet: PlanBouquet,
    optimizer: Optimizer,
    new_space: SelectivitySpace,
    lambda_: Optional[float] = None,
    ratio: Optional[float] = None,
    seeds_per_dim: int = 3,
    artifact_store=None,
    engine: str = "auto",
) -> RefreshResult:
    """Rebuild a bouquet on ``new_space`` reusing the old bouquet's plans.

    ``optimizer`` must target the *new* (scaled) schema; ``new_space``
    must be built over the same query shape (same predicate pids) so the
    old plan structures remain meaningful.

    ``engine`` picks the refresh strategy: ``"auto"`` (default) runs the
    delta engine (:func:`repro.drift.refresh.delta_refresh`) whenever the
    ESS shape is unchanged — same dimensions, same grid, exhaustive-sized
    — and falls back to the seed-and-merge path otherwise; ``"delta"``
    and ``"seed"`` force one or the other (``"delta"`` raises when the
    shapes diverge).

    ``artifact_store`` may be a
    :class:`repro.serve.BouquetArtifactStore`; a refresh means the
    statistics world view changed, so every cached artifact whose
    statistics fingerprint differs from ``optimizer.statistics`` is
    dropped before the rebuild.
    """
    if engine not in ("auto", "delta", "seed"):
        raise BouquetError(f"unknown refresh engine {engine!r}")
    if artifact_store is not None:
        from ..serve.fingerprint import statistics_fingerprint

        artifact_store.invalidate_statistics(
            statistics_fingerprint(optimizer.statistics)
        )
    old_pids = {dim.pid for dim in old_bouquet.space.dimensions}
    new_pids = {dim.pid for dim in new_space.dimensions}
    if old_pids != new_pids:
        raise BouquetError(
            "new ESS has different error dimensions; refresh is not applicable"
        )
    lambda_ = old_bouquet.lambda_ if lambda_ is None else lambda_
    ratio = old_bouquet.ratio if ratio is None else ratio

    if engine in ("auto", "delta"):
        result = _try_delta_refresh(
            old_bouquet, optimizer, new_space, lambda_, ratio, engine
        )
        if result is not None:
            return result

    registry = optimizer.registry(new_space.query)
    reused_ids = set()
    for plan_id in old_bouquet.plan_ids:
        plan = old_bouquet.registry.plan(plan_id)
        new_id, _ = registry.register(plan)
        reused_ids.add(new_id)

    # A handful of fresh optimizations to catch plans the scale-up needs.
    calls = 0
    seeded_ids = set()
    for location in coarse_subgrid(new_space, per_dim=seeds_per_dim):
        result = optimizer.optimize(
            new_space.query, assignment=new_space.assignment_at(location)
        )
        calls += 1
        seeded_ids.add(result.plan_id)

    candidate_ids = sorted(reused_ids | seeded_ids)
    diagram = _diagram_from_candidate_ids(optimizer, new_space, candidate_ids)
    bouquet = identify_bouquet(diagram, lambda_=lambda_, ratio=ratio)
    return RefreshResult(
        bouquet=bouquet,
        optimizer_calls=calls,
        reused_plan_count=len(reused_ids),
        new_plan_count=len(seeded_ids - reused_ids),
    )


def _try_delta_refresh(
    old_bouquet: PlanBouquet,
    optimizer: Optimizer,
    new_space: SelectivitySpace,
    lambda_: float,
    ratio: float,
    engine: str,
) -> Optional[RefreshResult]:
    """Run the :mod:`repro.drift` engine when the ESS shape is unchanged.

    Returns ``None`` (letting the seed-and-merge path run) when the new
    space has a different grid, different dimension ranges, or is too
    large for the exhaustive diagram the delta engine patches against —
    unless ``engine="delta"`` forces it, in which case incompatibility
    raises.
    """
    from ..api import EXHAUSTIVE_LIMIT
    from ..drift.refresh import delta_refresh
    from ..exceptions import DriftError

    old_space = old_bouquet.space
    compatible = (
        tuple((d.pid, d.lo, d.hi) for d in old_space.dimensions)
        == tuple((d.pid, d.lo, d.hi) for d in new_space.dimensions)
        and old_space.shape == new_space.shape
        and new_space.size <= EXHAUSTIVE_LIMIT
    )
    if not compatible:
        if engine == "delta":
            raise BouquetError(
                "delta refresh requires an unchanged, exhaustive-sized ESS "
                "(same dimensions, same grid shape)"
            )
        return None
    try:
        result = delta_refresh(
            old_bouquet, optimizer, new_space, lambda_=lambda_, ratio=ratio
        )
    except DriftError:
        if engine == "delta":
            raise
        return None
    old_sigs = {
        old_bouquet.registry.plan(p).canonical_signature()
        for p in old_bouquet.plan_ids
    }
    new_sigs = {
        result.bouquet.registry.plan(p).canonical_signature()
        for p in result.bouquet.plan_ids
    }
    return RefreshResult(
        bouquet=result.bouquet,
        optimizer_calls=result.planned_locations,
        reused_plan_count=len(old_sigs & new_sigs),
        new_plan_count=len(new_sigs - old_sigs),
        strategy=result.strategy,
        replanned_locations=result.planned_locations,
    )


def _diagram_from_candidate_ids(
    optimizer: Optimizer, space: SelectivitySpace, candidate_ids: List[int]
) -> PlanDiagram:
    """Argmin diagram over an explicit candidate plan-id set."""
    import numpy as np

    from ..ess.diagram import PlanCostCache

    registry = optimizer.registry(space.query)
    cache = PlanCostCache(space, optimizer, registry)
    stacked = np.stack([cache.cost_array(pid) for pid in candidate_ids])
    argmin = np.argmin(stacked, axis=0)
    costs = np.min(stacked, axis=0)
    lookup = np.array(candidate_ids, dtype=np.int64)
    return PlanDiagram(space, lookup[argmin], costs, registry, cache)
