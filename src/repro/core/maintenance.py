"""Incremental bouquet maintenance under database scale-up (§8).

When the database grows, the original ESS no longer covers the error
space (cost surfaces shift; PK-FK dimension ceilings move with the PK
cardinalities).  Rebuilding the bouquet from scratch repeats mostly
redundant work — the paper flags incremental maintenance as an open
problem.  The strategy implemented here:

1. carry the old bouquet's *plan structures* over (they remain valid
   plans — only their costs changed) and re-cost them on the new ESS;
2. seed a small number of fresh optimizer calls on a coarse subgrid to
   discover any genuinely new plans the grown database demands;
3. rebuild contours/bouquet from the merged candidate set.

The refresh typically spends an order of magnitude fewer optimizer calls
than a from-scratch exhaustive rebuild while producing a bouquet whose
guarantee is intact (the candidate-diagram PIC upper-bounds the true
PIC, so measured MSO is still checked against the bound downstream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ess.diagram import PlanDiagram, coarse_subgrid
from ..ess.space import SelectivitySpace
from ..exceptions import BouquetError
from ..optimizer.optimizer import Optimizer
from .bouquet import PlanBouquet, identify_bouquet


@dataclass
class RefreshResult:
    """Outcome of an incremental bouquet refresh."""

    bouquet: PlanBouquet
    optimizer_calls: int
    reused_plan_count: int
    new_plan_count: int

    @property
    def total_candidates(self) -> int:
        return self.reused_plan_count + self.new_plan_count


def refresh_bouquet(
    old_bouquet: PlanBouquet,
    optimizer: Optimizer,
    new_space: SelectivitySpace,
    lambda_: Optional[float] = None,
    ratio: Optional[float] = None,
    seeds_per_dim: int = 3,
    artifact_store=None,
) -> RefreshResult:
    """Rebuild a bouquet on ``new_space`` reusing the old bouquet's plans.

    ``optimizer`` must target the *new* (scaled) schema; ``new_space``
    must be built over the same query shape (same predicate pids) so the
    old plan structures remain meaningful.

    ``artifact_store`` may be a
    :class:`repro.serve.BouquetArtifactStore`; a refresh means the
    statistics world view changed, so every cached artifact whose
    statistics fingerprint differs from ``optimizer.statistics`` is
    dropped before the rebuild.
    """
    if artifact_store is not None:
        from ..serve.fingerprint import statistics_fingerprint

        artifact_store.invalidate_statistics(
            statistics_fingerprint(optimizer.statistics)
        )
    old_pids = {dim.pid for dim in old_bouquet.space.dimensions}
    new_pids = {dim.pid for dim in new_space.dimensions}
    if old_pids != new_pids:
        raise BouquetError(
            "new ESS has different error dimensions; refresh is not applicable"
        )
    lambda_ = old_bouquet.lambda_ if lambda_ is None else lambda_
    ratio = old_bouquet.ratio if ratio is None else ratio

    registry = optimizer.registry(new_space.query)
    reused_ids = set()
    for plan_id in old_bouquet.plan_ids:
        plan = old_bouquet.registry.plan(plan_id)
        new_id, _ = registry.register(plan)
        reused_ids.add(new_id)

    # A handful of fresh optimizations to catch plans the scale-up needs.
    calls = 0
    seeded_ids = set()
    for location in coarse_subgrid(new_space, per_dim=seeds_per_dim):
        result = optimizer.optimize(
            new_space.query, assignment=new_space.assignment_at(location)
        )
        calls += 1
        seeded_ids.add(result.plan_id)

    candidate_ids = sorted(reused_ids | seeded_ids)
    diagram = _diagram_from_candidate_ids(optimizer, new_space, candidate_ids)
    bouquet = identify_bouquet(diagram, lambda_=lambda_, ratio=ratio)
    return RefreshResult(
        bouquet=bouquet,
        optimizer_calls=calls,
        reused_plan_count=len(reused_ids),
        new_plan_count=len(seeded_ids - reused_ids),
    )


def _diagram_from_candidate_ids(
    optimizer: Optimizer, space: SelectivitySpace, candidate_ids: List[int]
) -> PlanDiagram:
    """Argmin diagram over an explicit candidate plan-id set."""
    import numpy as np

    from ..ess.diagram import PlanCostCache

    registry = optimizer.registry(space.query)
    cache = PlanCostCache(space, optimizer, registry)
    stacked = np.stack([cache.cost_array(pid) for pid in candidate_ids])
    argmin = np.argmin(stacked, axis=0)
    costs = np.min(stacked, axis=0)
    lookup = np.array(candidate_ids, dtype=np.int64)
    return PlanDiagram(space, lookup[argmin], costs, registry, cache)
