"""Bouquet validation: empirically check the guarantees a bouquet makes.

Downstream users deploying a compiled bouquet can run
:func:`validate_bouquet` to verify, on the compile-time cost model:

* **coverage** — every contour's frontier dominates its region, so the
  basic algorithm terminates everywhere;
* **the MSO guarantee** — the simulated bouquet cost at every (or a
  sampled subset of) grid location stays within the theoretical bound;
* **budget sanity** — contour budgets form the expected λ-inflated
  geometric progression;
* **anorexic conformance** — each contour plan is within (1+λ) of
  optimal at every location it owns.

The report is machine-readable and prints compactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..exceptions import BouquetError
from .bouquet import PlanBouquet
from .simulation import basic_cost_field, sample_locations, simulate_at


@dataclass
class ValidationIssue:
    """One violated expectation."""

    kind: str
    message: str

    def __str__(self):
        return f"[{self.kind}] {self.message}"


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_bouquet`."""

    issues: List[ValidationIssue] = field(default_factory=list)
    checked_locations: int = 0
    measured_mso: float = 0.0
    bound: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.issues

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        lines = [
            f"bouquet validation: {status}; "
            f"measured MSO {self.measured_mso:.2f} vs bound {self.bound:.2f} "
            f"over {self.checked_locations} locations"
        ]
        lines.extend(str(issue) for issue in self.issues)
        return "\n".join(lines)


def validate_bouquet(
    bouquet: PlanBouquet,
    sample: Optional[int] = None,
    check_optimized: bool = False,
    seed: int = 0,
) -> ValidationReport:
    """Validate a compiled bouquet against its own guarantees.

    ``sample`` limits the per-location simulation to that many grid
    points (default: the full grid for the basic algorithm).  With
    ``check_optimized`` the optimized runtime is also exercised on the
    sampled locations.
    """
    report = ValidationReport(bound=bouquet.mso_bound)
    issues = report.issues
    space = bouquet.space
    diagram = bouquet.diagram

    # --- budget progression ---------------------------------------------
    inflation = 1.0 + bouquet.lambda_
    for contour, budget in zip(bouquet.contours, bouquet.budgets):
        if abs(budget - inflation * contour.cost) > 1e-6 * budget:
            issues.append(
                ValidationIssue(
                    "budget",
                    f"IC{contour.index} budget {budget:.4g} != "
                    f"(1+λ)·{contour.cost:.4g}",
                )
            )
    costs = [c.cost for c in bouquet.contours]
    for a, b in zip(costs, costs[1:]):
        if not (abs(b / a - bouquet.ratio) < 1e-6):
            issues.append(
                ValidationIssue(
                    "budget", f"contour ratio {b / a:.4f} != r={bouquet.ratio:g}"
                )
            )

    # --- coverage ---------------------------------------------------------
    # Every grid location must be dominated by a frontier location of the
    # first contour whose cost reaches it.
    final = bouquet.contours[-1]
    corner = space.corner
    if not any(space.dominates(loc, corner) for loc in final.locations):
        issues.append(
            ValidationIssue(
                "coverage",
                "final contour does not dominate the ESS corner; the basic "
                "algorithm may not terminate",
            )
        )

    # --- anorexic conformance ----------------------------------------------
    cache = bouquet.cost_cache
    threshold = (1.0 + bouquet.lambda_) * (1.0 + 1e-9)
    for contour in bouquet.contours:
        for location, plan_id in contour.plan_at.items():
            actual = cache.cost(plan_id, location)
            optimal = diagram.cost_at(location)
            if actual > threshold * optimal:
                issues.append(
                    ValidationIssue(
                        "anorexic",
                        f"plan P{plan_id} at {location} costs "
                        f"{actual / optimal:.3f}x optimal (> 1+λ)",
                    )
                )

    # --- MSO guarantee ------------------------------------------------------
    try:
        field_costs = basic_cost_field(bouquet)
    except BouquetError as exc:
        issues.append(
            ValidationIssue("coverage", f"basic algorithm cannot terminate: {exc}")
        )
    else:
        subopt = field_costs / diagram.costs
        report.measured_mso = float(subopt.max())
        report.checked_locations = int(subopt.size)
        if report.measured_mso > bouquet.mso_bound * (1 + 1e-6):
            worst = int(subopt.argmax())
            issues.append(
                ValidationIssue(
                    "mso",
                    f"basic bouquet exceeds its bound: {report.measured_mso:.2f} "
                    f"> {bouquet.mso_bound:.2f} (flat index {worst})",
                )
            )

    # --- optimized runtime (sampled) -----------------------------------------
    if check_optimized:
        locations = sample_locations(space, sample or 16, seed=seed)
        for location in locations:
            try:
                result = simulate_at(bouquet, location, mode="optimized")
            except BouquetError as exc:
                issues.append(
                    ValidationIssue("optimized", f"failed at {location}: {exc}")
                )
                continue
            limit = bouquet.mso_bound * diagram.cost_at(location) * (1 + 1e-6)
            if result.total_cost > limit:
                issues.append(
                    ValidationIssue(
                        "optimized",
                        f"optimized run at {location} exceeds the bound "
                        f"({result.total_cost:.4g} > {limit:.4g})",
                    )
                )
    return report
