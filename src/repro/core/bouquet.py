"""Compile-time bouquet identification (§4).

:func:`identify_bouquet` runs the full compile-time pipeline:

1. build (or accept) a plan diagram over the ESS,
2. slice the PIC into geometric isocost contours,
3. anorexic-reduce the plans residing on the contour frontiers,
4. inflate the contour budgets by ``(1 + λ)`` to pay for the reduction,

producing a :class:`PlanBouquet` — everything the run-time phase needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..ess.diagram import PlanCostCache, PlanDiagram
from ..ess.reduction import DEFAULT_LAMBDA, anorexic_reduce
from ..ess.space import Location, SelectivitySpace
from ..exceptions import BouquetError
from ..optimizer.optimizer import PlanRegistry
from .contours import (
    OPTIMAL_RATIO,
    Contour,
    build_contours,
    densest_contour_plans,
)


@dataclass
class PlanBouquet:
    """The compile-time artifact handed to the run-time phase.

    Attributes
    ----------
    contours:
        IC steps in increasing cost order, each with its (reduced) plans.
    budgets:
        Per-contour execution budgets: ``(1 + λ) * IC_k``.
    plan_ids:
        The bouquet B = union of the contour plan sets.
    """

    space: SelectivitySpace
    diagram: PlanDiagram
    registry: PlanRegistry
    contours: List[Contour]
    budgets: List[float]
    plan_ids: List[int]
    lambda_: float
    ratio: float

    @property
    def cardinality(self) -> int:
        """|B| — the bouquet size (Figure 18's BOU cardinality)."""
        return len(self.plan_ids)

    @property
    def rho(self) -> int:
        """ρ — plan count of the densest contour."""
        return densest_contour_plans(self.contours)

    @property
    def mso_bound(self) -> float:
        """Guaranteed MSO: ρ · (1+λ) · r²/(r−1) (Theorem 3 + §3.3)."""
        r = self.ratio
        return self.rho * (1.0 + self.lambda_) * r * r / (r - 1.0)

    @property
    def cost_cache(self) -> PlanCostCache:
        cache = self.diagram.cache
        if cache is None:
            raise BouquetError("bouquet diagram lacks a cost cache")
        return cache

    def contour_count(self) -> int:
        return len(self.contours)

    def describe(self) -> str:
        lines = [
            f"Plan bouquet for {self.space.query.name}: |B|={self.cardinality}, "
            f"rho={self.rho}, contours={len(self.contours)}, "
            f"lambda={self.lambda_:.0%}, r={self.ratio:g}",
            f"  Cmin={self.diagram.cmin:.4g}  Cmax={self.diagram.cmax:.4g}  "
            f"ratio Cmax/Cmin={self.diagram.cmax / self.diagram.cmin:.1f}",
        ]
        for contour, budget in zip(self.contours, self.budgets):
            plans = ", ".join(f"P{p}" for p in contour.plan_ids)
            lines.append(
                f"  IC{contour.index}: cost={contour.cost:.4g} budget={budget:.4g} "
                f"locations={len(contour.locations)} plans=[{plans}]"
            )
        return "\n".join(lines)


def identify_bouquet(
    diagram: PlanDiagram,
    lambda_: float = DEFAULT_LAMBDA,
    ratio: float = OPTIMAL_RATIO,
) -> PlanBouquet:
    """Identify the plan bouquet from a plan diagram (§4.3).

    Anorexic reduction is performed globally over the union of all contour
    frontier locations, so plans shared between adjacent contours are
    reused and the overall bouquet stays small.
    """
    from .contours import _diagram_tracer

    span = _diagram_tracer(diagram).span(
        "compile.identify_bouquet", lambda_=lambda_, ratio=ratio
    )
    contours = build_contours(diagram, ratio)
    if not contours:
        raise BouquetError("no isocost contours could be built")
    all_locations: List[Location] = []
    seen = set()
    for contour in contours:
        for location in contour.locations:
            if location not in seen:
                seen.add(location)
                all_locations.append(location)
    if lambda_ > 0:
        reduction = anorexic_reduce(diagram, all_locations, lambda_=lambda_)
        owner = reduction.assignment
    else:
        owner = {loc: diagram.plan_at(loc) for loc in all_locations}
    reduced_contours: List[Contour] = []
    for contour in contours:
        plan_at = {loc: owner[loc] for loc in contour.locations}
        reduced_contours.append(
            Contour(
                index=contour.index,
                cost=contour.cost,
                locations=list(contour.locations),
                plan_at=plan_at,
            )
        )
    budgets = [(1.0 + lambda_) * contour.cost for contour in reduced_contours]
    plan_ids = sorted({pid for c in reduced_contours for pid in c.plan_ids})
    span.set(
        cardinality=len(plan_ids),
        rho=densest_contour_plans(reduced_contours),
        contours=len(reduced_contours),
    )
    span.end()
    return PlanBouquet(
        space=diagram.space,
        diagram=diagram,
        registry=diagram.registry,
        contours=reduced_contours,
        budgets=budgets,
        plan_ids=plan_ids,
        lambda_=lambda_,
        ratio=ratio,
    )
