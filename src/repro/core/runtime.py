"""Run-time bouquet execution (§5).

Two algorithm variants are provided, both driven through an abstract
:class:`ExecutionService` so they run identically against the cost-model
simulator (used for ESS-wide metric sweeps, as the paper does for
Figures 14-18) and against the real execution engine (Table 3):

* **basic** (Figure 7) — every plan on each contour is executed under the
  contour budget, in a fixed order, until one completes.
* **optimized** (Figure 13) — the running location ``q_run`` is tracked
  under the first-quadrant invariant; plans are chosen by the AxisPlans
  heuristic and executed in *spill* mode so the budget concentrates on
  learning one selectivity at a time; contours are crossed early when the
  learned location already prices beyond the current budget.  Spilled
  output is stored, not discarded, so a spilled run whose plan fits the
  contour budget resumes past the spill node and answers the query —
  which is what keeps every (contour, plan) pair down to a single
  budget-capped charge and hence the MSO within ``4(1+λ)ρ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..ess.space import Location
from ..exceptions import BouquetError
from ..obs.tracer import NULL_TRACER, Tracer
from ..optimizer.plans import (
    cost_plan,
    error_node_depth,
    first_error_node,
)
from .bouquet import PlanBouquet


@dataclass
class LearnedSelectivity:
    """A lower bound for one error dimension discovered at run time."""

    pid: str
    value: float
    exact: bool


@dataclass
class ExecutionOutcome:
    """Result of one (cost-limited) plan execution."""

    completed: bool
    cost_spent: float
    learned: List[LearnedSelectivity] = field(default_factory=list)
    result_rows: Optional[int] = None


@dataclass
class ExecutionRecord:
    """One entry of the bouquet run trace (drives Table 3)."""

    contour_index: int
    plan_id: int
    spilled: bool
    budget: float
    cost_spent: float
    completed: bool
    learned: Tuple[LearnedSelectivity, ...] = ()

    @property
    def learned_pids(self) -> Tuple[str, ...]:
        return tuple(l.pid for l in self.learned)


@dataclass
class BouquetRunResult:
    """Complete account of one bouquet execution.

    ``total_cost`` is the **work** currency (cost summed across every
    execution, concurrent or not); ``elapsed_cost`` is the critical-path
    cost-time, which only differs under
    :class:`repro.sched.ConcurrentCrossing` where stragglers run on
    their own cores.  ``ledger`` carries the per-contour/per-plan
    account when a crossing strategy drove the run.
    """

    total_cost: float
    executions: List[ExecutionRecord]
    final_plan_id: Optional[int]
    completed: bool
    result_rows: Optional[int] = None
    elapsed_cost: Optional[float] = None
    crossing: str = "sequential"
    ledger: Optional[object] = None

    @property
    def execution_count(self) -> int:
        return len(self.executions)

    @property
    def partial_executions(self) -> int:
        return sum(1 for e in self.executions if not e.completed)

    def executions_per_contour(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for record in self.executions:
            counts[record.contour_index] = counts.get(record.contour_index, 0) + 1
        return counts


class ExecutionService:
    """What the bouquet driver needs from an execution substrate.

    Implementations may additionally accept a ``cancel`` keyword — a
    cooperative cancellation token with ``should_stop(spent) -> bool``
    (see :class:`repro.sched.CancellationToken`) — checked at budget
    checkpoints so concurrent crossing can cut stragglers short.
    Callers use :func:`repro.sched.strategy.call_full` /
    :func:`~repro.sched.strategy.call_spilled`, which probe for the
    capability, so pre-scheduler implementations keep working.
    """

    def run_full(self, plan_id: int, budget: float) -> ExecutionOutcome:
        """Execute the full plan under a cost budget."""
        raise NotImplementedError

    def run_spilled(
        self, plan_id: int, budget: float, unlearned_pids: FrozenSet[str]
    ) -> ExecutionOutcome:
        """Execute in spill mode (§5.3, spill-to-store variant): run the
        subtree up to the first node carrying an unlearned error pid,
        *storing* its output.  If the subtree resolves within the budget
        the run resumes the rest of the plan over the stored output — so
        a spilled execution that fits the budget answers the query
        outright (``completed=True``).  A non-completing spilled run
        always charges the full budget.

        This keeps the MSO accounting of §3 intact for the optimized
        driver: every (contour, plan) pair charges at most one contour
        budget, because a spill either answers the query or proves the
        plan cannot complete under this budget."""
        raise NotImplementedError


class AbstractExecutionService(ExecutionService):
    """Cost-model-world execution against a hidden true location ``qa``.

    A full run completes iff the plan's true cost fits the budget.  A
    spilled run answers the query when the whole plan fits the budget
    (spill-to-store resume); otherwise it charges the full budget,
    learning the targeted dimension exactly when the spilled subtree
    resolved, or advancing its lower bound to the point where the
    subtree's cost meets the budget (found by bisection on the plan's
    parametric cost function).
    """

    def __init__(self, bouquet: PlanBouquet, qa_values: Sequence[float]):
        self.bouquet = bouquet
        self.space = bouquet.space
        self.qa_values = tuple(float(v) for v in qa_values)
        if len(self.qa_values) != self.space.dimensionality:
            raise BouquetError("qa values do not match ESS dimensionality")
        self._schema = bouquet.space.query.schema
        self._truth = self.space.assignment_for(self.qa_values)
        self._dims_by_pid = {dim.pid: dim for dim in self.space.dimensions}

    # -- plumbing -------------------------------------------------------

    def _plan(self, plan_id: int):
        return self.bouquet.registry.plan(plan_id)

    def _cost_model(self):
        return self.bouquet.cost_cache.optimizer.cost_model

    def true_cost(self, plan_id: int) -> float:
        plan = self._plan(plan_id)
        est = cost_plan(plan, self._schema, self._cost_model(), self._truth)
        return est.cost

    # -- ExecutionService -----------------------------------------------

    def run_full(
        self, plan_id: int, budget: float, cancel: Optional[object] = None
    ) -> ExecutionOutcome:
        # ``cancel`` is accepted for protocol parity; simulated runs are
        # instantaneous, so cost-time cancellation is applied by the
        # scheduler's deterministic accounting instead.
        cost = self.true_cost(plan_id)
        if cost <= budget:
            return ExecutionOutcome(completed=True, cost_spent=cost)
        return ExecutionOutcome(completed=False, cost_spent=budget)

    def run_spilled(
        self,
        plan_id: int,
        budget: float,
        unlearned_pids: FrozenSet[str],
        cancel: Optional[object] = None,
    ) -> ExecutionOutcome:
        plan = self._plan(plan_id)
        node = first_error_node(plan, unlearned_pids)
        if node is None:
            return self.run_full(plan_id, budget)
        target_pids = sorted(node.local_pids & unlearned_pids)
        model = self._cost_model()

        def subtree_cost(t: float) -> float:
            assignment = dict(self._truth)
            for pid in target_pids:
                lo = self._dims_by_pid[pid].lo
                true_value = self._truth[pid]
                assignment[pid] = _geometric_interp(lo, true_value, t)
            est = cost_plan(node, self._schema, model, assignment)
            return est.cost

        plan_cost = self.true_cost(plan_id)
        if plan_cost <= budget:
            # Spill-to-store: the stored subtree resolved and the resumed
            # plan fits the budget too — this execution answers the query.
            learned = [
                LearnedSelectivity(pid, self._truth[pid], exact=True)
                for pid in target_pids
            ]
            return ExecutionOutcome(
                completed=True, cost_spent=plan_cost, learned=learned
            )
        if subtree_cost(1.0) <= budget:
            # The subtree resolved (exact learning) but the resumed plan
            # hit the cost horizon: the budget is fully consumed.
            learned = [
                LearnedSelectivity(pid, self._truth[pid], exact=True)
                for pid in target_pids
            ]
            return ExecutionOutcome(
                completed=False, cost_spent=budget, learned=learned
            )
        # Bisect the largest progress fraction that fits the budget.
        lo_t, hi_t = 0.0, 1.0
        if subtree_cost(0.0) > budget:
            lo_t = hi_t = 0.0
        else:
            for _ in range(40):
                mid = 0.5 * (lo_t + hi_t)
                if subtree_cost(mid) <= budget:
                    lo_t = mid
                else:
                    hi_t = mid
        learned = []
        for pid in target_pids:
            dim = self._dims_by_pid[pid]
            value = _geometric_interp(dim.lo, self._truth[pid], lo_t)
            learned.append(LearnedSelectivity(pid, value, exact=False))
        return ExecutionOutcome(completed=False, cost_spent=budget, learned=learned)


def _geometric_interp(lo: float, hi: float, t: float) -> float:
    """Log-space interpolation between ``lo`` (t=0) and ``hi`` (t=1)."""
    if hi <= lo:
        return hi
    return lo * (hi / lo) ** t


# ---------------------------------------------------------------------------
# The bouquet driver
# ---------------------------------------------------------------------------


@dataclass
class AxisPlanCandidate:
    """One AxisPlans entry: a contour plan reachable along one dimension."""

    dim_index: int
    plan_id: int
    contour_location: Location
    cost_at_qrun: float
    error_depth: int


class BouquetRunner:
    """Drives a bouquet execution against an :class:`ExecutionService`."""

    def __init__(
        self,
        bouquet: PlanBouquet,
        service: ExecutionService,
        mode: str = "optimized",
        equivalence_threshold: float = 0.2,
        model_error_delta: float = 0.0,
        tracer: Optional[Tracer] = None,
        crossing: Optional[object] = None,
    ):
        """``model_error_delta`` inflates every contour budget by (1+δ),
        preserving the completion guarantee under bounded cost-modeling
        error (§3.4) at the price of an (1+δ)² MSO factor.

        ``crossing`` selects the contour-crossing scheduler — a
        :mod:`repro.sched` strategy name (``sequential`` / ``concurrent``
        / ``timesliced``) or instance.  ``sequential`` (the default)
        preserves the paper's single-core semantics; any other strategy
        drives the contour loop through :mod:`repro.sched`, superseding
        the spill-based ``optimized`` driver (which is inherently
        one-plan-at-a-time)."""
        from ..sched.strategy import resolve_crossing

        if mode not in ("basic", "optimized"):
            raise BouquetError(f"unknown bouquet mode {mode!r}")
        if model_error_delta < 0:
            raise BouquetError("model_error_delta must be non-negative")
        self.bouquet = bouquet
        self.service = service
        self.mode = mode
        self.crossing = resolve_crossing(crossing)
        self.equivalence_threshold = equivalence_threshold
        self.space = bouquet.space
        self.budgets = [
            budget * (1.0 + model_error_delta) for budget in bouquet.budgets
        ]
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # q_run advances monotonically but revisits the same point many
        # times within a contour (candidate ranking, fallback ordering,
        # crossing checks), so plan costs at a point are memoized.
        self._point_costs: Dict[Tuple[int, Tuple[float, ...]], float] = {}

    # ------------------------------------------------------------------

    def run(self) -> BouquetRunResult:
        with self.tracer.span(
            "execute.bouquet",
            mode=self.mode,
            crossing=self.crossing.name,
            contours=len(self.bouquet.contours),
            cardinality=self.bouquet.cardinality,
        ) as span:
            if self.mode == "optimized" and self.crossing.name == "sequential":
                result = self._run_optimized()
            else:
                result = self._run_crossing()
            span.set(
                total_cost=result.total_cost,
                executions=result.execution_count,
                completed=result.completed,
                final_plan=result.final_plan_id,
            )
            if result.elapsed_cost is not None:
                span.set(elapsed_cost=result.elapsed_cost)
            return result

    def _trace_execution(self, record: ExecutionRecord) -> None:
        """Emit one per-execution event (the Table 3 account row)."""
        if not self.tracer.enabled:
            return
        self.tracer.event(
            "runtime.execution",
            contour=record.contour_index,
            plan=record.plan_id,
            spilled=record.spilled,
            budget=record.budget,
            cost_spent=record.cost_spent,
            completed=record.completed,
            learned=list(record.learned_pids),
            learned_values={l.pid: l.value for l in record.learned},
        )

    # -- strategy-driven crossing (Figure 7 generalized) ----------------

    def _run_crossing(self) -> BouquetRunResult:
        """Climb the contours, delegating each crossing to the scheduler.

        With :class:`~repro.sched.SequentialCrossing` this reproduces the
        basic Figure 7 loop execution-for-execution; other strategies
        change only *how* a contour's plans are scheduled, never which
        contour is guaranteed to complete.  Between contours, learned
        selectivity lower bounds from every worker are max-merged into
        ``q_run`` (first-quadrant invariant) and used to prune plans
        with no dominating contour location.
        """
        from ..sched.ledger import BudgetLedger
        from ..sched.strategy import CrossingRequest

        strategy = self.crossing
        ledger = BudgetLedger(
            ratio=self.bouquet.ratio,
            lambda_=self.bouquet.lambda_,
            rho=self.bouquet.rho,
        )
        dims = self.space.dimensions
        qrun = [dim.lo for dim in dims]
        pid_to_dim = {dim.pid: i for i, dim in enumerate(dims)}
        trace: List[ExecutionRecord] = []
        for contour, budget in zip(self.bouquet.contours, self.budgets):
            plans = self._dominating_plans(contour, qrun)
            if not plans:
                continue  # first-quadrant pruning: qa cannot be inside
            account = ledger.open_contour(contour.index, budget)
            with self.tracer.span(
                "sched.cross",
                strategy=strategy.name,
                contour=contour.index,
                plans=len(plans),
                budget=budget,
            ) as span:
                crossing = strategy.cross(
                    CrossingRequest(
                        contour_index=contour.index,
                        plan_ids=plans,
                        budget=budget,
                        service=self.service,
                        ledger=account,
                        tracer=self.tracer,
                    )
                )
                span.set(
                    work=account.work,
                    elapsed=account.elapsed,
                    winner=crossing.winner_plan_id,
                )
            if self.tracer.enabled:
                self.tracer.count("sched.crossings")
            for record in crossing.records:
                trace.append(record)
                self._trace_execution(record)
            for learned in crossing.learned:
                d = pid_to_dim.get(learned.pid)
                if d is not None and learned.value > qrun[d]:
                    qrun[d] = learned.value
            if crossing.winner_plan_id is not None:
                outcome = crossing.winner_outcome
                return BouquetRunResult(
                    total_cost=ledger.total_work,
                    executions=trace,
                    final_plan_id=crossing.winner_plan_id,
                    completed=True,
                    result_rows=outcome.result_rows if outcome else None,
                    elapsed_cost=ledger.total_elapsed,
                    crossing=strategy.name,
                    ledger=ledger,
                )
        return BouquetRunResult(
            total_cost=ledger.total_work,
            executions=trace,
            final_plan_id=None,
            completed=False,
            elapsed_cost=ledger.total_elapsed,
            crossing=strategy.name,
            ledger=ledger,
        )

    # -- optimized (Figure 13) ------------------------------------------

    def _run_optimized(self) -> BouquetRunResult:
        space = self.space
        dims = space.dimensions
        qrun = [dim.lo for dim in dims]
        exact: Set[int] = set()
        total = 0.0
        trace: List[ExecutionRecord] = []
        cid = 0
        contours = self.bouquet.contours
        budgets = self.budgets
        # (contour, plan) pairs already spilled, to guarantee progress.
        attempted: Set[Tuple[int, int]] = set()
        # (contour, plan) pairs proven unable to complete under the
        # contour's budget: a budget-exhausted run (spilled or full)
        # consumed the whole budget, and by PCM a rerun fares no better.
        exhausted: Set[Tuple[int, int]] = set()

        while cid < len(contours):
            contour = contours[cid]
            budget = budgets[cid]

            # First-quadrant pruning (§5.1): a resident plan can only be the
            # guaranteed completer if one of its contour locations dominates
            # q_run; a contour with NO dominating location cannot contain qa
            # (qa >= q_run componentwise) and is crossed without execution.
            dominating = self._dominating_plans(contour, qrun)
            if not dominating:
                cid += 1
                continue

            if len(exact) == space.dimensionality:
                # Everything learned: run the cheapest dominating plan fully.
                # Plans whose spilled run already exhausted this contour's
                # budget cannot complete under it either (their spilled
                # subtree alone consumed the budget), so they are skipped.
                runnable = [
                    pid for pid in dominating if (cid, pid) not in exhausted
                ]
                if not runnable:
                    cid += 1
                    continue
                plan_id = self._cheapest_plan(runnable, qrun)
                outcome = self.service.run_full(plan_id, budget)
                if not outcome.completed:
                    exhausted.add((cid, plan_id))
                total += outcome.cost_spent
                record = ExecutionRecord(
                    contour_index=contour.index,
                    plan_id=plan_id,
                    spilled=False,
                    budget=budget,
                    cost_spent=outcome.cost_spent,
                    completed=outcome.completed,
                )
                trace.append(record)
                self._trace_execution(record)
                if outcome.completed:
                    return BouquetRunResult(
                        total_cost=total,
                        executions=trace,
                        final_plan_id=plan_id,
                        completed=True,
                        result_rows=outcome.result_rows,
                    )
                cid += 1
                continue

            candidates = self._axis_plans(contour, qrun, exact)
            candidates = [
                c for c in candidates if (cid, c.plan_id) not in attempted
            ]
            unlearned = frozenset(
                dims[d].pid for d in range(len(dims)) if d not in exact
            )
            # Cost-function pre-check (compile-time knowledge only): if a
            # candidate's spilled subtree already prices at or above the
            # budget AT q_run, spilling it learns nothing new — and since
            # the full plan costs at least as much, it cannot complete
            # either.  Such plans are crossed without any execution.
            productive = []
            for cand in candidates:
                floor = self._spill_floor(cand.plan_id, qrun, unlearned)
                if floor >= budget * (1 - 1e-9):
                    attempted.add((cid, cand.plan_id))
                    exhausted.add((cid, cand.plan_id))
                else:
                    productive.append(cand)
            candidates = productive
            if not candidates:
                # Nothing left to learn on this contour: fall back to the
                # explicit completion check — run the dominating resident
                # plans fully under the contour budget (cheapest at q_run
                # first).  Plans already costlier than the budget at q_run
                # cannot complete (PCM + first-quadrant invariant) and are
                # pruned.  Only if none completes is qa beyond the contour.
                ordered = sorted(
                    (
                        pid
                        for pid in dominating
                        if (cid, pid) not in exhausted
                        and self._cost_at_values(pid, qrun) <= budget * (1 + 1e-9)
                    ),
                    key=lambda pid: self._cost_at_values(pid, qrun),
                )
                for plan_id in ordered:
                    exhausted.add((cid, plan_id))
                    outcome = self.service.run_full(plan_id, budget)
                    total += outcome.cost_spent
                    record = ExecutionRecord(
                        contour_index=contour.index,
                        plan_id=plan_id,
                        spilled=False,
                        budget=budget,
                        cost_spent=outcome.cost_spent,
                        completed=outcome.completed,
                    )
                    trace.append(record)
                    self._trace_execution(record)
                    if outcome.completed:
                        return BouquetRunResult(
                            total_cost=total,
                            executions=trace,
                            final_plan_id=plan_id,
                            completed=True,
                            result_rows=outcome.result_rows,
                        )
                cid += 1
                continue
            choice = self._pick_candidate(candidates)
            attempted.add((cid, choice.plan_id))
            outcome = self.service.run_spilled(choice.plan_id, budget, unlearned)
            total += outcome.cost_spent
            if not outcome.completed and outcome.cost_spent >= budget * (1 - 1e-9):
                exhausted.add((cid, choice.plan_id))
            record = ExecutionRecord(
                contour_index=contour.index,
                plan_id=choice.plan_id,
                spilled=True,
                budget=budget,
                cost_spent=outcome.cost_spent,
                completed=outcome.completed,
                learned=tuple(outcome.learned),
            )
            trace.append(record)
            self._trace_execution(record)
            if outcome.completed:
                # Spill-to-store completion: the resumed plan finished
                # under the budget, so this execution answered the query.
                return BouquetRunResult(
                    total_cost=total,
                    executions=trace,
                    final_plan_id=choice.plan_id,
                    completed=True,
                    result_rows=outcome.result_rows,
                )
            # Merge the learning into q_run (first-quadrant invariant: the
            # learned values are lower bounds, so max-merge is safe).
            pid_to_dim = {dim.pid: i for i, dim in enumerate(dims)}
            for learned in outcome.learned:
                d = pid_to_dim[learned.pid]
                if learned.value > qrun[d]:
                    qrun[d] = learned.value
                if learned.exact:
                    exact.add(d)
            if self.tracer.enabled:
                self.tracer.event(
                    "runtime.qrun",
                    values=list(qrun),
                    exact=[dims[d].pid for d in sorted(exact)],
                )
            # Early contour change (Figure 13's last step).
            if self._optimal_cost_estimate(qrun) >= budget and cid + 1 < len(contours):
                if self.tracer.enabled:
                    self.tracer.event(
                        "runtime.contour_crossed", contour=contour.index, early=True
                    )
                cid += 1
        return BouquetRunResult(
            total_cost=total, executions=trace, final_plan_id=None, completed=False
        )

    # -- helpers ---------------------------------------------------------

    def _cost_at_values(self, plan_id: int, values: Sequence[float]) -> float:
        key = (plan_id, tuple(values))
        cost = self._point_costs.get(key)
        if cost is None:
            cost = self.bouquet.cost_cache.cost_at_values(plan_id, values)
            self._point_costs[key] = cost
        return cost

    def _cheapest_plan(self, plan_ids: Sequence[int], values: Sequence[float]) -> int:
        return min(plan_ids, key=lambda pid: self._cost_at_values(pid, values))

    def _spill_floor(
        self, plan_id: int, qrun: Sequence[float], unlearned: FrozenSet[str]
    ) -> float:
        """Cost of the plan's spilled subtree at q_run — a lower bound on
        what a spilled execution will charge, computable from compile-time
        cost functions alone."""
        from ..optimizer.plans import spilled_cost

        cache = self.bouquet.cost_cache
        plan = self.bouquet.registry.plan(plan_id)
        assignment = self.space.assignment_for(qrun)
        cost, _ = spilled_cost(
            plan,
            cache.optimizer.schema,
            cache.optimizer.cost_model,
            assignment,
            unlearned,
        )
        return cost

    def _dominating_plans(self, contour, qrun: Sequence[float]) -> List[int]:
        """Resident plans owning at least one contour location whose
        selectivities dominate q_run componentwise."""
        space = self.space
        plans: Set[int] = set()
        for location, plan_id in contour.plan_at.items():
            if plan_id in plans:
                continue
            sels = space.selectivities_at(location)
            if all(s >= q * (1.0 - 1e-9) for s, q in zip(sels, qrun)):
                plans.add(plan_id)
        return sorted(plans)

    def _optimal_cost_estimate(self, values: Sequence[float]) -> float:
        """PIC estimate at an arbitrary point: min over bouquet plan costs."""
        return min(
            self._cost_at_values(pid, values) for pid in self.bouquet.plan_ids
        )

    def _axis_plans(
        self, contour, qrun: Sequence[float], exact: Set[int]
    ) -> List[AxisPlanCandidate]:
        """AxisPlans(q_run): contour plans at the intersections of the
        contour with the positive axes through ``q_run`` (§5.1)."""
        space = self.space
        costs = self.bouquet.diagram.costs
        snapped = space.snap(qrun)
        candidates: List[AxisPlanCandidate] = []
        if costs[snapped] > contour.cost * (1.0 + 1e-9):
            return candidates  # already beyond this contour everywhere
        for d in range(space.dimensionality):
            if d in exact:
                continue
            # Walk the +d ray to the last location inside the contour.
            best_g = None
            for g in range(snapped[d], space.shape[d]):
                probe = snapped[:d] + (g,) + snapped[d + 1 :]
                if costs[probe] <= contour.cost * (1.0 + 1e-9):
                    best_g = g
                else:
                    break
            if best_g is None:
                continue
            ray_point = snapped[:d] + (best_g,) + snapped[d + 1 :]
            owner = self._covering_contour_location(contour, ray_point)
            if owner is None:
                continue
            plan_id = contour.plan_at[owner]
            plan = self.bouquet.registry.plan(plan_id)
            dim_pid = space.dimensions[d].pid
            depth = error_node_depth(plan, frozenset((dim_pid,)))
            candidates.append(
                AxisPlanCandidate(
                    dim_index=d,
                    plan_id=plan_id,
                    contour_location=owner,
                    cost_at_qrun=self._cost_at_values(plan_id, qrun),
                    error_depth=depth,
                )
            )
        # The same plan may be hit along several axes; keep one entry each.
        unique: Dict[int, AxisPlanCandidate] = {}
        for cand in candidates:
            kept = unique.get(cand.plan_id)
            if kept is None or cand.error_depth > kept.error_depth:
                unique[cand.plan_id] = cand
        return list(unique.values())

    def _covering_contour_location(self, contour, point: Location) -> Optional[Location]:
        """Closest contour location dominating ``point`` (guaranteed to
        exist because contour locations are the region's maximal elements)."""
        best = None
        best_distance = None
        for location in contour.locations:
            if all(a >= b for a, b in zip(location, point)):
                distance = sum(a - b for a, b in zip(location, point))
                if best_distance is None or distance < best_distance:
                    best, best_distance = location, distance
        return best

    def _pick_candidate(self, candidates: List[AxisPlanCandidate]) -> AxisPlanCandidate:
        """Cost-equivalence-group + deepest-error-node heuristic (§5.1)."""
        cheapest = min(c.cost_at_qrun for c in candidates)
        group = [
            c
            for c in candidates
            if c.cost_at_qrun <= cheapest * (1.0 + self.equivalence_threshold)
        ]
        group.sort(key=lambda c: (-c.error_depth, c.cost_at_qrun, c.plan_id))
        return group[0]
