"""The paper's contribution: plan bouquets, contours, runtime, bounds."""

from .advisor import ProcessingMode, Recommendation, recommend_processing_mode
from .bouquet import PlanBouquet, identify_bouquet
from .maintenance import RefreshResult, refresh_bouquet
from .validation import ValidationIssue, ValidationReport, validate_bouquet
from .bounds import (
    best_achievable_mso,
    geometric_budgets,
    mso_bound_1d,
    mso_bound_multid,
    mso_bound_with_model_error,
    optimal_ratio,
    worst_case_suboptimality,
)
from .contours import (
    OPTIMAL_RATIO,
    Contour,
    build_contours,
    contour_costs,
    densest_contour_plans,
    maximal_region_frontier,
)
from .runtime import (
    AbstractExecutionService,
    BouquetRunResult,
    BouquetRunner,
    ExecutionOutcome,
    ExecutionRecord,
    ExecutionService,
    LearnedSelectivity,
)
from .simulation import (
    basic_cost_field,
    optimized_cost_field,
    sample_locations,
    simulate_at,
    suboptimality_field,
)

__all__ = [
    "ProcessingMode",
    "Recommendation",
    "recommend_processing_mode",
    "RefreshResult",
    "refresh_bouquet",
    "ValidationIssue",
    "ValidationReport",
    "validate_bouquet",
    "PlanBouquet",
    "identify_bouquet",
    "best_achievable_mso",
    "geometric_budgets",
    "mso_bound_1d",
    "mso_bound_multid",
    "mso_bound_with_model_error",
    "optimal_ratio",
    "worst_case_suboptimality",
    "OPTIMAL_RATIO",
    "Contour",
    "build_contours",
    "contour_costs",
    "densest_contour_plans",
    "maximal_region_frontier",
    "AbstractExecutionService",
    "BouquetRunResult",
    "BouquetRunner",
    "ExecutionOutcome",
    "ExecutionRecord",
    "ExecutionService",
    "LearnedSelectivity",
    "basic_cost_field",
    "optimized_cost_field",
    "sample_locations",
    "simulate_at",
    "suboptimality_field",
]
