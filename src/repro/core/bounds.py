"""Theoretical robustness bounds (§3).

* Theorem 1 — 1D MSO bound ``r²/(r−1)`` for geometric ratio ``r``;
  minimized at ``r = 2`` where the bound is 4.
* Theorem 2 — no deterministic online algorithm beats 4 in 1D; we expose
  an adversarial *witness* that, for any claimed budget sequence, finds
  the actual location maximizing its sub-optimality.
* Theorem 3 — multi-D bound ``ρ · r²/(r−1)``; with anorexic reduction the
  guarantee becomes ``(1+λ) · ρ_anorexic · r²/(r−1)`` (§3.3).
* §3.4 — bounded cost-modeling error δ inflates any MSO guarantee by at
  most ``(1+δ)²``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..exceptions import BouquetError


def mso_bound_1d(ratio: float = 2.0) -> float:
    """Theorem 1: MSO ≤ r² / (r − 1)."""
    if ratio <= 1.0:
        raise BouquetError("ratio must exceed 1")
    return ratio * ratio / (ratio - 1.0)


def optimal_ratio() -> Tuple[float, float]:
    """The ratio minimizing the Theorem 1 bound and the bound there: (2, 4)."""
    return 2.0, mso_bound_1d(2.0)


def mso_bound_multid(rho: int, ratio: float = 2.0, lambda_: float = 0.0) -> float:
    """Theorem 3 (+ §3.3 anorexic adjustment): MSO ≤ (1+λ)·ρ·r²/(r−1)."""
    if rho < 1:
        raise BouquetError("plan density rho must be at least 1")
    if lambda_ < 0:
        raise BouquetError("lambda must be non-negative")
    return (1.0 + lambda_) * rho * mso_bound_1d(ratio)


def mso_bound_with_model_error(base_mso: float, delta: float) -> float:
    """§3.4: bounded modeling error δ inflates MSO by at most (1+δ)²."""
    if delta < 0:
        raise BouquetError("delta must be non-negative")
    return base_mso * (1.0 + delta) ** 2


def geometric_budgets(cmin: float, cmax: float, ratio: float) -> List[float]:
    """The budget sequence a deterministic doubling-style algorithm uses."""
    from .contours import contour_costs

    return contour_costs(cmin, cmax, ratio)


def worst_case_suboptimality(budgets: Sequence[float]) -> float:
    """Adversarial witness for any deterministic budget sequence.

    Against budgets ``a_1 < a_2 < ... < a_m``, the adversary places the
    actual location just *beyond* the reach of ``a_{k-1}``, forcing the
    algorithm to spend ``a_1 + ... + a_k`` while an oracle pays only
    ``a_{k-1}`` (+ε).  The returned value is the supremum over k — for a
    geometric sequence with ratio r this approaches ``r²/(r−1)``, and no
    sequence does better than 4 (Theorem 2).
    """
    budgets = list(budgets)
    if any(b <= 0 for b in budgets):
        raise BouquetError("budgets must be positive")
    if any(b2 <= b1 for b1, b2 in zip(budgets, budgets[1:])):
        raise BouquetError("budget sequence must be strictly increasing")
    worst = 1.0
    cumulative = 0.0
    for k, budget in enumerate(budgets):
        cumulative += budget
        oracle = budgets[k - 1] if k >= 1 else budgets[0]
        worst = max(worst, cumulative / oracle)
    return worst


def best_achievable_mso(num_steps: int, span: float) -> Tuple[float, float]:
    """Search the geometric family for the minimum worst-case
    sub-optimality over a cost range of ``span = Cmax/Cmin``.

    Returns ``(best_ratio, best_mso)``.  Demonstrates empirically that the
    optimum sits at r = 2 with MSO → 4 (Theorems 1-2).
    """
    if span <= 1:
        raise BouquetError("span must exceed 1")
    best_ratio, best_value = None, math.inf
    ratio = 1.05
    while ratio <= 16.0:
        budgets = geometric_budgets(1.0, span, ratio)
        if len(budgets) >= 2:
            value = worst_case_suboptimality(budgets)
            if value < best_value:
                best_ratio, best_value = ratio, value
        ratio *= 1.01
    if best_ratio is None:
        raise BouquetError("no valid ratio found")
    return best_ratio, best_value
