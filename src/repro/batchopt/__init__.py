"""repro.batchopt — batch-vectorized compile kernel.

DPsize join enumeration run once per query shape while carrying a numpy
cost axis over a slab of ESS locations (see :mod:`repro.batchopt.kernel`
for the frontier semantics and the equality guarantee vs the scalar
optimizer, and :mod:`repro.batchopt.shard` for process-pool slab
sharding).  The public entry point is
:meth:`repro.optimizer.Optimizer.optimize_batch`.
"""

from .kernel import BatchPlanChoice, batch_best_plans, stack_assignments
from .shard import parallel_optimize_batch

__all__ = [
    "BatchPlanChoice",
    "batch_best_plans",
    "parallel_optimize_batch",
    "stack_assignments",
]
