"""Process-pool sharding of slab optimization (§4.2's parallel POSP).

Mirrors the hardened fork/spawn pool of
:func:`repro.ess.diagram._parallel_optimize`, but each worker runs the
**batch** kernel over its whole shard instead of one scalar optimize per
location — the parent pays only plan unpickling and registration.
Chunk results are streamed in submission order, so the parent registers
plans in the same (row-major) order a serial slab sweep would and plan
ids stay deterministic.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..ess.space import Location, SelectivitySpace
from ..exceptions import EssError
from ..optimizer.optimizer import Optimizer
from ..optimizer.plans import PlanNode

__all__ = ["parallel_optimize_batch"]

_WORKER_STATE: dict = {}


def _init_batch_worker(optimizer: Optimizer, space: SelectivitySpace):
    # Workers never trace (see _parallel_optimize): fork would interleave
    # sink writes, spawn already degraded the tracer while pickling.
    from ..obs.tracer import NULL_TRACER

    optimizer.tracer = NULL_TRACER
    _WORKER_STATE["optimizer"] = optimizer
    _WORKER_STATE["space"] = space


def _optimize_slab(locations: List[Location]):
    optimizer: Optimizer = _WORKER_STATE["optimizer"]
    space: SelectivitySpace = _WORKER_STATE["space"]
    assignments = [space.assignment_at(location) for location in locations]
    results = optimizer.optimize_batch(space.query, assignments)
    return [
        (location, result.plan, result.cost, result.rows)
        for location, result in zip(locations, results)
    ]


def parallel_optimize_batch(
    optimizer: Optimizer,
    space: SelectivitySpace,
    locations: List[Location],
    workers: int,
) -> Iterator[Tuple[Location, PlanNode, float, float]]:
    """Batch-optimize ``locations`` across ``workers`` processes.

    Yields ``(location, plan, cost, rows)`` in the input location order.
    ``fork`` is preferred; the fallback is an explicit ``spawn`` context
    with the initializer arguments verified to survive a pickle round
    trip before any worker starts.
    """
    import multiprocessing as mp
    import pickle

    chunk_size = max(1, len(locations) // workers + (len(locations) % workers > 0))
    chunks = [
        locations[i : i + chunk_size] for i in range(0, len(locations), chunk_size)
    ]
    if "fork" in mp.get_all_start_methods():
        ctx = mp.get_context("fork")
    else:
        ctx = mp.get_context("spawn")
        try:
            restored = pickle.loads(pickle.dumps((optimizer, space)))
        except Exception as exc:
            raise EssError(
                "parallel batch compilation needs a picklable Optimizer and "
                f"SelectivitySpace under the spawn start method: {exc}"
            ) from exc
        if len(restored) != 2:
            raise EssError("initargs pickle round trip lost arguments")
    tracer = optimizer.tracer
    if tracer.enabled:
        tracer.event(
            "batchopt.parallel_fanout",
            workers=workers,
            slabs=len(chunks),
            locations=len(locations),
        )
    with ctx.Pool(
        processes=workers, initializer=_init_batch_worker, initargs=(optimizer, space)
    ) as pool:
        for chunk_result in pool.imap(_optimize_slab, chunks):
            yield from chunk_result
